#include "core/triton_aggregate.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "hash/bucket_chain_table.h"
#include "partition/hierarchical.h"
#include "partition/input.h"
#include "partition/layout.h"
#include "partition/prefix_sum.h"
#include "partition/shared.h"
#include "util/bits.h"

namespace triton::core {

namespace {

/// SM-cycles per tuple for the scratchpad aggregation (hash + accumulate).
constexpr double kAggregateCyclesPerTuple = 7.0;

}  // namespace

std::pair<uint64_t, uint64_t> ReferenceAggregate(const data::Relation& r) {
  std::unordered_map<data::Key, uint64_t> sums;
  sums.reserve(r.rows());
  for (uint64_t i = 0; i < r.rows(); ++i) {
    sums[r.keys()[i]] += static_cast<uint64_t>(r.payload(0)[i]);
  }
  uint64_t checksum = 0;
  for (const auto& [k, v] : sums) {
    checksum += static_cast<uint64_t>(k) * 31 + v;
  }
  return {sums.size(), checksum};
}

util::StatusOr<AggregateRun> TritonAggregate::Run(exec::Device& dev,
                                                  const data::Relation& r) {
  if (r.payload_cols() == 0) {
    return util::Status::InvalidArgument(
        "aggregation needs one payload column");
  }
  AggregateRun run;
  const sim::HwSpec& hw = dev.hw();
  const uint32_t sms = hw.gpu.num_sms;

  // Radix bits: like the join's derivation, but only one relation flows.
  uint32_t bits1 = config_.bits1, bits2 = config_.bits2;
  if (bits1 == 0 || bits2 == 0) {
    uint32_t total = util::CeilLog2(util::CeilDiv(r.rows(), 1024));
    uint32_t d2 = std::min(total, 9u);
    uint32_t d1 = std::max(total - d2, 1u);
    uint64_t part_bytes = (r.rows() * sizeof(partition::Tuple)) >> d1;
    while (part_bytes * 4 > hw.gpu_mem.capacity / 2) {
      ++d1;
      part_bytes /= 2;
    }
    if (bits1 == 0) bits1 = d1;
    if (bits2 == 0) bits2 = d2;
  }
  partition::RadixConfig radix1{0, bits1};
  partition::RadixConfig radix2 = radix1.Next(bits2);

  dev.ClearTrace();

  // --- Prefix sum + first pass with caching (as in the Triton join) ---
  partition::ColumnInput input = partition::ColumnInput::Of(r);
  partition::PrefixSumOptions ps1;
  ps1.name = "prefix_sum1";
  partition::PartitionLayout layout1 =
      CpuPrefixSum(dev, input, radix1, sms, ps1);

  const uint64_t state_bytes =
      layout1.padded_tuples() * sizeof(partition::Tuple);
  uint64_t max_part = 0;
  for (uint32_t p = 0; p < radix1.fanout(); ++p) {
    max_part = std::max(max_part, layout1.PartitionSize(p));
  }
  uint64_t reserve = std::max<uint64_t>(
      4 * max_part * sizeof(partition::Tuple), hw.gpu_mem.capacity / 8);
  uint64_t cache_avail = dev.allocator().gpu_free() > reserve
                             ? dev.allocator().gpu_free() - reserve
                             : 0;
  cache_avail = std::min(cache_avail, config_.cache_bytes);
  uint64_t cache_used = std::min(cache_avail, state_bytes);
  auto state = dev.allocator().AllocateInterleaved(state_bytes, cache_used);
  if (!state.ok()) return state.status();

  partition::HierarchicalPartitioner pass1;
  partition::PartitionOptions p1;
  p1.name = "partition1";
  pass1.PartitionColumns(dev, input, layout1, *state, p1);

  // --- Second pass + scratchpad aggregation per partition ---
  partition::SharedPartitioner pass2;
  constexpr uint32_t kBuckets = hash::BucketChainTable::kDefaultBuckets;
  uint64_t groups = 0, checksum = 0;

  for (uint32_t p = 0; p < radix1.fanout(); ++p) {
    if (layout1.PartitionSize(p) == 0) continue;
    partition::SlicedRowInput rows =
        partition::PartitionInputOf(*state, layout1, p);
    partition::PrefixSumOptions ps2;
    ps2.name = "prefix_sum2";
    partition::PartitionLayout layout2 =
        GpuPrefixSum(dev, rows, radix2, sms, ps2);
    auto refined = dev.allocator().AllocateGpu(layout2.padded_tuples() *
                                               sizeof(partition::Tuple));
    if (!refined.ok()) return refined.status();
    partition::PartitionOptions p2;
    p2.name = "partition2";
    pass2.PartitionSliced(dev, rows, layout2, *refined, p2);

    dev.Launch({.name = "aggregate"}, [&](exec::KernelContext& ctx) {
      const partition::Tuple* data = refined->as<partition::Tuple>();
      // One refined partition per thread block; per-block group counts and
      // checksums reduce in partition order after the fan-out.
      const uint32_t fan2 = radix2.fanout();
      std::vector<uint64_t> block_groups(fan2, 0);
      std::vector<uint64_t> block_checksums(fan2, 0);
      ctx.ForEachBlock(fan2, [&](exec::KernelContext& sub, uint32_t q) {
        uint64_t part_n = layout2.PartitionSize(q);
        if (part_n == 0) return;
        sub.SetSanitizerBlock(q);
        // Scratchpad hash aggregation: accumulate sums per key. The table
        // is rebuilt per partition; oversized partitions (heavy key
        // duplication) chunk gracefully since groups <= distinct keys.
        std::vector<uint32_t> heads(kBuckets, 0);
        std::vector<int64_t> keys(part_n), sums(part_n);
        std::vector<uint32_t> next(part_n);
        hash::BucketChainTable table(heads.data(), kBuckets, keys.data(),
                                     sums.data(), next.data(),
                                     static_cast<uint32_t>(part_n));
        layout2.ForEachSlice(q, [&](uint64_t begin, uint64_t count) {
          sub.ReadSeq(*refined, begin * sizeof(partition::Tuple),
                      count * sizeof(partition::Tuple));
          const uint32_t shift = bits1 + bits2;
          for (uint64_t i = begin; i < begin + count; ++i) {
            uint32_t e = table.FindFirst(data[i].key, shift);
            if (e != UINT32_MAX) {
              sums[e] += data[i].value;  // accumulate into the group
            } else {
              table.Insert(data[i].key, data[i].value, shift);
            }
          }
        });
        sub.Charge(static_cast<uint64_t>(part_n * kAggregateCyclesPerTuple));
        sub.AddTuples(part_n);
        block_groups[q] = table.size();
        if (!config_.distinct_only) {
          for (uint32_t e = 0; e < table.size(); ++e) {
            block_checksums[q] += static_cast<uint64_t>(keys[e]) * 31 +
                                  static_cast<uint64_t>(sums[e]);
          }
          // Grouped results stream back to CPU memory.
        } else {
          for (uint32_t e = 0; e < table.size(); ++e) {
            block_checksums[q] += static_cast<uint64_t>(keys[e]);
          }
        }
      });
      for (uint32_t q = 0; q < fan2; ++q) {
        groups += block_groups[q];
        checksum += block_checksums[q];
      }
    });
    dev.allocator().Free(*refined);
  }

  run.groups = groups;
  run.checksum = checksum;
  run.phases = dev.trace();
  for (const auto& ph : run.phases) run.totals.Merge(ph.counters);
  run.elapsed = dev.TraceElapsed();
  dev.allocator().Free(*state);
  return run;
}

}  // namespace triton::core
