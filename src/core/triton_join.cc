#include "core/triton_join.h"

#include <algorithm>
#include <vector>

#include "join/scratch_join.h"
#include "partition/hierarchical.h"
#include "partition/input.h"
#include "partition/layout.h"
#include "partition/prefix_sum.h"
#include "partition/shared.h"
#include "util/bits.h"
#include "util/fastpath.h"

namespace triton::core {

namespace {

/// SM-cycles per refined partition pair for the join task scheduler kernel
/// (calibrated against the ~9% share in the paper's Figure 15).
constexpr double kSchedCyclesPerPair = 13000.0;

}  // namespace

void TritonJoin::DeriveBits(const sim::HwSpec& hw, uint64_t r_tuples,
                            uint64_t s_tuples, uint32_t* bits1,
                            uint32_t* bits2) {
  // Final partitions should hold ~1024 tuples (half the scratchpad table
  // capacity, leaving headroom for skew); the second pass contributes up
  // to 9 bits (a 512-way Shared pass, the paper's setting).
  uint32_t total =
      util::CeilLog2(util::CeilDiv(r_tuples, 1024));
  *bits2 = std::min(total, 9u);
  *bits1 = std::max(total - *bits2, 1u);
  // A pass-1 partition pair (R_i + S_i + the refined copy) must fit in
  // half the GPU memory alongside its double-buffered sibling.
  uint64_t pair_bytes =
      ((r_tuples + s_tuples) * sizeof(partition::Tuple)) >> *bits1;
  while (pair_bytes * 4 > hw.gpu_mem.capacity / 2) {
    ++*bits1;
    pair_bytes /= 2;
  }
}

util::StatusOr<join::JoinRun> TritonJoin::Run(exec::Device& dev,
                                              const data::Relation& r,
                                              const data::Relation& s) {
  join::JoinRun run;
  stats_ = TritonJoinStats();
  const sim::HwSpec& hw = dev.hw();
  const uint32_t sms = config_.sms == 0 ? hw.gpu.num_sms : config_.sms;

  uint32_t bits1 = config_.bits1, bits2 = config_.bits2;
  if (bits1 == 0 || bits2 == 0) {
    uint32_t d1, d2;
    DeriveBits(hw, r.rows(), s.rows(), &d1, &d2);
    if (bits1 == 0) bits1 = d1;
    if (bits2 == 0) bits2 = d2;
  }
  stats_.bits1 = bits1;
  stats_.bits2 = bits2;

  partition::RadixConfig radix1{0, bits1};
  partition::RadixConfig radix2 = radix1.Next(bits2);
  const uint32_t blocks = sms;

  dev.ClearTrace();

  // --- Prefix sums over the base relations (CPU by default) ---
  partition::ColumnInput r_in = partition::ColumnInput::Of(r);
  partition::ColumnInput s_in = partition::ColumnInput::Of(s);
  partition::PrefixSumOptions ps1;
  ps1.name = "prefix_sum1";
  ps1.sms = sms;
  partition::PartitionLayout r_layout1 =
      config_.gpu_prefix_sum
          ? GpuPrefixSum(dev, r_in, radix1, blocks, ps1)
          : CpuPrefixSum(dev, r_in, radix1, blocks, ps1);
  partition::PartitionLayout s_layout1 =
      config_.gpu_prefix_sum
          ? GpuPrefixSum(dev, s_in, radix1, blocks, ps1)
          : CpuPrefixSum(dev, s_in, radix1, blocks, ps1);

  // --- Cache budgeting: pipeline working memory is reserved; the rest of
  // the budget holds partitioned state in GPU memory, spread evenly over
  // both relations via interleaved page mapping (Section 5.3) ---
  const uint64_t r1_bytes = r_layout1.padded_tuples() * sizeof(partition::Tuple);
  const uint64_t s1_bytes = s_layout1.padded_tuples() * sizeof(partition::Tuple);
  uint64_t max_pair = 0;
  for (uint32_t p = 0; p < radix1.fanout(); ++p) {
    max_pair = std::max(max_pair, r_layout1.PartitionSize(p) +
                                      s_layout1.PartitionSize(p));
  }
  const uint64_t pipeline_reserve =
      std::max<uint64_t>(4 * max_pair * sizeof(partition::Tuple),
                         hw.gpu_mem.capacity / 8);
  uint64_t cache_avail = dev.allocator().gpu_free() > pipeline_reserve
                             ? dev.allocator().gpu_free() - pipeline_reserve
                             : 0;
  cache_avail = std::min(cache_avail, config_.cache_bytes);
  const uint64_t state_bytes = r1_bytes + s1_bytes;
  const uint64_t cache_used = std::min(cache_avail, state_bytes);
  stats_.cached_fraction =
      state_bytes > 0 ? static_cast<double>(cache_used) / state_bytes : 0.0;
  stats_.spilled_bytes = state_bytes - cache_used;

  auto r1 = dev.allocator().AllocateInterleaved(
      r1_bytes, static_cast<uint64_t>(stats_.cached_fraction * r1_bytes));
  if (!r1.ok()) return r1.status();
  auto s1 = dev.allocator().AllocateInterleaved(
      s1_bytes, static_cast<uint64_t>(stats_.cached_fraction * s1_bytes));
  if (!s1.ok()) return s1.status();

  // --- First pass: GPU-partition both relations out-of-core ---
  partition::HierarchicalPartitioner default_pass1;
  partition::GpuPartitioner* pass1 =
      config_.pass1 != nullptr ? config_.pass1 : &default_pass1;
  partition::PartitionOptions p1;
  p1.sms = sms;
  p1.name = "partition1_r";
  pass1->PartitionColumns(dev, r_in, r_layout1, *r1, p1);
  p1.name = "partition1_s";
  pass1->PartitionColumns(dev, s_in, s_layout1, *s1, p1);

  // --- Result buffer (CPU memory: results may exceed GPU capacity) ---
  mem::Buffer result;
  if (config_.result_mode == join::ResultMode::kMaterialize) {
    auto res =
        dev.allocator().AllocateCpu(s.rows() * sizeof(partition::Tuple));
    if (!res.ok()) return res.status();
    result = std::move(res).value();
  }

  // --- Pipelined second pass + join over partition pairs ---
  //
  // With overlap enabled (Section 5.2), the second-pass kernels and the
  // join run as concurrent kernels: one lane streams (possibly spilled)
  // data over the interconnect while the other lane computes. The two
  // lanes are combined as max(total bandwidth time, total compute time):
  // concurrent kernels share the GPU's issue slots, so summing compute
  // across lanes at the full-SM rate models two half-GPU kernels running
  // simultaneously.
  const uint32_t pipe_sms = sms;
  uint64_t matches = 0, checksum = 0, result_cursor = 0;
  double pipe_bw = 0.0;      // interconnect/TLB/CPU-memory lane
  double pipe_comp = 0.0;    // GPU compute / on-board memory lane
  double pipe_serial = 0.0;  // no-overlap: plain sum of kernel times
  partition::SharedPartitioner pass2;

  // When state spilled to CPU memory, the second-pass prefix sum copies the
  // pair into this GPU staging buffer as it scans, so subsequent kernels
  // read GPU memory instead of re-crossing the link (Section 6.2.3).
  const bool stage_pairs = stats_.spilled_bytes > 0;
  mem::Buffer staging;
  if (stage_pairs) {
    auto st = dev.allocator().AllocateGpu(
        std::max<uint64_t>(max_pair, 1) * sizeof(partition::Tuple));
    if (!st.ok()) return st.status();
    staging = std::move(st).value();
  }

  for (uint32_t p = 0; p < radix1.fanout(); ++p) {
    uint64_t r_n = r_layout1.PartitionSize(p);
    uint64_t s_n = s_layout1.PartitionSize(p);
    if (r_n == 0 || s_n == 0) continue;
    size_t trace_mark = dev.trace().size();

    partition::SlicedRowInput r_rows =
        partition::PartitionInputOf(*r1, r_layout1, p);
    partition::SlicedRowInput s_rows =
        partition::PartitionInputOf(*s1, s_layout1, p);

    // Second-pass prefix sums run on the GPU; with spilled state they
    // double as the copy-in of the pair (see `staging` above).
    auto prefix_and_stage =
        [&](const partition::SlicedRowInput& rows,
            uint64_t stage_offset) -> partition::PartitionLayout {
      partition::PartitionLayout layout;
      dev.Launch(
          {.name = "prefix_sum2", .sms = pipe_sms},
          [&](exec::KernelContext& ctx) {
            const uint64_t n = rows.size();
            // The scan accounting stays on the launch context (one pass over
            // the pair); the histogram work fans out over the executor.
            rows.AccountRead(ctx, 0, n);
            const uint64_t chunk = (n + blocks - 1) / blocks;
            std::vector<std::vector<uint64_t>> histograms(
                blocks, std::vector<uint64_t>(radix2.fanout(), 0));
            ctx.ForEachBlock(
                blocks, [&](exec::KernelContext& sub, uint32_t b) {
                  uint64_t begin = static_cast<uint64_t>(b) * chunk;
                  uint64_t end = std::min(n, begin + chunk);
                  if (begin >= end) return;
                  sub.SetSanitizerBlock(b);
                  // Per-block copy: sliced inputs cache a cursor in Get().
                  partition::SlicedRowInput block_rows = rows;
                  partition::ComputeBlockHistogram(block_rows, radix2, begin,
                                                   end, histograms[b]);
                });
            layout = partition::PartitionLayout(radix2, histograms, 8);
            ctx.AddTuples(n);
            ctx.Charge(static_cast<uint64_t>(
                n * partition::kPrefixSumCyclesPerTuple));
            if (stage_pairs) {
              if (util::FastPathEnabled()) {
                partition::Tuple batch[partition::kFastPathBatchTuples];
                for (uint64_t base = 0; base < n;
                     base += partition::kFastPathBatchTuples) {
                  const uint64_t m = std::min<uint64_t>(
                      n - base, partition::kFastPathBatchTuples);
                  rows.GetBatch(base, m, batch);
                  ctx.StoreRun(staging, stage_offset + base, batch, m);
                }
              } else {
                for (uint64_t i = 0; i < n; ++i) {
                  ctx.Store(staging, stage_offset + i, rows.Get(i));
                }
              }
              ctx.WriteSeq(staging, stage_offset * sizeof(partition::Tuple),
                           n * sizeof(partition::Tuple));
            }
          });
      return layout;
    };
    partition::PartitionLayout r_layout2 = prefix_and_stage(r_rows, 0);
    partition::PartitionLayout s_layout2 = prefix_and_stage(s_rows, r_n);

    auto r2 = dev.allocator().AllocateGpu(r_layout2.padded_tuples() *
                                          sizeof(partition::Tuple));
    if (!r2.ok()) return r2.status();
    auto s2 = dev.allocator().AllocateGpu(s_layout2.padded_tuples() *
                                          sizeof(partition::Tuple));
    if (!s2.ok()) return s2.status();

    partition::PartitionOptions p2;
    p2.sms = pipe_sms;
    p2.name = "partition2";
    if (stage_pairs) {
      partition::RowInput r_staged(&staging, 0, r_n);
      partition::RowInput s_staged(&staging, r_n, s_n);
      pass2.PartitionRows(dev, r_staged, r_layout2, *r2, p2);
      pass2.PartitionRows(dev, s_staged, s_layout2, *s2, p2);
    } else {
      pass2.PartitionSliced(dev, r_rows, r_layout2, *r2, p2);
      pass2.PartitionSliced(dev, s_rows, s_layout2, *s2, p2);
    }

    // Join task scheduler: assigns refined pairs to thread blocks.
    dev.Launch({.name = "sched", .sms = pipe_sms},
               [&](exec::KernelContext& ctx) {
                 ctx.Charge(static_cast<uint64_t>(kSchedCyclesPerPair *
                                                  radix2.fanout()));
               });

    dev.Launch({.name = "join", .sms = pipe_sms},
               [&](exec::KernelContext& ctx) {
                 // Each refined pair is one thread block: build/probe runs
                 // concurrently per partition, matches are staged per block
                 // and materialized in partition order afterwards so result
                 // contents and accounting are independent of thread count.
                 const uint32_t fan2 = radix2.fanout();
                 struct BlockOut {
                   std::vector<partition::Tuple> pairs;
                   uint64_t matches = 0;
                   uint64_t checksum = 0;
                 };
                 std::vector<BlockOut> outs(fan2);
                 ctx.ForEachBlock(
                     fan2, [&](exec::KernelContext& sub, uint32_t q) {
                       sub.SetSanitizerBlock(q);
                       std::vector<std::pair<uint64_t, uint64_t>> r_sl, s_sl;
                       r_layout2.ForEachSlice(
                           q, [&](uint64_t b, uint64_t c) {
                             r_sl.emplace_back(b, c);
                           });
                       s_layout2.ForEachSlice(
                           q, [&](uint64_t b, uint64_t c) {
                             s_sl.emplace_back(b, c);
                           });
                       join::ScratchJoiner block_joiner(
                           config_.scheme, hw.gpu.scratchpad_bytes);
                       BlockOut& out = outs[q];
                       block_joiner.JoinSlicesEmit(
                           sub, *r2, r_sl, *s2, s_sl, bits1 + bits2,
                           [&](int64_t build_val, int64_t probe_val) {
                             if (result.valid()) {
                               out.pairs.push_back(
                                   partition::Tuple{build_val, probe_val});
                             }
                             ++out.matches;
                             out.checksum +=
                                 static_cast<uint64_t>(build_val) +
                                 static_cast<uint64_t>(probe_val);
                           });
                     });
                 for (uint32_t q = 0; q < fan2; ++q) {
                   BlockOut& out = outs[q];
                   matches += out.matches;
                   checksum += out.checksum;
                   if (!out.pairs.empty()) {
                     uint64_t at = result_cursor;
                     if (util::FastPathEnabled()) {
                       ctx.StoreRun(result, at, out.pairs.data(),
                                    out.pairs.size());
                       result_cursor += out.pairs.size();
                     } else {
                       for (const partition::Tuple& t : out.pairs) {
                         ctx.Store(result, result_cursor++, t);
                       }
                     }
                     ctx.WriteSeq(result, at * sizeof(partition::Tuple),
                                  out.pairs.size() *
                                      sizeof(partition::Tuple));
                   }
                 }
               });

    // Accumulate this pair's kernels into the two concurrent lanes.
    for (size_t k = trace_mark; k < dev.trace().size(); ++k) {
      const sim::KernelTime& t = dev.trace()[k].time;
      pipe_bw += std::max({t.link, t.tlb, t.cpu_mem});
      pipe_comp += std::max(t.compute, t.gpu_mem);
      pipe_serial += t.Elapsed();
    }

    dev.allocator().Free(*r2);
    dev.allocator().Free(*s2);
  }

  run.matches = matches;
  run.checksum = checksum;
  run.phases = dev.trace();
  for (const auto& ph : run.phases) run.totals.Merge(ph.counters);

  // --- Elapsed time: pass 1 is a barrier (Figure 10); the join phase then
  // runs as the two concurrent lanes described above (Figure 11) ---
  double t_front = run.PhaseTime("prefix_sum1") +
                   run.PhaseTime("partition1");
  double pipeline =
      config_.overlap ? std::max(pipe_bw, pipe_comp) : pipe_serial;
  run.elapsed = t_front + pipeline;

  dev.allocator().Free(*r1);
  dev.allocator().Free(*s1);
  if (result.valid()) dev.allocator().Free(result);
  return run;
}

}  // namespace triton::core
