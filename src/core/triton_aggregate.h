// Out-of-core GPU group-by aggregation on the Triton substrate.
//
// The paper motivates its technique for "join and group-by aggregation
// queries with an in-GPU state" (Section 1) and notes that radix
// partitioning applies to group-based aggregation and duplicate
// elimination just like to joins (Section 2.2). TritonAggregate is that
// operator: the same GPU-partitioned strategy — Hierarchical first pass
// over the interconnect with interleaved caching, Shared second pass into
// GPU memory — followed by a scratchpad hash aggregation per partition
// instead of a build/probe. Grouped results stream back to CPU memory.
//
// Supported aggregates: SUM(value) and COUNT(*) per key, and DISTINCT key
// counting (duplicate elimination).

#ifndef TRITON_CORE_TRITON_AGGREGATE_H_
#define TRITON_CORE_TRITON_AGGREGATE_H_

#include <cstdint>
#include <vector>

#include "data/relation.h"
#include "exec/device.h"
#include "join/common.h"
#include "sim/perf_counters.h"
#include "util/status.h"

namespace triton::core {

/// Configuration of the aggregation operator.
struct TritonAggregateConfig {
  /// First-pass radix bits (0 = derive from the input size).
  uint32_t bits1 = 0;
  /// Second-pass radix bits (0 = derive; partitions must fit scratchpad).
  uint32_t bits2 = 0;
  /// GPU cache budget for partitioned state (as in the Triton join).
  uint64_t cache_bytes = UINT64_MAX;
  /// If true, only distinct keys are counted (duplicate elimination);
  /// grouped sums are not materialized.
  bool distinct_only = false;
};

/// Result of one aggregation run.
struct AggregateRun {
  /// Number of distinct groups found.
  uint64_t groups = 0;
  /// Checksum over all (key, sum) pairs for validation.
  uint64_t checksum = 0;
  /// Simulated end-to-end seconds.
  double elapsed = 0.0;
  /// Merged counters over all phases.
  sim::PerfCounters totals;
  /// Per-phase kernel records.
  std::vector<exec::KernelRecord> phases;

  double Throughput(uint64_t tuples) const {
    return elapsed > 0.0 ? static_cast<double>(tuples) / elapsed : 0.0;
  }
};

/// SUM/COUNT GROUP BY key (or DISTINCT key) over one relation.
class TritonAggregate {
 public:
  explicit TritonAggregate(TritonAggregateConfig config = {})
      : config_(config) {}

  /// Aggregates relation `r`: groups by r.keys(), sums r.payload(0).
  util::StatusOr<AggregateRun> Run(exec::Device& dev,
                                   const data::Relation& r);

  const TritonAggregateConfig& config() const { return config_; }

 private:
  TritonAggregateConfig config_;
};

/// Brute-force reference: (group count, checksum) for validation.
std::pair<uint64_t, uint64_t> ReferenceAggregate(const data::Relation& r);

}  // namespace triton::core

#endif  // TRITON_CORE_TRITON_AGGREGATE_H_
