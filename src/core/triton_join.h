// The Triton join — the paper's primary contribution (Section 5).
//
// A hierarchical hybrid hash join (3H+) implementing the GPU-partitioned
// strategy of Section 3.3:
//
//   1st pass   The GPU radix-partitions R and S by the low B1 bits of the
//              hashed key using the Hierarchical partitioner, *pulling*
//              base data from CPU memory over the fast interconnect. The
//              partitioned output is cached in GPU memory up to the cache
//              budget; the remainder spills to CPU memory through the
//              Section 5.3 interleaved page mapping, which spreads GPU
//              pages evenly through the array so the interconnect stays
//              busy during the later passes.
//   2nd pass   Each partition pair is refined by the next B2 hash bits
//              with the Shared partitioner, reading (possibly spilled)
//              pass-1 data and writing to GPU memory.
//   join       Each refined pair is joined with a scratchpad-resident
//              bucket-chaining hash table; results are materialized to CPU
//              memory (they may exceed GPU capacity) or aggregated.
//
// The 2nd pass and the join run as concurrent kernels on half the SMs each
// (Section 5.2), so the pass-2 transfer of pair i+1 overlaps the join of
// pair i. With a zero cache budget the algorithm degenerates to a plain
// two-pass out-of-core radix join (the Figure 19 baseline).

#ifndef TRITON_CORE_TRITON_JOIN_H_
#define TRITON_CORE_TRITON_JOIN_H_

#include <cstdint>

#include "data/relation.h"
#include "exec/device.h"
#include "join/common.h"
#include "partition/partitioner.h"
#include "util/status.h"

namespace triton::core {

/// Configuration of the Triton join.
struct TritonJoinConfig {
  /// Scratchpad hash scheme: kBucketChaining (default) or kPerfect; the
  /// paper measures them within 0-2% for partitioned joins.
  join::HashScheme scheme = join::HashScheme::kBucketChaining;
  join::ResultMode result_mode = join::ResultMode::kMaterialize;
  /// First-pass radix bits (0 = derive; the paper uses 6-10).
  uint32_t bits1 = 0;
  /// Second-pass radix bits (0 = derive; the paper uses 9).
  uint32_t bits2 = 0;
  /// Prefix sums on the CPU (default; 1.1x faster end-to-end, Figure 20)
  /// or on the GPU.
  bool gpu_prefix_sum = false;
  /// GPU-memory budget for caching partitioned state (Figure 19's knob).
  /// UINT64_MAX = everything that fits after pipeline reservations;
  /// 0 = no cache (degenerates to a two-pass radix join).
  uint64_t cache_bytes = UINT64_MAX;
  /// Overlap the 2nd partitioning pass with the join via concurrent
  /// kernels on half the SMs each (Section 5.2).
  bool overlap = true;
  /// First-pass partitioning algorithm; null = Hierarchical (Figure 17
  /// swaps in Standard/Linear/Shared here).
  partition::GpuPartitioner* pass1 = nullptr;
  /// SMs available to the join (Figure 24 scales this; 0 = all).
  uint32_t sms = 0;
};

/// Extra introspection the benches report alongside the JoinRun.
struct TritonJoinStats {
  uint32_t bits1 = 0;
  uint32_t bits2 = 0;
  /// Fraction of the partitioned intermediate state held in GPU memory.
  double cached_fraction = 0.0;
  /// Bytes of intermediate state spilled to CPU memory.
  uint64_t spilled_bytes = 0;
};

/// The Triton join; see file comment.
class TritonJoin {
 public:
  explicit TritonJoin(TritonJoinConfig config = {}) : config_(config) {}

  /// Joins r (build side) with s (probe side).
  util::StatusOr<join::JoinRun> Run(exec::Device& dev,
                                    const data::Relation& r,
                                    const data::Relation& s);

  const TritonJoinConfig& config() const { return config_; }
  const TritonJoinStats& stats() const { return stats_; }

  /// Derives the radix bits for a workload: bits2 targets scratchpad-sized
  /// final partitions with a 512-way second pass; bits1 covers the rest
  /// and additionally ensures a partition *pair* (R_i + S_i) fits the
  /// GPU-memory pipeline budget even for skewed build:probe ratios.
  static void DeriveBits(const sim::HwSpec& hw, uint64_t r_tuples,
                         uint64_t s_tuples, uint32_t* bits1, uint32_t* bits2);

 private:
  TritonJoinConfig config_;
  TritonJoinStats stats_;
};

}  // namespace triton::core

#endif  // TRITON_CORE_TRITON_JOIN_H_
