// DeviceSanitizer: a compute-sanitizer-style checking layer for the
// simulated GPU.
//
// The whole reproduction rests on one invariant: kernels do *real* work on
// host memory and *separately* account the simulated traffic
// (KernelContext::ReadSeq/WriteRand/Flush). Any drift between functional
// bytes and accounted bytes silently corrupts every figure read from the
// performance counters (Figures 14, 15, 18). On real hardware the paper's
// authors had cuda-memcheck / compute-sanitizer to catch scratchpad
// overflows, races on SWWC buffer locks and barrier divergence; this layer
// is the simulator's equivalent. It maintains shadow state per mem::Buffer
// and per scratchpad arena and checks, at Device::Launch granularity:
//
//   1. Accounting completeness — functional writes performed through the
//      checked-access API (KernelContext::Store<T>/Load<T>) must be covered
//      by accounted traffic within a tolerance, and accounted regions must
//      lie inside live allocations (catches out-of-bounds flushes such as a
//      cursor overrunning a partition extent).
//   2. Scratchpad memcheck — bounds and use-before-init on the per-block
//      arena (catches SwwcBufferTuples sizing bugs at extreme fanouts).
//   3. Warp racecheck — two lanes of different warps writing the same
//      scratchpad word between synchronization points, and lock-protocol
//      violations (flush of a buffer not held by the flushing leader) in
//      the Shared/Hierarchical partitioners.
//   4. Launch-invariant lint — counter sanity: tuples processed equals the
//      declared input size, issue slots are non-zero, and accounted bytes
//      cover at least tuples x width.
//
// Enablement: benches run with the sanitizer off (zero overhead; the
// checked accessors compile to raw stores). Tests link a translation unit
// that calls SetDefaultEnabled(true), and the TRITON_SANITIZER environment
// variable (0/1) overrides both. Violations are collected per Device and
// reported as util::Status with kernel/block/warp/partition provenance;
// Device aborts at destruction if violations were left unconsumed, so every
// existing partition/join test doubles as an accounting audit.

#ifndef TRITON_SANITIZER_SANITIZER_H_
#define TRITON_SANITIZER_SANITIZER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/allocator.h"
#include "mem/buffer.h"
#include "sim/perf_counters.h"
#include "util/status.h"

namespace triton::sanitizer {

/// Category of a sanitizer finding. Each negative test in
/// tests/sanitizer_test.cc asserts one specific code.
enum class ViolationCode {
  /// Accounted traffic outside any live allocation, or past the extent of
  /// the allocation it starts in (e.g. a flush overrunning the output).
  kAccountedOutOfBounds,
  /// A functional write through the checked API was not covered by
  /// accounted write traffic at launch end.
  kUnaccountedWrite,
  /// Scratchpad arena access out of bounds, or an arena larger than the
  /// hardware scratchpad capacity.
  kScratchpadOutOfBounds,
  /// Scratchpad word read before any warp initialized it.
  kScratchpadUseBeforeInit,
  /// Two different warps wrote the same scratchpad word with no
  /// synchronization point in between.
  kScratchpadRace,
  /// SWWC lock-protocol violation: buffer flushed by a warp that does not
  /// hold the buffer lock, double acquire, or release by a non-holder.
  kLockProtocol,
  /// Launch counters failed a sanity invariant (tuple count mismatch, zero
  /// issue slots, accounted bytes below tuples x width).
  kCounterInvariant,
  /// Query-arena lifecycle violation: an arena released twice, released
  /// out of order, or released while buffers allocated inside it are still
  /// live (mem::Allocator::EndArena refuses and reports here instead of
  /// silently corrupting the bump pointer).
  kArenaLiveness,
};

/// Returns a stable name for a violation code ("AccountedOutOfBounds", ...).
const char* ViolationCodeName(ViolationCode code);

/// One sanitizer finding with execution provenance.
struct Violation {
  ViolationCode code = ViolationCode::kCounterInvariant;
  /// Kernel name of the launch the violation occurred in ("<none>" when
  /// raised outside a launch).
  std::string kernel;
  uint32_t block = 0;
  uint32_t warp = 0;
  /// Radix partition being flushed, -1 when not applicable.
  int64_t partition = -1;
  /// Fully formatted message including the provenance prefix.
  std::string message;

  /// Renders the violation as a FailedPrecondition status.
  util::Status ToStatus() const;
};

/// Process-wide default enablement: SetDefaultEnabled(true) is called from
/// a translation unit linked into every test binary; the TRITON_SANITIZER
/// environment variable (0/1) overrides it in either direction.
bool DefaultEnabled();
void SetDefaultEnabled(bool enabled);

/// Per-Device checking engine. Owned by exec::Device when enabled; all
/// hooks are no-ops at call sites when the device has no sanitizer.
class DeviceSanitizer : public mem::AllocationObserver {
 public:
  DeviceSanitizer() = default;

  // --- Allocator liveness callbacks (mem::AllocationObserver) ---

  void OnAlloc(const mem::Buffer& buffer) override;
  void OnFree(const mem::Buffer& buffer) override;

  // --- Arena lifecycle callbacks (mem::AllocationObserver) ---

  /// Tracks the open frame so OnArenaEnd can audit liveness.
  void OnArenaBegin(uint64_t id, uint64_t base_addr) override;
  /// Cross-checks the allocator's own liveness accounting: any allocation
  /// still live at or above the frame's base address is a use-after-release
  /// hazard and reports kArenaLiveness.
  void OnArenaEnd(uint64_t id) override;
  /// Records the allocator's refusal as a kArenaLiveness violation.
  void OnArenaViolation(uint64_t id, const std::string& message) override;

  // --- Launch lifecycle (driven by exec::Device) ---

  /// Opens the shadow state for one kernel launch.
  void BeginLaunch(const std::string& kernel);

  /// Closes the launch: runs the accounting-completeness check over every
  /// buffer written through the checked API and the counter lint, then
  /// drops the per-launch shadow state.
  void EndLaunch(const sim::PerfCounters& counters);

  // --- Parallel block execution (exec::KernelContext::ForEachBlock) ---

  /// Creates a per-block child: the live-allocation map and launch scope
  /// are copied (read-only while blocks are in flight — the allocator must
  /// not be used inside a block), shadow maps and violations start empty.
  /// The child is not an allocation observer; merge it back with
  /// MergeBlock.
  std::unique_ptr<DeviceSanitizer> Fork() const;

  /// Folds one block's child state back into this sanitizer: violations
  /// are appended (keeping the child's block/warp provenance and program
  /// order) and the per-launch shadow write intervals are unioned. Must be
  /// called in block order so violation order — and therefore test output —
  /// is bit-identical to serial execution.
  void MergeBlock(DeviceSanitizer& child);

  // --- Execution provenance (drives violation messages) ---

  void set_block(uint32_t block) { scope_.block = block; }
  void set_warp(uint32_t warp) { scope_.warp = warp; }
  void set_partition(int64_t partition) { scope_.partition = partition; }

  // --- Recording hooks ---

  /// Records one accounted access (called from KernelContext::Account).
  /// Checks that [addr, addr+size) lies inside a live allocation.
  void RecordAccounted(uint64_t addr, uint64_t size, bool is_write);

  /// Records one functional write through the checked API.
  void RecordFunctionalWrite(uint64_t addr, uint64_t size);

  /// Declares the launch's expected tuple count and minimum tuple width in
  /// bytes for the counter lint (see ViolationCode::kCounterInvariant).
  void ExpectTuples(uint64_t tuples, uint64_t min_bytes_per_tuple);

  /// Appends a violation of `code`, prefixing the current provenance scope
  /// to `detail`. Exposed for the scratchpad shadow and for tests.
  void Report(ViolationCode code, const std::string& detail);

  /// Reports with an explicit warp (scratchpad/lock checks know the warp
  /// more precisely than the ambient scope).
  void ReportAtWarp(ViolationCode code, uint32_t warp,
                    const std::string& detail);

  // --- Results ---

  const std::vector<Violation>& violations() const { return violations_; }

  /// Removes and returns all collected violations (negative tests consume
  /// their expected findings so Device teardown stays quiet).
  std::vector<Violation> TakeViolations();

  /// OK when no violations were collected; otherwise the first violation
  /// as a FailedPrecondition status.
  util::Status CheckOk() const;

  /// Bytes of checked functional writes allowed to stay unaccounted per
  /// buffer and launch before kUnaccountedWrite fires. Default 0: the
  /// partitioning/join kernels account their flushes exactly.
  void set_coverage_tolerance(uint64_t bytes) { tolerance_bytes_ = bytes; }

 private:
  friend class ScratchpadShadow;

  /// Sorted, disjoint byte intervals keyed by start address.
  struct RangeSet {
    std::map<uint64_t, uint64_t> ranges;  // start -> end (exclusive)

    void Add(uint64_t begin, uint64_t end);
    /// Total bytes of this set not covered by `cover`.
    uint64_t UncoveredBy(const RangeSet& cover) const;
    uint64_t TotalBytes() const;
  };

  /// One live allocation as registered by the allocator.
  struct LiveAllocation {
    uint64_t size = 0;
  };

  std::string ScopePrefix(uint32_t warp) const;
  /// Returns the live allocation containing `addr`, or live_.end().
  std::map<uint64_t, LiveAllocation>::const_iterator FindAllocation(
      uint64_t addr) const;

  struct Scope {
    std::string kernel = "<none>";
    uint32_t block = 0;
    uint32_t warp = 0;
    int64_t partition = -1;
  };

  Scope scope_;
  bool in_launch_ = false;
  uint64_t tolerance_bytes_ = 0;

  /// Live allocations keyed by base address.
  std::map<uint64_t, LiveAllocation> live_;

  /// Open arena frames: id -> simulated base address of the frame.
  std::map<uint64_t, uint64_t> open_arenas_;

  // Per-launch shadow state, keyed by allocation base address.
  std::unordered_map<uint64_t, RangeSet> functional_writes_;
  std::unordered_map<uint64_t, RangeSet> accounted_writes_;

  // Launch lint expectations.
  bool expect_set_ = false;
  uint64_t expected_tuples_ = 0;
  uint64_t expected_min_width_ = 0;

  std::vector<Violation> violations_;
};

/// Shadow state for one thread block's scratchpad arena.
//
/// The partitioning kernels allocate their software-write-combining buffers
/// from the per-block scratchpad; this shadow mirrors that arena word by
/// word. Stores and loads carry the simulated warp id so the racecheck can
/// detect two warps touching the same word between synchronization points;
/// SyncRange models a buffer flush (the flushed region becomes reusable and
/// uninitialized), Barrier models __syncthreads. Buffer locks follow the
/// Shared partitioner's protocol: a flush must be performed by the warp
/// holding the buffer lock (Section 4.2 of the paper).
///
/// All methods are no-ops when constructed with a null sanitizer, so
/// kernels call them unconditionally.
class ScratchpadShadow {
 public:
  /// `bytes` is the arena size the kernel wants; `capacity_bytes` the
  /// hardware scratchpad capacity per block. Oversubscription is itself a
  /// kScratchpadOutOfBounds violation (the SwwcBufferTuples sizing class).
  ScratchpadShadow(DeviceSanitizer* san, uint64_t bytes,
                   uint64_t capacity_bytes);

  /// Records warp `warp` writing [offset, offset+size) of the arena.
  void Store(uint64_t offset, uint64_t size, uint32_t warp);

  /// Records warp `warp` reading [offset, offset+size) of the arena.
  void Load(uint64_t offset, uint64_t size, uint32_t warp);

  /// Synchronization point covering [offset, offset+size): clears the race
  /// window and the init state (a flushed buffer is logically empty).
  void SyncRange(uint64_t offset, uint64_t size);

  /// Block-wide synchronization point (__syncthreads): clears the race
  /// window everywhere, init state is kept.
  void Barrier();

  /// Warp `warp` acquires buffer lock `lock` (blocking acquire; acquiring
  /// a lock already held by another warp is modelled as waiting, acquiring
  /// a lock already held by the same warp is a violation).
  void AcquireLock(uint32_t lock, uint32_t warp);

  /// Warp `warp` releases buffer lock `lock`.
  void ReleaseLock(uint32_t lock, uint32_t warp);

  /// Declares that warp `warp` flushes the buffer guarded by `lock`; the
  /// flushing leader must hold the lock.
  void NoteFlush(uint32_t lock, uint32_t warp);

 private:
  static constexpr uint64_t kWordBytes = 8;

  /// Bounds-checks one access; returns false (and reports) when outside
  /// the arena.
  bool CheckBounds(uint64_t offset, uint64_t size, uint32_t warp,
                   const char* what);

  DeviceSanitizer* san_;  // null => every method is a no-op
  uint64_t bytes_ = 0;
  std::vector<int32_t> last_writer_;  // per word, -1 = none since last sync
  std::vector<uint8_t> initialized_;  // per word
  std::unordered_map<uint32_t, uint32_t> lock_holder_;  // lock -> warp
};

}  // namespace triton::sanitizer

#endif  // TRITON_SANITIZER_SANITIZER_H_
