#include "sanitizer/sanitizer.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "util/logging.h"

namespace triton::sanitizer {

namespace {

/// -1 unknown, 0 disabled, 1 enabled.
int g_default_enabled = 0;

}  // namespace

bool DefaultEnabled() {
  const char* env = std::getenv("TRITON_SANITIZER");
  if (env != nullptr && env[0] != '\0') {
    return std::strcmp(env, "0") != 0;
  }
  return g_default_enabled != 0;
}

void SetDefaultEnabled(bool enabled) { g_default_enabled = enabled ? 1 : 0; }

const char* ViolationCodeName(ViolationCode code) {
  switch (code) {
    case ViolationCode::kAccountedOutOfBounds:
      return "AccountedOutOfBounds";
    case ViolationCode::kUnaccountedWrite:
      return "UnaccountedWrite";
    case ViolationCode::kScratchpadOutOfBounds:
      return "ScratchpadOutOfBounds";
    case ViolationCode::kScratchpadUseBeforeInit:
      return "ScratchpadUseBeforeInit";
    case ViolationCode::kScratchpadRace:
      return "ScratchpadRace";
    case ViolationCode::kLockProtocol:
      return "LockProtocol";
    case ViolationCode::kCounterInvariant:
      return "CounterInvariant";
    case ViolationCode::kArenaLiveness:
      return "ArenaLiveness";
  }
  return "Unknown";
}

util::Status Violation::ToStatus() const {
  return util::Status::FailedPrecondition(std::string(ViolationCodeName(code)) +
                                          ": " + message);
}

// --- RangeSet ---

void DeviceSanitizer::RangeSet::Add(uint64_t begin, uint64_t end) {
  if (begin >= end) return;
  // Merge with any overlapping or adjacent intervals.
  auto it = ranges.upper_bound(begin);
  if (it != ranges.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      begin = prev->first;
      end = std::max(end, prev->second);
      it = ranges.erase(prev);
    }
  }
  while (it != ranges.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = ranges.erase(it);
  }
  ranges.emplace(begin, end);
}

uint64_t DeviceSanitizer::RangeSet::UncoveredBy(const RangeSet& cover) const {
  uint64_t uncovered = 0;
  for (const auto& [begin, end] : ranges) {
    uint64_t pos = begin;
    // Walk the covering intervals that overlap [pos, end).
    auto it = cover.ranges.upper_bound(pos);
    if (it != cover.ranges.begin()) {
      auto prev = std::prev(it);
      if (prev->second > pos) it = prev;
    }
    while (pos < end) {
      if (it == cover.ranges.end() || it->first >= end) {
        uncovered += end - pos;
        break;
      }
      if (it->first > pos) uncovered += it->first - pos;
      pos = std::max(pos, it->second);
      ++it;
    }
  }
  return uncovered;
}

uint64_t DeviceSanitizer::RangeSet::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [begin, end] : ranges) total += end - begin;
  return total;
}

// --- Liveness ---

void DeviceSanitizer::OnAlloc(const mem::Buffer& buffer) {
  live_[buffer.base_addr()] = LiveAllocation{buffer.size()};
}

void DeviceSanitizer::OnFree(const mem::Buffer& buffer) {
  const uint64_t base = buffer.base_addr();
  live_.erase(base);
  // A later allocation may reuse the address; drop stale shadow intervals.
  functional_writes_.erase(base);
  accounted_writes_.erase(base);
}

void DeviceSanitizer::OnArenaBegin(uint64_t id, uint64_t base_addr) {
  open_arenas_[id] = base_addr;
}

void DeviceSanitizer::OnArenaEnd(uint64_t id) {
  auto it = open_arenas_.find(id);
  if (it == open_arenas_.end()) {
    Report(ViolationCode::kArenaLiveness,
           "arena " + std::to_string(id) + " closed but was never opened");
    return;
  }
  const uint64_t base = it->second;
  // Independent audit of the allocator's liveness accounting: every
  // allocation handed out inside the frame lives at or above its base
  // address (the bump pointer never moves backwards while a frame is
  // open), so anything still live up there outlives its arena.
  for (const auto& [addr, alloc] : live_) {
    if (addr >= base) {
      std::ostringstream os;
      os << "arena " << id << " closed with live allocation at 0x"
         << std::hex << addr << std::dec << " (" << alloc.size << " bytes)";
      Report(ViolationCode::kArenaLiveness, os.str());
    }
  }
  open_arenas_.erase(it);
}

void DeviceSanitizer::OnArenaViolation(uint64_t id,
                                       const std::string& message) {
  Report(ViolationCode::kArenaLiveness,
         "arena " + std::to_string(id) + ": " + message);
}

std::map<uint64_t, DeviceSanitizer::LiveAllocation>::const_iterator
DeviceSanitizer::FindAllocation(uint64_t addr) const {
  auto it = live_.upper_bound(addr);
  if (it == live_.begin()) return live_.end();
  --it;
  if (addr >= it->first + it->second.size) return live_.end();
  return it;
}

// --- Launch lifecycle ---

void DeviceSanitizer::BeginLaunch(const std::string& kernel) {
  scope_ = Scope();
  scope_.kernel = kernel;
  in_launch_ = true;
  functional_writes_.clear();
  accounted_writes_.clear();
  expect_set_ = false;
}

void DeviceSanitizer::EndLaunch(const sim::PerfCounters& counters) {
  // 1. Accounting completeness: every checked functional write must be
  //    covered by accounted write traffic on the same allocation.
  for (const auto& [base, functional] : functional_writes_) {
    auto acc = accounted_writes_.find(base);
    static const RangeSet kEmpty;
    const RangeSet& accounted =
        acc != accounted_writes_.end() ? acc->second : kEmpty;
    uint64_t uncovered = functional.UncoveredBy(accounted);
    if (uncovered > tolerance_bytes_) {
      std::ostringstream msg;
      msg << uncovered << " B of functional writes to allocation at 0x"
          << std::hex << base << std::dec << " (" << functional.TotalBytes()
          << " B stored, " << accounted.TotalBytes()
          << " B accounted) have no accounted traffic";
      Report(ViolationCode::kUnaccountedWrite, msg.str());
    }
  }

  // 2. Counter lint.
  if (expect_set_) {
    if (counters.tuples != expected_tuples_) {
      std::ostringstream msg;
      msg << "kernel processed " << counters.tuples << " tuples, expected "
          << expected_tuples_;
      Report(ViolationCode::kCounterInvariant, msg.str());
    }
    uint64_t accounted_bytes = counters.gpu_mem_read + counters.gpu_mem_write +
                               counters.link_read_payload +
                               counters.link_write_payload +
                               counters.cpu_mem_read + counters.cpu_mem_write;
    uint64_t floor = expected_tuples_ * expected_min_width_;
    if (accounted_bytes < floor) {
      std::ostringstream msg;
      msg << "accounted " << accounted_bytes << " B of traffic, below the "
          << floor << " B floor (" << expected_tuples_ << " tuples x "
          << expected_min_width_ << " B)";
      Report(ViolationCode::kCounterInvariant, msg.str());
    }
    // Only linted for kernels that declared expectations: copy-engine
    // transfers legitimately move tuples without charging SM issue slots.
    if (counters.tuples > 0 && counters.issue_slots == 0) {
      Report(ViolationCode::kCounterInvariant,
             "kernel processed tuples but charged zero issue slots");
    }
  }

  functional_writes_.clear();
  accounted_writes_.clear();
  expect_set_ = false;
  in_launch_ = false;
  scope_ = Scope();
}

// --- Parallel block execution ---

std::unique_ptr<DeviceSanitizer> DeviceSanitizer::Fork() const {
  auto child = std::make_unique<DeviceSanitizer>();
  child->live_ = live_;
  child->scope_ = scope_;
  child->in_launch_ = in_launch_;
  child->tolerance_bytes_ = tolerance_bytes_;
  return child;
}

void DeviceSanitizer::MergeBlock(DeviceSanitizer& child) {
  for (auto& v : child.violations_) violations_.push_back(std::move(v));
  child.violations_.clear();
  // Interval union is order-independent, so the unordered_map iteration
  // order below cannot affect the merged state.
  for (auto& [base, set] : child.functional_writes_) {
    auto& dst = functional_writes_[base];
    for (const auto& [begin, end] : set.ranges) dst.Add(begin, end);
  }
  for (auto& [base, set] : child.accounted_writes_) {
    auto& dst = accounted_writes_[base];
    for (const auto& [begin, end] : set.ranges) dst.Add(begin, end);
  }
  child.functional_writes_.clear();
  child.accounted_writes_.clear();
}

// --- Recording ---

void DeviceSanitizer::RecordAccounted(uint64_t addr, uint64_t size,
                                      bool is_write) {
  if (size == 0) return;
  auto it = FindAllocation(addr);
  if (it == live_.end()) {
    std::ostringstream msg;
    msg << "accounted " << (is_write ? "write" : "read") << " of " << size
        << " B at 0x" << std::hex << addr << std::dec
        << " hits no live allocation";
    Report(ViolationCode::kAccountedOutOfBounds, msg.str());
    return;
  }
  const uint64_t end = it->first + it->second.size;
  if (addr + size > end) {
    std::ostringstream msg;
    msg << (is_write ? "flush wrote " : "read overran ") << addr + size - end
        << " B past extent of the " << it->second.size
        << " B allocation at 0x" << std::hex << it->first << std::dec;
    Report(ViolationCode::kAccountedOutOfBounds, msg.str());
    // Clamp so the coverage bookkeeping stays inside the allocation.
    size = end - addr;
  }
  if (is_write && in_launch_) {
    accounted_writes_[it->first].Add(addr, addr + size);
  }
}

void DeviceSanitizer::RecordFunctionalWrite(uint64_t addr, uint64_t size) {
  if (size == 0 || !in_launch_) return;
  auto it = FindAllocation(addr);
  if (it == live_.end()) return;  // raw CHECK macros guard this path already
  functional_writes_[it->first].Add(addr, addr + size);
}

void DeviceSanitizer::ExpectTuples(uint64_t tuples,
                                   uint64_t min_bytes_per_tuple) {
  expect_set_ = true;
  expected_tuples_ = tuples;
  expected_min_width_ = min_bytes_per_tuple;
}

// --- Reporting ---

std::string DeviceSanitizer::ScopePrefix(uint32_t warp) const {
  std::ostringstream out;
  out << "kernel " << scope_.kernel << ", block " << scope_.block << ", warp "
      << warp;
  if (scope_.partition >= 0) out << ", partition " << scope_.partition;
  out << ": ";
  return out.str();
}

void DeviceSanitizer::Report(ViolationCode code, const std::string& detail) {
  ReportAtWarp(code, scope_.warp, detail);
}

void DeviceSanitizer::ReportAtWarp(ViolationCode code, uint32_t warp,
                                   const std::string& detail) {
  Violation v;
  v.code = code;
  v.kernel = scope_.kernel;
  v.block = scope_.block;
  v.warp = warp;
  v.partition = scope_.partition;
  v.message = ScopePrefix(warp) + detail;
  violations_.push_back(std::move(v));
}

std::vector<Violation> DeviceSanitizer::TakeViolations() {
  std::vector<Violation> out;
  out.swap(violations_);
  return out;
}

util::Status DeviceSanitizer::CheckOk() const {
  if (violations_.empty()) return util::Status::OK();
  return violations_.front().ToStatus();
}

// --- ScratchpadShadow ---

ScratchpadShadow::ScratchpadShadow(DeviceSanitizer* san, uint64_t bytes,
                                   uint64_t capacity_bytes)
    : san_(san), bytes_(bytes) {
  if (san_ == nullptr) return;
  if (bytes > capacity_bytes) {
    std::ostringstream msg;
    msg << "scratchpad arena of " << bytes << " B exceeds the "
        << capacity_bytes << " B per-block capacity";
    san_->Report(ViolationCode::kScratchpadOutOfBounds, msg.str());
  }
  const uint64_t words = (bytes + kWordBytes - 1) / kWordBytes;
  last_writer_.assign(words, -1);
  initialized_.assign(words, 0);
}

bool ScratchpadShadow::CheckBounds(uint64_t offset, uint64_t size,
                                   uint32_t warp, const char* what) {
  if (offset + size <= bytes_) return true;
  std::ostringstream msg;
  msg << "scratchpad " << what << " of " << size << " B at offset " << offset
      << " overruns the " << bytes_ << " B arena by "
      << offset + size - bytes_ << " B";
  san_->ReportAtWarp(ViolationCode::kScratchpadOutOfBounds, warp, msg.str());
  return false;
}

void ScratchpadShadow::Store(uint64_t offset, uint64_t size, uint32_t warp) {
  if (san_ == nullptr || size == 0) return;
  if (!CheckBounds(offset, size, warp, "store")) return;
  const uint64_t first = offset / kWordBytes;
  const uint64_t last = (offset + size - 1) / kWordBytes;
  for (uint64_t w = first; w <= last; ++w) {
    int32_t prev = last_writer_[w];
    if (prev >= 0 && static_cast<uint32_t>(prev) != warp) {
      std::ostringstream msg;
      msg << "warps " << prev << " and " << warp
          << " wrote scratchpad word at offset " << w * kWordBytes
          << " with no synchronization point in between";
      san_->ReportAtWarp(ViolationCode::kScratchpadRace, warp, msg.str());
    }
    last_writer_[w] = static_cast<int32_t>(warp);
    initialized_[w] = 1;
  }
}

void ScratchpadShadow::Load(uint64_t offset, uint64_t size, uint32_t warp) {
  if (san_ == nullptr || size == 0) return;
  if (!CheckBounds(offset, size, warp, "load")) return;
  const uint64_t first = offset / kWordBytes;
  const uint64_t last = (offset + size - 1) / kWordBytes;
  for (uint64_t w = first; w <= last; ++w) {
    if (!initialized_[w]) {
      std::ostringstream msg;
      msg << "scratchpad word at offset " << w * kWordBytes
          << " read before any warp initialized it";
      san_->ReportAtWarp(ViolationCode::kScratchpadUseBeforeInit, warp,
                         msg.str());
      return;  // one report per load is enough
    }
  }
}

void ScratchpadShadow::SyncRange(uint64_t offset, uint64_t size) {
  if (san_ == nullptr || size == 0) return;
  const uint64_t first = offset / kWordBytes;
  const uint64_t last = (offset + size - 1) / kWordBytes;
  for (uint64_t w = first; w <= last && w < last_writer_.size(); ++w) {
    last_writer_[w] = -1;
    initialized_[w] = 0;
  }
}

void ScratchpadShadow::Barrier() {
  if (san_ == nullptr) return;
  std::fill(last_writer_.begin(), last_writer_.end(), -1);
}

void ScratchpadShadow::AcquireLock(uint32_t lock, uint32_t warp) {
  if (san_ == nullptr) return;
  auto it = lock_holder_.find(lock);
  if (it != lock_holder_.end()) {
    // The simulation is sequential: a holder cannot release while another
    // warp spins, so acquiring a held lock is a re-acquire bug or a
    // guaranteed deadlock on real hardware.
    std::ostringstream msg;
    if (it->second == warp) {
      msg << "warp re-acquired buffer lock " << lock << " it already holds";
    } else {
      msg << "warp acquired buffer lock " << lock << " still held by warp "
          << it->second << " (deadlock on real hardware)";
    }
    san_->ReportAtWarp(ViolationCode::kLockProtocol, warp, msg.str());
    return;
  }
  lock_holder_[lock] = warp;
}

void ScratchpadShadow::ReleaseLock(uint32_t lock, uint32_t warp) {
  if (san_ == nullptr) return;
  auto it = lock_holder_.find(lock);
  if (it == lock_holder_.end() || it->second != warp) {
    std::ostringstream msg;
    msg << "warp released buffer lock " << lock << " it does not hold";
    san_->ReportAtWarp(ViolationCode::kLockProtocol, warp, msg.str());
    return;
  }
  lock_holder_.erase(it);
}

void ScratchpadShadow::NoteFlush(uint32_t lock, uint32_t warp) {
  if (san_ == nullptr) return;
  auto it = lock_holder_.find(lock);
  if (it == lock_holder_.end() || it->second != warp) {
    std::ostringstream msg;
    msg << "buffer " << lock << " flushed by a warp that does not hold its "
        << "lock (holder: ";
    if (it == lock_holder_.end()) {
      msg << "none";
    } else {
      msg << "warp " << it->second;
    }
    msg << ")";
    san_->ReportAtWarp(ViolationCode::kLockProtocol, warp, msg.str());
  }
}

}  // namespace triton::sanitizer
