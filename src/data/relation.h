// Column-oriented relations (the paper stores R and S columnar,
// Section 6.1).
//
// A relation has one key column and zero or more 8-byte payload columns;
// the default workload uses 16-byte <key, record-id> tuples, i.e. one
// payload column. Columns are separate simulated-memory buffers so that
// kernels can stream exactly the columns they touch (the prefix sum reads
// only the key column; late materialization gathers payload columns with
// random accesses — Figure 22).

#ifndef TRITON_DATA_RELATION_H_
#define TRITON_DATA_RELATION_H_

#include <cstdint>
#include <vector>

#include "mem/allocator.h"
#include "mem/buffer.h"
#include "util/status.h"

namespace triton::data {

/// Join key type (8 bytes, as in the paper's 16-byte tuples).
using Key = int64_t;
/// Payload / record-id type (8 bytes).
using Value = int64_t;

inline constexpr uint64_t kKeyBytes = sizeof(Key);
inline constexpr uint64_t kValueBytes = sizeof(Value);
/// Default tuple width: key + one payload attribute.
inline constexpr uint64_t kTupleBytes = kKeyBytes + kValueBytes;

/// A column-oriented table in simulated memory.
class Relation {
 public:
  Relation() = default;

  /// Allocates an uninitialized relation with `rows` rows and
  /// `payload_cols` payload columns in CPU memory.
  static util::StatusOr<Relation> AllocateCpu(mem::Allocator& alloc,
                                              uint64_t rows,
                                              uint32_t payload_cols = 1);

  uint64_t rows() const { return rows_; }
  uint32_t payload_cols() const {
    return static_cast<uint32_t>(payloads_.size());
  }

  /// Bytes per tuple across all columns.
  uint64_t tuple_bytes() const {
    return kKeyBytes + payload_cols() * kValueBytes;
  }

  /// Total bytes across all columns.
  uint64_t total_bytes() const { return rows_ * tuple_bytes(); }

  Key* keys() { return keys_.as<Key>(); }
  const Key* keys() const { return keys_.as<Key>(); }

  Value* payload(uint32_t col = 0) { return payloads_[col].as<Value>(); }
  const Value* payload(uint32_t col = 0) const {
    return payloads_[col].as<Value>();
  }

  mem::Buffer& key_buffer() { return keys_; }
  const mem::Buffer& key_buffer() const { return keys_; }
  mem::Buffer& payload_buffer(uint32_t col = 0) { return payloads_[col]; }
  const mem::Buffer& payload_buffer(uint32_t col = 0) const {
    return payloads_[col];
  }

 private:
  uint64_t rows_ = 0;
  mem::Buffer keys_;
  std::vector<mem::Buffer> payloads_;
};

}  // namespace triton::data

#endif  // TRITON_DATA_RELATION_H_
