#include "data/relation.h"

namespace triton::data {

util::StatusOr<Relation> Relation::AllocateCpu(mem::Allocator& alloc,
                                               uint64_t rows,
                                               uint32_t payload_cols) {
  if (rows == 0) {
    return util::Status::InvalidArgument("relation must have at least 1 row");
  }
  Relation rel;
  rel.rows_ = rows;
  auto keys = alloc.AllocateCpu(rows * kKeyBytes);
  if (!keys.ok()) return keys.status();
  rel.keys_ = std::move(keys).value();
  for (uint32_t c = 0; c < payload_cols; ++c) {
    auto col = alloc.AllocateCpu(rows * kValueBytes);
    if (!col.ok()) return col.status();
    rel.payloads_.push_back(std::move(col).value());
  }
  return rel;
}

}  // namespace triton::data
