#include "data/generator.h"

#include <cmath>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/fastpath.h"
#include "util/logging.h"
#include "util/random.h"

namespace triton::data {

namespace {

/// Content cache for the most recently generated workload (fast path
/// only). Benches rebuild the identical workload once per series at every
/// sweep point, and the fill loops — a Fisher–Yates shuffle plus per-tuple
/// RNG draws over hundreds of MiB — dominate host time for small kernels.
/// A hit replays the exact bytes the fills would have produced into the
/// freshly allocated buffers, so relation contents (and every modeled
/// quantity derived from them) are bit-identical. Bounded so paper-scale
/// workloads never pin gigabytes of host memory.
struct WorkloadCache {
  std::mutex mu;
  bool valid = false;
  WorkloadConfig config;
  std::vector<Key> r_keys, s_keys;
  std::vector<std::vector<Value>> r_payloads, s_payloads;
};

WorkloadCache& Cache() {
  static WorkloadCache* cache = new WorkloadCache;
  return *cache;
}

constexpr uint64_t kMaxCachedWorkloadBytes = 512ull << 20;

bool SameConfig(const WorkloadConfig& a, const WorkloadConfig& b) {
  return a.r_tuples == b.r_tuples && a.s_tuples == b.s_tuples &&
         a.payload_cols == b.payload_cols && a.seed == b.seed &&
         a.shuffle_keys == b.shuffle_keys && a.zipf_theta == b.zipf_theta;
}

void CopyInto(Relation& rel, const std::vector<Key>& keys,
              const std::vector<std::vector<Value>>& payloads) {
  std::memcpy(rel.keys(), keys.data(), keys.size() * sizeof(Key));
  for (uint32_t c = 0; c < rel.payload_cols(); ++c) {
    std::memcpy(rel.payload(c), payloads[c].data(),
                payloads[c].size() * sizeof(Value));
  }
}

void CopyOut(const Relation& rel, std::vector<Key>& keys,
             std::vector<std::vector<Value>>& payloads) {
  keys.assign(rel.keys(), rel.keys() + rel.rows());
  payloads.resize(rel.payload_cols());
  for (uint32_t c = 0; c < rel.payload_cols(); ++c) {
    payloads[c].assign(rel.payload(c), rel.payload(c) + rel.rows());
  }
}

}  // namespace

void FillPrimaryKeys(Relation& rel, uint64_t seed, bool shuffle) {
  Key* keys = rel.keys();
  const uint64_t n = rel.rows();
  for (uint64_t i = 0; i < n; ++i) keys[i] = static_cast<Key>(i + 1);
  if (shuffle) {
    util::Rng rng(seed ^ 0xfeedbeefULL);
    for (uint64_t i = n; i > 1; --i) {
      uint64_t j = rng.NextBounded(i);
      std::swap(keys[i - 1], keys[j]);
    }
  }
}

void FillForeignKeys(Relation& rel, uint64_t fk_domain, uint64_t seed) {
  CHECK_GT(fk_domain, 0u);
  Key* keys = rel.keys();
  const uint64_t n = rel.rows();
  util::Rng rng(seed ^ 0xabcdef12ULL);
  for (uint64_t i = 0; i < n; ++i) {
    keys[i] = static_cast<Key>(rng.NextBounded(fk_domain) + 1);
  }
}

void FillPayloads(Relation& rel, uint64_t seed) {
  for (uint32_t c = 0; c < rel.payload_cols(); ++c) {
    Value* col = rel.payload(c);
    uint64_t state = seed + 0x1234567ULL * (c + 1);
    for (uint64_t i = 0; i < rel.rows(); ++i) {
      col[i] = static_cast<Value>(util::SplitMix64(state));
    }
  }
}

void FillForeignKeysZipf(Relation& rel, uint64_t fk_domain, double theta,
                         uint64_t seed) {
  CHECK_GT(fk_domain, 0u);
  if (theta <= 0.0) {
    FillForeignKeys(rel, fk_domain, seed);
    return;
  }
  Key* keys = rel.keys();
  util::Rng rng(seed ^ 0x5a5a5a5aULL);
  const double n = static_cast<double>(fk_domain);
  if (std::abs(theta - 1.0) < 1e-9) theta = 1.0 + 1e-6;
  // Approximate inverse CDF of the Zipf distribution via the generalized
  // harmonic number H_theta(k) ~ (k^(1-theta) - 1) / (1 - theta).
  const double one_minus = 1.0 - theta;
  const double h_n = (std::pow(n, one_minus) - 1.0) / one_minus;
  for (uint64_t i = 0; i < rel.rows(); ++i) {
    double u = rng.NextDouble();
    double k = std::pow(u * h_n * one_minus + 1.0, 1.0 / one_minus);
    uint64_t key = static_cast<uint64_t>(k);
    if (key < 1) key = 1;
    if (key > fk_domain) key = fk_domain;
    keys[i] = static_cast<Key>(key);
  }
  // The Zipf ranks correlate with key *values* (key 1 is hottest), but the
  // primary keys of R are already randomly shuffled across R, so hot keys
  // land at random build-side positions — no extra decorrelation needed.
}

util::StatusOr<Workload> GenerateWorkload(mem::Allocator& alloc,
                                          const WorkloadConfig& config) {
  if (config.r_tuples == 0 || config.s_tuples == 0) {
    return util::Status::InvalidArgument("relation cardinality must be > 0");
  }
  Workload wl;
  auto r = Relation::AllocateCpu(alloc, config.r_tuples, config.payload_cols);
  if (!r.ok()) return r.status();
  wl.r = std::move(r).value();
  auto s = Relation::AllocateCpu(alloc, config.s_tuples, config.payload_cols);
  if (!s.ok()) return s.status();
  wl.s = std::move(s).value();

  const uint64_t workload_bytes =
      (config.r_tuples + config.s_tuples) *
      (sizeof(Key) + config.payload_cols * sizeof(Value));
  const bool cacheable = util::FastPathEnabled() &&
                         workload_bytes <= kMaxCachedWorkloadBytes;
  bool hit = false;
  if (cacheable) {
    WorkloadCache& cache = Cache();
    std::lock_guard<std::mutex> lock(cache.mu);
    if (cache.valid && SameConfig(cache.config, config)) {
      CopyInto(wl.r, cache.r_keys, cache.r_payloads);
      CopyInto(wl.s, cache.s_keys, cache.s_payloads);
      hit = true;
    }
  }
  if (!hit) {
    FillPrimaryKeys(wl.r, config.seed, config.shuffle_keys);
    if (config.zipf_theta > 0.0) {
      FillForeignKeysZipf(wl.s, config.r_tuples, config.zipf_theta,
                          config.seed + 1);
    } else {
      FillForeignKeys(wl.s, config.r_tuples, config.seed + 1);
    }
    FillPayloads(wl.r, config.seed + 2);
    FillPayloads(wl.s, config.seed + 3);
    if (cacheable) {
      WorkloadCache& cache = Cache();
      std::lock_guard<std::mutex> lock(cache.mu);
      cache.config = config;
      CopyOut(wl.r, cache.r_keys, cache.r_payloads);
      CopyOut(wl.s, cache.s_keys, cache.s_payloads);
      cache.valid = true;
    }
  }

  // Primary-key/foreign-key join: every S tuple matches exactly one R tuple.
  wl.expected_join_cardinality = config.s_tuples;
  return wl;
}

uint64_t ReferenceJoinCardinality(const Relation& r, const Relation& s) {
  std::unordered_map<Key, uint64_t> counts;
  counts.reserve(r.rows() * 2);
  for (uint64_t i = 0; i < r.rows(); ++i) ++counts[r.keys()[i]];
  uint64_t total = 0;
  for (uint64_t j = 0; j < s.rows(); ++j) {
    auto it = counts.find(s.keys()[j]);
    if (it != counts.end()) total += it->second;
  }
  return total;
}

}  // namespace triton::data
