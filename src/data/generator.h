// Workload generation following the paper's Section 6.1.
//
// The default workload consists of two relations R (build side, primary
// keys) and S (probe side, foreign keys). Primary keys are a random shuffle
// of 1..|R|; foreign keys are drawn uniformly from [1, |R|]; record-ids are
// random values. All relations are column-oriented in pageable CPU memory.

#ifndef TRITON_DATA_GENERATOR_H_
#define TRITON_DATA_GENERATOR_H_

#include <cstdint>

#include "data/relation.h"
#include "mem/allocator.h"
#include "util/status.h"

namespace triton::data {

/// Parameters for one R/S workload instance.
struct WorkloadConfig {
  /// Build-side cardinality (R holds primary keys).
  uint64_t r_tuples = 0;
  /// Probe-side cardinality (S references R's keys).
  uint64_t s_tuples = 0;
  /// Payload attributes per relation (1 = the default 16-byte tuple).
  uint32_t payload_cols = 1;
  /// RNG seed; distinct runs in a bench vary this.
  uint64_t seed = 42;
  /// If true, the primary keys are randomly shuffled (the paper's default).
  bool shuffle_keys = true;
  /// Zipf skew of the foreign keys (0 = the paper's uniform default).
  double zipf_theta = 0.0;
};

/// A generated workload: both relations plus ground truth for validation.
struct Workload {
  Relation r;
  Relation s;
  /// The exact number of output tuples an equi-join R |><| S produces.
  /// For PK/FK workloads every S tuple matches exactly once, so this is
  /// |S|; kept explicit so skewed/variant generators stay checkable.
  uint64_t expected_join_cardinality = 0;
};

/// Generates R with shuffled primary keys 1..r_tuples and S with uniform
/// foreign keys into R.
util::StatusOr<Workload> GenerateWorkload(mem::Allocator& alloc,
                                          const WorkloadConfig& config);

/// Fills an already-allocated relation with shuffled primary keys 1..rows.
void FillPrimaryKeys(Relation& rel, uint64_t seed, bool shuffle);

/// Fills an already-allocated relation with uniform foreign keys in
/// [1, fk_domain].
void FillForeignKeys(Relation& rel, uint64_t fk_domain, uint64_t seed);

/// Fills an already-allocated relation with Zipf-distributed foreign keys
/// in [1, fk_domain] with skew parameter `theta` (0 = uniform; ~1 = heavy
/// skew). Uses the standard approximate inverse-CDF sampler (Gray et al.).
/// Skewed probe sides are an extension beyond the paper's uniform default;
/// the Triton join handles them via chunked scratchpad builds.
void FillForeignKeysZipf(Relation& rel, uint64_t fk_domain, double theta,
                         uint64_t seed);

/// Fills every payload column of `rel` with pseudo-random values.
void FillPayloads(Relation& rel, uint64_t seed);

/// Reference join cardinality computed by brute force over small inputs
/// (tests use this to validate generators and joins).
uint64_t ReferenceJoinCardinality(const Relation& r, const Relation& s);

}  // namespace triton::data

#endif  // TRITON_DATA_GENERATOR_H_
