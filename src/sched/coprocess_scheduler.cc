#include "sched/coprocess_scheduler.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "exec/block_executor.h"
#include "hash/bucket_chain_table.h"
#include "join/scratch_join.h"
#include "partition/hierarchical.h"
#include "partition/input.h"
#include "partition/layout.h"
#include "partition/prefix_sum.h"
#include "partition/shared.h"
#include "sched/predict.h"
#include "util/bits.h"
#include "util/fastpath.h"
#include "util/logging.h"
#include "util/random.h"

namespace triton::sched {

namespace {

/// SM-cycles per refined partition pair for the join task scheduler kernel
/// (same calibration as core::TritonJoin).
constexpr double kSchedCyclesPerPair = 13000.0;

/// A pass-1 partition pair: the scheduler's morsel.
struct PairDesc {
  uint32_t p = 0;
  uint64_t r_n = 0;
  uint64_t s_n = 0;
  uint64_t tuples() const { return r_n + s_n; }
};

/// Outcome of one CPU-joined pair, reduced in pair order.
struct PairOutcome {
  uint64_t matches = 0;
  uint64_t checksum = 0;
  std::vector<partition::Tuple> rows;
};

}  // namespace

double BoundedPipelineSeconds(const std::vector<double>& bw_stage,
                              const std::vector<double>& compute_stage,
                              uint32_t depth) {
  CHECK_EQ(bw_stage.size(), compute_stage.size());
  const size_t n = bw_stage.size();
  if (n == 0) return 0.0;
  const uint32_t d = std::max(depth, 1u);
  std::vector<double> comp_done(n, 0.0);
  double prev_bw_done = 0.0;
  double prev_comp_done = 0.0;
  for (size_t k = 0; k < n; ++k) {
    // The copy-in of pair k waits for the previous copy-in (the link is
    // serial) and for its staging slot, which pair k - depth occupies
    // until its compute finishes.
    double bw_start = prev_bw_done;
    if (k >= d) bw_start = std::max(bw_start, comp_done[k - d]);
    const double bw_done = bw_start + bw_stage[k];
    // Compute of pair k needs its data staged and the GPU free.
    const double comp_start = std::max(bw_done, prev_comp_done);
    comp_done[k] = comp_start + compute_stage[k];
    prev_bw_done = bw_done;
    prev_comp_done = comp_done[k];
  }
  return comp_done[n - 1];
}

void CoProcessScheduler::DeriveBits(const sim::HwSpec& hw, uint64_t r_tuples,
                                    uint64_t s_tuples, uint32_t* bits1,
                                    uint32_t* bits2) {
  // Same total refinement depth as TritonJoin::DeriveBits (final
  // partitions of ~1024 tuples), but pass 1 claims at least kMinPairBits
  // of it so the split always has >= 32 morsels to work with; the task
  // scheduler's per-refined-pair cost depends only on the total, so
  // shifting bits between the passes keeps the pipeline cost comparable.
  uint32_t total = util::CeilLog2(util::CeilDiv(r_tuples, 1024));
  total = std::max(total, 2u);
  uint32_t b1 = std::max(total > 9 ? total - 9 : 1u, kMinPairBits);
  if (b1 >= total) b1 = total - 1;
  uint32_t b2 = total - b1;
  // A pair (R_i + S_i) must fit the GPU-memory pipeline budget (same rule
  // as TritonJoin).
  uint64_t pair_bytes =
      ((r_tuples + s_tuples) * sizeof(partition::Tuple)) >> b1;
  while (pair_bytes * 4 > hw.gpu_mem.capacity / 2) {
    ++b1;
    pair_bytes /= 2;
  }
  *bits1 = b1;
  *bits2 = b2;
}

util::StatusOr<join::JoinRun> CoProcessScheduler::Run(
    exec::Device& dev, const data::Relation& r, const data::Relation& s) {
  join::JoinRun run;
  stats_ = CoProcessStats();
  const sim::HwSpec& hw = dev.hw();
  const uint32_t sms = config_.sms == 0 ? hw.gpu.num_sms : config_.sms;

  uint32_t bits1 = config_.bits1, bits2 = config_.bits2;
  if (bits1 == 0 || bits2 == 0) {
    uint32_t d1, d2;
    DeriveBits(hw, r.rows(), s.rows(), &d1, &d2);
    if (bits1 == 0) bits1 = d1;
    if (bits2 == 0) bits2 = d2;
  }
  stats_.bits1 = bits1;
  stats_.bits2 = bits2;

  partition::RadixConfig radix1{0, bits1};
  partition::RadixConfig radix2 = radix1.Next(bits2);
  const uint32_t blocks = sms;
  const uint32_t depth = std::max(config_.staging_depth, 1u);

  dev.ClearTrace();

  // --- Shared front: prefix sums + out-of-core pass-1 partitioning of
  // both relations, exactly the Triton join's (the build side crosses the
  // link once, whatever the split) ---
  partition::ColumnInput r_in = partition::ColumnInput::Of(r);
  partition::ColumnInput s_in = partition::ColumnInput::Of(s);
  partition::PrefixSumOptions ps1;
  ps1.name = "prefix_sum1";
  ps1.sms = sms;
  partition::PartitionLayout r_layout1 =
      CpuPrefixSum(dev, r_in, radix1, blocks, ps1);
  partition::PartitionLayout s_layout1 =
      CpuPrefixSum(dev, s_in, radix1, blocks, ps1);

  const uint64_t r1_bytes =
      r_layout1.padded_tuples() * sizeof(partition::Tuple);
  const uint64_t s1_bytes =
      s_layout1.padded_tuples() * sizeof(partition::Tuple);
  uint64_t max_pair = 0;
  for (uint32_t p = 0; p < radix1.fanout(); ++p) {
    max_pair = std::max(max_pair, r_layout1.PartitionSize(p) +
                                      s_layout1.PartitionSize(p));
  }
  // Pipeline reservation: `depth` staging slots plus the refined pair's
  // double buffer (TritonJoin reserves 4x max_pair at its depth).
  const uint64_t pipeline_reserve = std::max<uint64_t>(
      (depth + 2) * max_pair * sizeof(partition::Tuple),
      hw.gpu_mem.capacity / 8);
  uint64_t cache_avail = dev.allocator().gpu_free() > pipeline_reserve
                             ? dev.allocator().gpu_free() - pipeline_reserve
                             : 0;
  const uint64_t state_bytes = r1_bytes + s1_bytes;
  const uint64_t cache_used = std::min(cache_avail, state_bytes);
  stats_.cached_fraction =
      state_bytes > 0 ? static_cast<double>(cache_used) / state_bytes : 0.0;
  stats_.spilled_bytes = state_bytes - cache_used;

  auto r1 = dev.allocator().AllocateInterleaved(
      r1_bytes, static_cast<uint64_t>(stats_.cached_fraction * r1_bytes));
  if (!r1.ok()) return r1.status();
  auto s1 = dev.allocator().AllocateInterleaved(
      s1_bytes, static_cast<uint64_t>(stats_.cached_fraction * s1_bytes));
  if (!s1.ok()) return s1.status();

  partition::HierarchicalPartitioner pass1;
  partition::PartitionOptions p1;
  p1.sms = sms;
  p1.name = "partition1_r";
  pass1.PartitionColumns(dev, r_in, r_layout1, *r1, p1);
  p1.name = "partition1_s";
  pass1.PartitionColumns(dev, s_in, s_layout1, *s1, p1);

  mem::Buffer result;
  if (config_.result_mode == join::ResultMode::kMaterialize) {
    auto res =
        dev.allocator().AllocateCpu(s.rows() * sizeof(partition::Tuple));
    if (!res.ok()) return res.status();
    result = std::move(res).value();
  }

  // --- Morsels: the non-empty pass-1 pairs, in pair-index order ---
  std::vector<PairDesc> pairs;
  uint64_t total_tuples = 0;
  for (uint32_t p = 0; p < radix1.fanout(); ++p) {
    PairDesc pd{p, r_layout1.PartitionSize(p), s_layout1.PartitionSize(p)};
    if (pd.r_n == 0 || pd.s_n == 0) continue;
    total_tuples += pd.tuples();
    pairs.push_back(pd);
  }
  stats_.pairs_total = static_cast<uint32_t>(pairs.size());

  // --- Initial split from the cost model: equalize the predicted
  // finishing times of the two sides, i.e. f = rho_cpu / (rho_cpu +
  // rho_gpu) over the backends' predicted tuple rates ---
  stats_.predicted_cpu_seconds =
      PredictCpuRadixSeconds(hw, r.rows(), s.rows(), config_.scheme);
  stats_.predicted_gpu_seconds = PredictTritonSeconds(hw, r.rows(), s.rows());
  double cpu_rate = 0.0, gpu_rate = 0.0;
  {
    const uint64_t avg_r = std::max<uint64_t>(r.rows() >> bits1, 1);
    const uint64_t avg_s = std::max<uint64_t>(s.rows() >> bits1, 1);
    CpuPairCost pc = PredictCpuPairCost(hw, avg_r, avg_s,
                                        stats_.cached_fraction,
                                        config_.scheme);
    if (pc.Seconds() > 0.0) {
      cpu_rate = static_cast<double>(avg_r + avg_s) / pc.Seconds();
    }
    TritonPrediction tp = PredictTritonPhases(hw, r.rows(), s.rows());
    if (tp.pipeline_seconds > 0.0) {
      gpu_rate = static_cast<double>(total_tuples) / tp.pipeline_seconds;
    }
  }
  double f = config_.split_ratio;
  if (f < 0.0) {
    f = cpu_rate + gpu_rate > 0.0 ? cpu_rate / (cpu_rate + gpu_rate) : 0.0;
    f = std::clamp(f, 0.0, 0.9);
  }
  f = std::clamp(f, 0.0, 1.0);
  stats_.initial_cpu_fraction = f;
  util::Lcg64 rng(config_.seed);

  // --- Bounded staging queue through the interconnect: `depth` GPU-side
  // slots, reused round-robin; slot lifetime is enforced by the pipeline
  // time model (BoundedPipelineSeconds) ---
  const bool stage_pairs = stats_.spilled_bytes > 0;
  mem::Buffer staging;
  if (stage_pairs) {
    auto st = dev.allocator().AllocateGpu(
        static_cast<uint64_t>(depth) * std::max<uint64_t>(max_pair, 1) *
        sizeof(partition::Tuple));
    if (!st.ok()) return st.status();
    staging = std::move(st).value();
  }

  uint64_t matches = 0, checksum = 0, result_cursor = 0;
  std::vector<double> gpu_bw, gpu_comp;  // per-GPU-pair pipeline lanes
  uint32_t gpu_seq = 0;
  uint64_t cpu_tuples_total = 0, assigned_tuples = 0;
  partition::SharedPartitioner pass2;

  // GPU side of one morsel: Triton's refine + join pair body, staging the
  // pair into its bounded-queue slot when pass-1 state spilled.
  auto run_gpu_pair = [&](const PairDesc& pd,
                          uint64_t slot_base) -> util::Status {
    partition::SlicedRowInput r_rows =
        partition::PartitionInputOf(*r1, r_layout1, pd.p);
    partition::SlicedRowInput s_rows =
        partition::PartitionInputOf(*s1, s_layout1, pd.p);

    auto prefix_and_stage =
        [&](const partition::SlicedRowInput& rows,
            uint64_t stage_offset) -> partition::PartitionLayout {
      partition::PartitionLayout layout;
      dev.Launch(
          {.name = "prefix_sum2", .sms = sms},
          [&](exec::KernelContext& ctx) {
            const uint64_t n = rows.size();
            rows.AccountRead(ctx, 0, n);
            const uint64_t chunk = (n + blocks - 1) / blocks;
            std::vector<std::vector<uint64_t>> histograms(
                blocks, std::vector<uint64_t>(radix2.fanout(), 0));
            ctx.ForEachBlock(
                blocks, [&](exec::KernelContext& sub, uint32_t b) {
                  uint64_t begin = static_cast<uint64_t>(b) * chunk;
                  uint64_t end = std::min(n, begin + chunk);
                  if (begin >= end) return;
                  sub.SetSanitizerBlock(b);
                  partition::SlicedRowInput block_rows = rows;
                  partition::ComputeBlockHistogram(block_rows, radix2, begin,
                                                   end, histograms[b]);
                });
            layout = partition::PartitionLayout(radix2, histograms, 8);
            ctx.AddTuples(n);
            ctx.Charge(static_cast<uint64_t>(
                n * partition::kPrefixSumCyclesPerTuple));
            if (stage_pairs) {
              if (util::FastPathEnabled()) {
                partition::Tuple batch[partition::kFastPathBatchTuples];
                for (uint64_t base = 0; base < n;
                     base += partition::kFastPathBatchTuples) {
                  const uint64_t m = std::min<uint64_t>(
                      n - base, partition::kFastPathBatchTuples);
                  rows.GetBatch(base, m, batch);
                  ctx.StoreRun(staging, stage_offset + base, batch, m);
                }
              } else {
                for (uint64_t i = 0; i < n; ++i) {
                  ctx.Store(staging, stage_offset + i, rows.Get(i));
                }
              }
              ctx.WriteSeq(staging, stage_offset * sizeof(partition::Tuple),
                           n * sizeof(partition::Tuple));
            }
          });
      return layout;
    };
    partition::PartitionLayout r_layout2 = prefix_and_stage(r_rows, slot_base);
    partition::PartitionLayout s_layout2 =
        prefix_and_stage(s_rows, slot_base + pd.r_n);

    auto r2 = dev.allocator().AllocateGpu(r_layout2.padded_tuples() *
                                          sizeof(partition::Tuple));
    if (!r2.ok()) return r2.status();
    auto s2 = dev.allocator().AllocateGpu(s_layout2.padded_tuples() *
                                          sizeof(partition::Tuple));
    if (!s2.ok()) return s2.status();

    partition::PartitionOptions p2;
    p2.sms = sms;
    p2.name = "partition2";
    if (stage_pairs) {
      partition::RowInput r_staged(&staging, slot_base, pd.r_n);
      partition::RowInput s_staged(&staging, slot_base + pd.r_n, pd.s_n);
      pass2.PartitionRows(dev, r_staged, r_layout2, *r2, p2);
      pass2.PartitionRows(dev, s_staged, s_layout2, *s2, p2);
    } else {
      pass2.PartitionSliced(dev, r_rows, r_layout2, *r2, p2);
      pass2.PartitionSliced(dev, s_rows, s_layout2, *s2, p2);
    }

    dev.Launch({.name = "sched", .sms = sms},
               [&](exec::KernelContext& ctx) {
                 ctx.Charge(static_cast<uint64_t>(kSchedCyclesPerPair *
                                                  radix2.fanout()));
               });

    dev.Launch({.name = "join", .sms = sms},
               [&](exec::KernelContext& ctx) {
                 const uint32_t fan2 = radix2.fanout();
                 struct BlockOut {
                   std::vector<partition::Tuple> pairs;
                   uint64_t matches = 0;
                   uint64_t checksum = 0;
                 };
                 std::vector<BlockOut> outs(fan2);
                 ctx.ForEachBlock(
                     fan2, [&](exec::KernelContext& sub, uint32_t q) {
                       sub.SetSanitizerBlock(q);
                       std::vector<std::pair<uint64_t, uint64_t>> r_sl, s_sl;
                       r_layout2.ForEachSlice(
                           q, [&](uint64_t b, uint64_t c) {
                             r_sl.emplace_back(b, c);
                           });
                       s_layout2.ForEachSlice(
                           q, [&](uint64_t b, uint64_t c) {
                             s_sl.emplace_back(b, c);
                           });
                       join::ScratchJoiner block_joiner(
                           config_.scheme, hw.gpu.scratchpad_bytes);
                       BlockOut& out = outs[q];
                       block_joiner.JoinSlicesEmit(
                           sub, *r2, r_sl, *s2, s_sl, bits1 + bits2,
                           [&](int64_t build_val, int64_t probe_val) {
                             if (result.valid()) {
                               out.pairs.push_back(
                                   partition::Tuple{build_val, probe_val});
                             }
                             ++out.matches;
                             out.checksum +=
                                 static_cast<uint64_t>(build_val) +
                                 static_cast<uint64_t>(probe_val);
                           });
                     });
                 for (uint32_t q = 0; q < fan2; ++q) {
                   BlockOut& out = outs[q];
                   matches += out.matches;
                   checksum += out.checksum;
                   if (!out.pairs.empty()) {
                     uint64_t at = result_cursor;
                     if (util::FastPathEnabled()) {
                       ctx.StoreRun(result, at, out.pairs.data(),
                                    out.pairs.size());
                       result_cursor += out.pairs.size();
                     } else {
                       for (const partition::Tuple& t : out.pairs) {
                         ctx.Store(result, result_cursor++, t);
                       }
                     }
                     ctx.WriteSeq(result, at * sizeof(partition::Tuple),
                                  out.pairs.size() *
                                      sizeof(partition::Tuple));
                   }
                 }
               });

    dev.allocator().Free(*r2);
    dev.allocator().Free(*s2);
    return util::Status::OK();
  };

  // CPU side of one morsel, functional half: join the pair in place from
  // the pass-1 state with a bucket-chaining table over R_i. Runs on the
  // BlockExecutor pool (one block per pair); outcomes land in per-pair
  // slots and are reduced in pair order afterwards.
  const partition::Tuple* r1_rows = r1->as<partition::Tuple>();
  const partition::Tuple* s1_rows = s1->as<partition::Tuple>();
  const bool materialize = result.valid();
  auto cpu_join_pair = [&](const PairDesc& pd, PairOutcome* out) {
    // Keep chains short for pairs much larger than the scratchpad table:
    // the CPU's LLC-resident table is not bucket-limited the way the
    // scratchpad one is (the modeled cost already pays the sub-partition
    // passes that make it cache-resident).
    uint32_t log2_buckets = 11;
    while ((uint64_t{1} << log2_buckets) * 4 < pd.r_n && log2_buckets < 20) {
      ++log2_buckets;
    }
    const uint32_t buckets = 1u << log2_buckets;
    std::vector<uint32_t> heads(buckets, 0u);
    std::vector<int64_t> keys(pd.r_n);
    std::vector<int64_t> values(pd.r_n);
    std::vector<uint32_t> next(pd.r_n);
    hash::BucketChainTable table(heads.data(), buckets, keys.data(),
                                 values.data(), next.data(),
                                 static_cast<uint32_t>(pd.r_n));
    r_layout1.ForEachSlice(pd.p, [&](uint64_t begin, uint64_t count) {
      for (uint64_t i = begin; i < begin + count; ++i) {
        table.Insert(r1_rows[i].key, r1_rows[i].value, bits1);
      }
    });
    s_layout1.ForEachSlice(pd.p, [&](uint64_t begin, uint64_t count) {
      for (uint64_t i = begin; i < begin + count; ++i) {
        table.Probe(s1_rows[i].key, bits1, [&](int64_t build_val) {
          if (materialize) {
            out->rows.push_back(
                partition::Tuple{build_val, s1_rows[i].value});
          }
          ++out->matches;
          out->checksum += static_cast<uint64_t>(build_val) +
                           static_cast<uint64_t>(s1_rows[i].value);
        });
      }
    });
  };

  // --- Morsel waves: assign pairs to a side in pair-index order, run the
  // CPU side's functional joins on the executor pool, then reduce
  // everything in pair order (records, results, pipeline lanes) ---
  const uint32_t wave_pairs =
      config_.wave_pairs != 0
          ? config_.wave_pairs
          : std::clamp<uint32_t>(
                static_cast<uint32_t>(pairs.size() / 8), 4, 64);
  size_t done = 0;
  while (done < pairs.size()) {
    const size_t wave_end = std::min(pairs.size(), done + wave_pairs);
    CoProcessWave wave;
    wave.target_cpu_fraction = f;

    // Greedy nested assignment: pair i goes to the CPU while the running
    // CPU tuple share stays within the target f. Deterministic in pair
    // order; the CPU pair set grows monotonically with f.
    std::vector<uint8_t> to_cpu(wave_end - done, 0);
    std::vector<size_t> cpu_idx;
    uint64_t wave_cpu_tuples = 0, wave_gpu_tuples = 0;
    for (size_t i = done; i < wave_end; ++i) {
      const uint64_t n_i = pairs[i].tuples();
      const bool cpu_side =
          static_cast<double>(cpu_tuples_total + n_i) <=
          f * static_cast<double>(assigned_tuples + n_i);
      assigned_tuples += n_i;
      if (cpu_side) {
        to_cpu[i - done] = 1;
        cpu_idx.push_back(i);
        cpu_tuples_total += n_i;
        wave_cpu_tuples += n_i;
      } else {
        wave_gpu_tuples += n_i;
      }
    }

    std::vector<PairOutcome> outs(cpu_idx.size());
    if (!cpu_idx.empty()) {
      exec::BlockExecutor::Global().Run(
          static_cast<uint32_t>(cpu_idx.size()), [&](uint32_t b) {
            cpu_join_pair(pairs[cpu_idx[b]], &outs[b]);
          });
    }

    size_t cpu_k = 0;
    for (size_t i = done; i < wave_end; ++i) {
      const PairDesc& pd = pairs[i];
      ++wave.pairs;
      if (to_cpu[i - done]) {
        PairOutcome& out = outs[cpu_k++];
        const CpuPairCost cost = PredictCpuPairCost(
            hw, pd.r_n, pd.s_n, stats_.cached_fraction, config_.scheme);
        const uint64_t pair_bytes = pd.tuples() * sizeof(partition::Tuple);
        const uint64_t link_payload = static_cast<uint64_t>(
            static_cast<double>(pair_bytes) * stats_.cached_fraction);
        exec::KernelRecord rec;
        rec.name = "coproc_cpu_pair";
        rec.sms = 0;
        rec.counters.tuples = pd.tuples();
        rec.counters.link_read_payload = link_payload;
        rec.counters.link_read_physical =
            link_payload * (hw.link.max_dma_payload + hw.link.header_bytes) /
            hw.link.max_dma_payload;
        rec.counters.link_read_txns =
            util::CeilDiv(link_payload, hw.link.max_dma_payload);
        rec.counters.cpu_mem_read = (pair_bytes - link_payload) +
                                    pair_bytes * cost.extra_passes;
        rec.counters.cpu_mem_write = pair_bytes * cost.extra_passes;
        rec.time.link = cost.link_seconds;
        rec.time.cpu_mem = cost.read_seconds + cost.partition_seconds;
        rec.time.compute = cost.join_seconds;
        if (materialize && !out.rows.empty()) {
          std::memcpy(result.as<partition::Tuple>() + result_cursor,
                      out.rows.data(),
                      out.rows.size() * sizeof(partition::Tuple));
          result_cursor += out.rows.size();
          rec.counters.cpu_mem_write +=
              out.rows.size() * sizeof(partition::Tuple);
        }
        dev.Record(rec);
        matches += out.matches;
        checksum += out.checksum;
        const double pair_seconds = cost.Seconds();
        stats_.cpu_seconds += pair_seconds;
        wave.cpu_seconds += pair_seconds;
        ++wave.cpu_pairs;
        ++stats_.cpu_pairs;
      } else {
        const size_t mark = dev.trace().size();
        const uint64_t slot_base =
            stage_pairs ? (gpu_seq % depth) * max_pair : 0;
        util::Status st = run_gpu_pair(pd, slot_base);
        if (!st.ok()) return st;
        double bw = 0.0, comp = 0.0;
        for (size_t k = mark; k < dev.trace().size(); ++k) {
          const sim::KernelTime& t = dev.trace()[k].time;
          bw += std::max({t.link, t.tlb, t.cpu_mem});
          comp += std::max(t.compute, t.gpu_mem);
        }
        gpu_bw.push_back(bw);
        gpu_comp.push_back(comp);
        wave.gpu_seconds += std::max(bw, comp);
        ++stats_.gpu_pairs;
        ++gpu_seq;
      }
    }

    // Adaptive rebalance from observed per-morsel modeled seconds: move
    // the share toward equalizing the two sides' rates, with a small
    // seeded dither so ties break reproducibly but not sticky.
    if (config_.adaptive && wave_end < pairs.size()) {
      if (wave_cpu_tuples > 0 && wave.cpu_seconds > 0.0) {
        cpu_rate = static_cast<double>(wave_cpu_tuples) / wave.cpu_seconds;
      }
      if (wave_gpu_tuples > 0 && wave.gpu_seconds > 0.0) {
        gpu_rate = static_cast<double>(wave_gpu_tuples) / wave.gpu_seconds;
      }
      if (cpu_rate + gpu_rate > 0.0) {
        const double dither = (rng.NextDouble() - 0.5) * 0.01;
        f = std::clamp(cpu_rate / (cpu_rate + gpu_rate) + dither, 0.0, 0.9);
      }
    }
    stats_.waves.push_back(wave);
    done = wave_end;
  }

  run.matches = matches;
  run.checksum = checksum;
  run.phases = dev.trace();
  for (const auto& ph : run.phases) run.totals.Merge(ph.counters);

  // --- Elapsed: shared pass-1 barrier, then both backends run
  // concurrently — the CPU chews its pairs while the GPU pipeline streams
  // and joins the rest through the bounded staging queue ---
  stats_.front_seconds =
      run.PhaseTime("prefix_sum1") + run.PhaseTime("partition1");
  stats_.gpu_pipeline_seconds =
      BoundedPipelineSeconds(gpu_bw, gpu_comp, depth);
  stats_.final_cpu_fraction =
      total_tuples > 0
          ? static_cast<double>(cpu_tuples_total) /
                static_cast<double>(total_tuples)
          : 0.0;
  run.elapsed = stats_.front_seconds +
                std::max(stats_.cpu_seconds, stats_.gpu_pipeline_seconds);

  dev.allocator().Free(*r1);
  dev.allocator().Free(*s1);
  if (staging.valid()) dev.allocator().Free(staging);
  if (result.valid()) dev.allocator().Free(result);
  return run;
}

}  // namespace triton::sched
