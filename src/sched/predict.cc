#include "sched/predict.h"

#include <algorithm>

#include "core/triton_join.h"
#include "join/cpu_radix_join.h"
#include "partition/cpu_swwc.h"
#include "partition/input.h"
#include "partition/partitioner.h"
#include "partition/prefix_sum.h"
#include "util/bits.h"
#include "util/units.h"

namespace triton::sched {

namespace {

/// Chip-level SWWC partitioning rate for a pass plan of `bits` radix bits
/// (mirrors partition::CpuSwwcPartitioner's degradation term).
double CpuPartitionRate(const sim::CpuSpec& cpu, uint32_t bits,
                        uint32_t passes) {
  double rate = cpu.partition_bw;
  uint32_t per_pass_bits = (bits + passes - 1) / passes;
  if (per_pass_bits > 12) rate *= 1.0 - 0.04 * (per_pass_bits - 12);
  return rate;
}

/// Per-core cache-resident join rate for the whole chip.
double CpuJoinRate(const sim::CpuSpec& cpu, join::HashScheme scheme) {
  double scheme_factor = scheme == join::HashScheme::kPerfect ? 1.12 : 1.0;
  return static_cast<double>(cpu.cores) * cpu.join_tuples_per_core *
         scheme_factor;
}

/// Link-read physical bytes for `payload` streamed by SM loads: 128-byte
/// transactions each carrying a 16-byte header.
double LinkReadPhysical(const sim::HwSpec& hw, double payload) {
  return payload *
         static_cast<double>(hw.link.max_sm_payload + hw.link.header_bytes) /
         static_cast<double>(hw.link.max_sm_payload);
}

/// Link-write physical bytes for `payload` flushed in DMA-sized runs:
/// 256-byte transactions each carrying a 16-byte header.
double LinkWritePhysical(const sim::HwSpec& hw, double payload) {
  return payload *
         static_cast<double>(hw.link.max_dma_payload + hw.link.header_bytes) /
         static_cast<double>(hw.link.max_dma_payload);
}

}  // namespace

double PredictCpuRadixSeconds(const sim::HwSpec& hw, uint64_t r_tuples,
                              uint64_t s_tuples, join::HashScheme scheme) {
  const sim::CpuSpec& cpu = hw.cpu;
  const uint64_t paper_r = static_cast<uint64_t>(
      static_cast<double>(r_tuples) * hw.scale);
  const uint32_t bits = join::CpuRadixBits(cpu, paper_r);
  const uint32_t passes = partition::CpuPartitionPasses(cpu, bits);
  const double rate = CpuPartitionRate(cpu, bits, passes);

  // Both relations stream through the partitioner `passes` times.
  const double in_bytes = static_cast<double>(r_tuples + s_tuples) *
                          sizeof(partition::Tuple);
  const double t_partition = in_bytes * passes / rate;
  const double t_join =
      static_cast<double>(r_tuples + s_tuples) / CpuJoinRate(cpu, scheme);
  return t_partition + t_join;
}

TritonPrediction PredictTritonPhases(const sim::HwSpec& hw, uint64_t r_tuples,
                                     uint64_t s_tuples) {
  TritonPrediction pred;
  const double n = static_cast<double>(r_tuples + s_tuples);
  const double in_bytes = n * sizeof(partition::Tuple);
  const double issue = hw.GpuIssueRate(hw.gpu.num_sms);

  uint32_t bits1 = 0, bits2 = 0;
  core::TritonJoin::DeriveBits(hw, r_tuples, s_tuples, &bits1, &bits2);
  const uint32_t fanout1 = 1u << bits1;
  const uint32_t fanout2 = 1u << bits2;

  // --- Prefix sums: CPU key-column scans (one per relation) ---
  for (uint64_t rel : {r_tuples, s_tuples}) {
    const double key_bytes = static_cast<double>(rel) * sizeof(data::Key);
    double bw = hw.cpu.scan_bw;
    if (key_bytes * hw.scale > 8.0 * util::kGiB) bw *= 0.74;
    pred.front_seconds += key_bytes / bw;
  }

  // --- Cache split: mirror the join's pipeline reservation on an idle
  // device (full GPU memory available) ---
  const double max_pair = in_bytes / fanout1;
  const double reserve =
      std::max(4.0 * max_pair,
               static_cast<double>(hw.gpu_mem.capacity) / 8.0);
  const double gpu_free = static_cast<double>(hw.gpu_mem.capacity);
  const double cache_avail = gpu_free > reserve ? gpu_free - reserve : 0.0;
  const double cached = std::min(cache_avail, in_bytes);
  const double spilled = in_bytes - cached;
  pred.cached_fraction = in_bytes > 0.0 ? cached / in_bytes : 0.0;

  // --- Pass 1: GPU pulls both base relations over the link, scatters the
  // cached fraction to GPU memory (via the hierarchical L2 staging) and
  // spills the rest back over the link in DMA-sized flushes ---
  {
    const double read_phys = LinkReadPhysical(hw, in_bytes);
    const double write_phys = LinkWritePhysical(hw, spilled);
    double link_bw = hw.link.raw_bandwidth_per_dir;
    if (write_phys > (read_phys + write_phys) / 16.0 && write_phys > 0.0) {
      link_bw *= hw.link.bidirectional_efficiency;
    }
    const double t_link = std::max(read_phys, write_phys) / link_bw;
    const double t_compute = n * partition::kPartitionCyclesPerTuple / issue;
    // Every tuple is staged through L2 buffers in GPU memory (write + read
    // back) before its final placement; the cached fraction lands there too.
    const double t_gpu_mem = (2.0 * in_bytes + cached) / hw.gpu_mem.bandwidth;
    const double t_cpu_mem = (in_bytes + spilled) / hw.cpu_mem.bandwidth;
    pred.front_seconds +=
        std::max({t_link, t_compute, t_gpu_mem, t_cpu_mem});
  }

  // --- Pipeline: the second-pass prefix sum re-reads the pair (spilled
  // fraction over the link: the bandwidth lane), while refine + join are
  // GPU-local (the compute lane). Lanes overlap; elapsed is their max ---
  const bool staged = spilled > 0.0;
  const double bw_lane =
      std::max(LinkReadPhysical(hw, spilled) / hw.link.raw_bandwidth_per_dir,
               spilled / hw.cpu_mem.bandwidth);

  double comp_lane = 0.0;
  // prefix_sum2: histogram pass + (when spilled) the staging copy-in.
  comp_lane += std::max(
      n * partition::kPrefixSumCyclesPerTuple / issue,
      (cached + (staged ? in_bytes : 0.0)) / hw.gpu_mem.bandwidth);
  // partition2: read the (staged) pair, scatter to the refined buffers.
  comp_lane += std::max(n * partition::kPartitionCyclesPerTuple / issue,
                        2.0 * in_bytes / hw.gpu_mem.bandwidth);
  // sched: task-scheduler cost per refined pair, for every pass-1 pair.
  comp_lane += 13000.0 * fanout2 * fanout1 / issue;
  // join: build + probe over the refined pairs.
  comp_lane += std::max((6.0 * r_tuples + 5.0 * s_tuples) / issue,
                        in_bytes / hw.gpu_mem.bandwidth);

  pred.pipeline_seconds = std::max(bw_lane, comp_lane);
  return pred;
}

double PredictTritonSeconds(const sim::HwSpec& hw, uint64_t r_tuples,
                            uint64_t s_tuples) {
  return PredictTritonPhases(hw, r_tuples, s_tuples).TotalSeconds();
}

CpuPairCost PredictCpuPairCost(const sim::HwSpec& hw, uint64_t pair_r_tuples,
                               uint64_t pair_s_tuples, double cached_fraction,
                               join::HashScheme scheme) {
  CpuPairCost cost;
  const sim::CpuSpec& cpu = hw.cpu;
  const double pair_bytes =
      static_cast<double>(pair_r_tuples + pair_s_tuples) *
      sizeof(partition::Tuple);

  // The pass-1 state is interleaved: the GPU-cached fraction streams to the
  // CPU over the link (DMA plateau, as for CPU-to-GPU transfers), the
  // spilled fraction is already CPU-resident and scans at memory bandwidth.
  const double gpu_resident = pair_bytes * cached_fraction;
  const double cpu_resident = pair_bytes - gpu_resident;
  cost.link_seconds =
      gpu_resident / (hw.link.raw_bandwidth_per_dir * 0.85);
  cost.read_seconds = cpu_resident / cpu.scan_bw;

  // Sub-partition the pair until its hash table is LLC-resident, judged at
  // paper scale like join::CpuRadixBits.
  const uint64_t paper_pair_r = static_cast<uint64_t>(
      static_cast<double>(pair_r_tuples) * hw.scale);
  const uint64_t target_tuples = std::max<uint64_t>(
      cpu.llc_per_core / (2 * sizeof(partition::Tuple)), 1024);
  if (paper_pair_r > target_tuples) {
    const uint32_t extra_bits = util::CeilLog2(
        util::CeilDiv(paper_pair_r, target_tuples));
    cost.extra_passes = partition::CpuPartitionPasses(cpu, extra_bits);
    cost.partition_seconds =
        pair_bytes * cost.extra_passes /
        CpuPartitionRate(cpu, extra_bits, cost.extra_passes);
  }

  cost.join_seconds =
      static_cast<double>(pair_r_tuples + pair_s_tuples) /
      CpuJoinRate(cpu, scheme);
  return cost;
}

}  // namespace triton::sched
