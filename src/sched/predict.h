// Cost-model predictors anchoring the co-processing split decision.
//
// The scheduler needs modeled-seconds estimates for both backends *before*
// running anything: the CPU radix join's analytic phases mirror
// join::CpuRadixJoin exactly (its cost is a closed formula), while the
// Triton join prediction rebuilds the per-phase roofline terms the
// sim::CostModel would produce from the kernels' counters — streamed link
// traffic with packet-header overhead, the interleaved cache split between
// GPU-resident and spilled state, issue-slot totals of the partition and
// join kernels — without executing them. Both predictors are pinned to the
// real engines by the calibration tests in tests/sched_test.cc so split
// decisions cannot drift silently as kernels evolve.

#ifndef TRITON_SCHED_PREDICT_H_
#define TRITON_SCHED_PREDICT_H_

#include <algorithm>
#include <cstdint>

#include "join/common.h"
#include "sim/hw_spec.h"

namespace triton::sched {

/// Predicted modeled seconds for a full CPU-only radix join of
/// `r_tuples` x `s_tuples` on this machine. Mirrors join::CpuRadixJoin's
/// analytic records term by term (partition both relations at the chip's
/// SWWC partitioning rate, join at the per-core cache-resident rate), so
/// the prediction tracks the measured run within ~1%.
double PredictCpuRadixSeconds(const sim::HwSpec& hw, uint64_t r_tuples,
                              uint64_t s_tuples,
                              join::HashScheme scheme =
                                  join::HashScheme::kBucketChaining);

/// Predicted phase split of a full GPU Triton join: the pass-1 barrier
/// (prefix sums + out-of-core partitioning) and the overlapped
/// refine+join pipeline that follows it.
struct TritonPrediction {
  /// Pass-1 barrier: CPU prefix sums + GPU partitioning of both relations.
  double front_seconds = 0.0;
  /// Overlapped second pass + join (the max of the bandwidth and compute
  /// lanes, Section 5.2).
  double pipeline_seconds = 0.0;
  /// Predicted fraction of partitioned state cached in GPU memory.
  double cached_fraction = 0.0;

  double TotalSeconds() const { return front_seconds + pipeline_seconds; }
};

/// Predicts the Triton join's modeled phase times on an otherwise-idle
/// device (full GPU memory available for state caching).
TritonPrediction PredictTritonPhases(const sim::HwSpec& hw, uint64_t r_tuples,
                                     uint64_t s_tuples);

/// Convenience: total predicted Triton join seconds.
double PredictTritonSeconds(const sim::HwSpec& hw, uint64_t r_tuples,
                            uint64_t s_tuples);

/// Modeled cost of joining one pass-1 partition pair on the CPU, in place:
/// pull the pair out of the interleaved pass-1 state (the GPU-cached
/// fraction crosses the link, the spilled fraction is already CPU-resident),
/// sub-partition it if the pair's hash table exceeds the per-core LLC share
/// at paper scale, then build + probe at the cache-resident rate.
struct CpuPairCost {
  double link_seconds = 0.0;     // GPU-resident fraction pulled over the link
  double read_seconds = 0.0;     // CPU-resident fraction scanned from DRAM
  double partition_seconds = 0.0;  // LLC-fitting sub-partition passes, if any
  double join_seconds = 0.0;     // build + probe
  /// Extra radix passes needed to make the pair's table LLC-resident.
  uint32_t extra_passes = 0;

  /// Serial pair time; the two input sources stream concurrently (DMA over
  /// the link overlaps the DRAM scan), the rest is sequential.
  double Seconds() const {
    return std::max(link_seconds, read_seconds) + partition_seconds +
           join_seconds;
  }
};

CpuPairCost PredictCpuPairCost(const sim::HwSpec& hw, uint64_t pair_r_tuples,
                               uint64_t pair_s_tuples, double cached_fraction,
                               join::HashScheme scheme);

}  // namespace triton::sched

#endif  // TRITON_SCHED_PREDICT_H_
