// Heterogeneous CPU+GPU co-processing scheduler.
//
// Splits one join across both processors at partition-pair granularity.
// The GPU runs the shared front of the Triton join unchanged — CPU prefix
// sums, then the out-of-core pass-1 partitioning of both relations with
// interleaved GPU-memory caching — so the build side crosses the
// interconnect exactly once regardless of the split. Each pass-1 pair
// (R_i, S_i) is then a morsel dispatched to one of the two backends:
//
//   GPU pair   Triton's refine + join pipeline (second-pass prefix sum,
//              shared-memory refinement, task scheduler, scratchpad join),
//              with the interconnect stage modeled as a *bounded staging
//              queue*: at most `staging_depth` pairs may be resident in the
//              GPU-side staging buffer, so the copy-in of pair k+D stalls
//              until the compute of pair k drains its slot. CPU-side
//              partitioned state therefore streams over the link
//              overlapped against the probe of the previous pairs, exactly
//              the paper's software pipeline but with finite buffering.
//   CPU pair   joined in place by the CPU: the spilled fraction of the
//              pair is already CPU-resident (free ride of the spill!), the
//              GPU-cached fraction streams back over the link concurrently
//              with the DRAM scan; the pair is sub-partitioned to
//              LLC-resident chunks if needed and joined with a
//              bucket-chaining table at the calibrated per-core rate.
//
// The initial CPU share comes from sim::CostModel-backed predictions of
// both backends' rates (src/sched/predict.h); the adaptive mode rebalances
// it between morsel waves from the observed per-morsel modeled seconds.
// Everything — results, PerfCounters, the adaptive trajectory — is
// bit-identical at any --threads: pairs are assigned in pair-index order,
// all block-parallel work reduces in block/pair order (the PR 2/PR 4
// contract), and the adaptive feedback consumes only deterministic modeled
// times plus a seeded dither.
//
// Modeled elapsed time composes as
//     T = T_front + max(sum of CPU pair seconds, GPU bounded pipeline)
// i.e. the two backends run concurrently after the shared pass-1 barrier.
// As with core::TritonJoin, run.elapsed is the scheduler's own phase
// composition, not the sum of trace-record times.

#ifndef TRITON_SCHED_COPROCESS_SCHEDULER_H_
#define TRITON_SCHED_COPROCESS_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "data/relation.h"
#include "exec/device.h"
#include "join/common.h"
#include "util/status.h"

namespace triton::sched {

/// Configuration of the co-processing scheduler.
struct CoProcessConfig {
  join::HashScheme scheme = join::HashScheme::kBucketChaining;
  join::ResultMode result_mode = join::ResultMode::kMaterialize;
  /// Radix bits (0 = derive via DeriveBits; pass-1 keeps at least
  /// kMinPairBits so there is morsel granularity to split).
  uint32_t bits1 = 0;
  uint32_t bits2 = 0;
  /// CPU share of the pair tuples, in [0, 1]. Negative = pick the initial
  /// share from the cost-model predictions of both backends.
  double split_ratio = -1.0;
  /// Rebalance the share between morsel waves from observed per-morsel
  /// modeled seconds (seeded-deterministic feedback).
  bool adaptive = false;
  /// Pairs per wave (0 = derive from the pair count).
  uint32_t wave_pairs = 0;
  /// Bounded staging-queue depth: GPU staging slots a pair's copy-in may
  /// occupy ahead of its compute (>= 1).
  uint32_t staging_depth = 2;
  /// Seed of the adaptive dither (keeps rebalancing reproducible).
  uint64_t seed = 0x5eedc0de;
  /// SMs available to the GPU side (0 = all).
  uint32_t sms = 0;
};

/// Per-wave adaptive trajectory entry.
struct CoProcessWave {
  uint32_t pairs = 0;
  uint32_t cpu_pairs = 0;
  /// CPU share targeted when this wave was assigned.
  double target_cpu_fraction = 0.0;
  /// Modeled seconds both sides spent on this wave's morsels.
  double cpu_seconds = 0.0;
  double gpu_seconds = 0.0;
};

/// Introspection reported by benches alongside the JoinRun.
struct CoProcessStats {
  uint32_t bits1 = 0;
  uint32_t bits2 = 0;
  double cached_fraction = 0.0;
  uint64_t spilled_bytes = 0;
  uint32_t pairs_total = 0;
  uint32_t cpu_pairs = 0;
  uint32_t gpu_pairs = 0;
  /// CPU share the scheduler started from (flag or cost-model pick).
  double initial_cpu_fraction = 0.0;
  /// Realized CPU share of the pair tuples.
  double final_cpu_fraction = 0.0;
  /// Modeled seconds per phase of the composition.
  double front_seconds = 0.0;
  double cpu_seconds = 0.0;
  double gpu_pipeline_seconds = 0.0;
  /// Full-join predictor anchors used for the initial split.
  double predicted_cpu_seconds = 0.0;
  double predicted_gpu_seconds = 0.0;
  /// Adaptive trajectory (one entry per wave; single entry when static).
  std::vector<CoProcessWave> waves;
};

/// Modeled completion time of the bounded software pipeline: pair k's
/// bandwidth stage (link/TLB/CPU-memory lane) must finish before its
/// compute stage starts, stages of each kind run in order, and the
/// bandwidth stage of pair k may only start once pair k - depth has
/// drained its staging slot. Exposed for the scheduler tests.
double BoundedPipelineSeconds(const std::vector<double>& bw_stage,
                              const std::vector<double>& compute_stage,
                              uint32_t depth);

/// The co-processing scheduler; see file comment.
class CoProcessScheduler {
 public:
  /// Minimum pass-1 bits: at least 32 pairs so the split has granularity.
  static constexpr uint32_t kMinPairBits = 5;

  explicit CoProcessScheduler(CoProcessConfig config = {})
      : config_(config) {}

  /// Joins r (build side) with s (probe side) across both backends.
  util::StatusOr<join::JoinRun> Run(exec::Device& dev,
                                    const data::Relation& r,
                                    const data::Relation& s);

  const CoProcessConfig& config() const { return config_; }
  const CoProcessStats& stats() const { return stats_; }

  /// Derives the radix bits: same total depth as the Triton join (refined
  /// partitions of ~1024 tuples) but with pass-1 taking at least
  /// kMinPairBits of it, so a join always decomposes into enough morsels
  /// to split. The pair-fits-GPU-budget rule matches TritonJoin.
  static void DeriveBits(const sim::HwSpec& hw, uint64_t r_tuples,
                         uint64_t s_tuples, uint32_t* bits1, uint32_t* bits2);

 private:
  CoProcessConfig config_;
  CoProcessStats stats_;
};

}  // namespace triton::sched

#endif  // TRITON_SCHED_COPROCESS_SCHEDULER_H_
