// Shared resident build side for small probe requests.
//
// Many service tenants probe the same dimension table; rebuilding the hash
// table per request would dominate their cost. SharedBuild keeps one
// perfect hash table resident on a long-lived private device (its memory
// held from the MemoryArbiter for the service's lifetime) and executes
// probe requests in batches: the scheduler coalesces up to
// probe_batch_limit small requests into a single kernel launch, amortizing
// the per-dispatch overhead and the launch-time GPU TLB flush across the
// batch.
//
// Each batch stages its probe keys inside a mem::Allocator arena
// (BeginArena/EndArena), so the simulated addresses — and the TLB/counter
// physics derived from them — are a deterministic function of the batch's
// own allocation sequence, independent of how many batches ran before it.

#ifndef TRITON_SERVE_SHARED_BUILD_H_
#define TRITON_SERVE_SHARED_BUILD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/relation.h"
#include "exec/device.h"
#include "mem/buffer.h"
#include "serve/arbiter.h"
#include "sim/perf_counters.h"
#include "util/status.h"

namespace triton::serve {

/// One probe request against the shared build side.
struct ProbeSpec {
  /// Probe keys to generate (uniform in [1, build tuples]).
  uint64_t tuples = 0;
  /// Seed for this request's deterministic key/payload stream.
  uint64_t seed = 1;
};

/// Per-request functional result of a batch.
struct ProbeResult {
  uint64_t matches = 0;
  uint64_t checksum = 0;
};

/// One executed batch: per-request results plus the launch's modeled cost.
struct BatchRun {
  std::vector<ProbeResult> results;
  /// Modeled seconds of the single probe launch.
  double elapsed = 0.0;
  /// Counters of the single probe launch (the service attributes them to
  /// requests proportionally; see JoinService).
  sim::PerfCounters counters;
};

/// A resident perfect-hash build side shared by many probe requests.
class SharedBuild {
 public:
  struct Config {
    /// Build-side cardinality (primary keys 1..tuples).
    uint64_t tuples = 0;
    /// Seed of the build relation's deterministic content.
    uint64_t seed = 7;
    /// CPU-memory headroom reserved for per-batch probe staging; 0 derives
    /// a default from the machine (1/8 of CPU capacity).
    uint64_t staging_bytes = 0;
  };

  /// Builds the resident table on a private device whose memory is held
  /// from `arbiter` until destruction. Fails with ResourceExhausted when
  /// the machine cannot host the table.
  static util::StatusOr<std::unique_ptr<SharedBuild>> Create(
      const sim::HwSpec& hw, MemoryArbiter& arbiter, const Config& config);

  /// Runs one batch of probe requests as a single kernel launch. Results
  /// are per-request and independent of how requests were grouped into
  /// batches (the batching-equivalence property serve_test checks).
  util::StatusOr<BatchRun> RunBatch(const std::vector<ProbeSpec>& specs);

  uint64_t tuples() const { return config_.tuples; }
  /// Modeled seconds spent building the resident table (paid once).
  double build_elapsed() const { return build_elapsed_; }
  exec::Device& device() { return *device_; }

 private:
  SharedBuild() = default;

  Config config_;
  Reservation reservation_;
  std::unique_ptr<exec::Device> device_;
  data::Relation build_;
  mem::Buffer table_;
  double build_elapsed_ = 0.0;
};

}  // namespace triton::serve

#endif  // TRITON_SERVE_SHARED_BUILD_H_
