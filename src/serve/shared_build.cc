#include "serve/shared_build.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "data/generator.h"
#include "hash/perfect_table.h"
#include "util/bits.h"
#include "util/logging.h"
#include "util/random.h"

namespace triton::serve {

namespace {

/// SM-cycles per build/probe tuple, matching the no-partitioning join's
/// calibration (the probe path is the same perfect-table lookup).
constexpr double kBuildCyclesPerTuple = 68.0;
constexpr double kProbeCyclesPerTuple = 28.0;

}  // namespace

util::StatusOr<std::unique_ptr<SharedBuild>> SharedBuild::Create(
    const sim::HwSpec& hw, MemoryArbiter& arbiter, const Config& config) {
  if (config.tuples == 0) {
    return util::Status::InvalidArgument("shared build needs tuples > 0");
  }
  const uint64_t page = hw.tlb.page_bytes;
  const uint64_t table_bytes = config.tuples * sizeof(hash::Entry);
  const uint64_t build_bytes =
      2 * util::AlignUp(config.tuples * sizeof(data::Key), page);
  uint64_t staging = config.staging_bytes;
  if (staging == 0) staging = hw.cpu_mem.capacity / 8;

  // The table wants GPU residency but spills to interleaved placement when
  // the GPU carve cannot hold it, exactly like the NPJ's cache budget.
  ResourceRequest req;
  req.gpu_bytes = std::min(table_bytes + page, hw.gpu_mem.capacity / 2);
  req.cpu_bytes = table_bytes + build_bytes + staging;
  auto res = arbiter.Reserve(req);
  if (!res.ok()) return res.status();

  auto sb = std::unique_ptr<SharedBuild>(new SharedBuild());
  sb->config_ = config;
  sb->config_.staging_bytes = staging;
  sb->reservation_ = std::move(res).value();
  sb->device_ =
      std::make_unique<exec::Device>(arbiter.CarvedSpec(sb->reservation_));
  exec::Device& dev = *sb->device_;

  auto rel = data::Relation::AllocateCpu(dev.allocator(), config.tuples);
  if (!rel.ok()) return rel.status();
  sb->build_ = std::move(rel).value();
  data::FillPrimaryKeys(sb->build_, config.seed, /*shuffle=*/true);
  data::FillPayloads(sb->build_, config.seed ^ 0x9e3779b97f4a7c15ULL);

  // Headroom for page-granularity rounding of the interleaved placement.
  uint64_t gpu_avail = dev.allocator().gpu_free();
  gpu_avail -= gpu_avail / 64;
  auto table = dev.allocator().AllocateInterleaved(
      table_bytes, std::min(table_bytes, gpu_avail));
  if (!table.ok()) return table.status();
  sb->table_ = std::move(table).value();
  std::memset(sb->table_.data(), 0, sb->table_.size());

  const data::Key* keys = sb->build_.keys();
  const data::Value* vals = sb->build_.payload(0);
  exec::KernelConfig build_cfg;
  build_cfg.name = "serve_build";
  exec::KernelRecord record =
      dev.Launch(build_cfg, [&](exec::KernelContext& ctx) {
        ctx.ReadSeq(sb->build_.key_buffer(), 0,
                    config.tuples * sizeof(data::Key));
        ctx.ReadSeq(sb->build_.payload_buffer(0), 0,
                    config.tuples * sizeof(data::Value));
        ctx.AddTuples(config.tuples);
        ctx.Charge(
            static_cast<uint64_t>(config.tuples * kBuildCyclesPerTuple));
        hash::Entry* slots = sb->table_.as<hash::Entry>();
        for (uint64_t i = 0; i < config.tuples; ++i) {
          uint64_t slot = static_cast<uint64_t>(keys[i] - 1);
          slots[slot] = {keys[i], vals[i]};
          ctx.WriteRand(sb->table_, slot * sizeof(hash::Entry),
                        sizeof(hash::Entry));
        }
      });
  sb->build_elapsed_ = record.Elapsed();
  return sb;
}

util::StatusOr<BatchRun> SharedBuild::RunBatch(
    const std::vector<ProbeSpec>& specs) {
  if (specs.empty()) {
    return util::Status::InvalidArgument("empty probe batch");
  }
  uint64_t total = 0;
  for (const ProbeSpec& s : specs) total += s.tuples;
  if (total == 0) {
    return util::Status::InvalidArgument("probe batch with 0 tuples");
  }

  exec::Device& dev = *device_;
  // Stage the batch inside an arena: simulated addresses (and therefore
  // TLB physics) restart from the same base for every batch.
  const uint64_t arena = dev.allocator().BeginArena();
  BatchRun run;
  {
    auto keys = dev.allocator().AllocateCpu(total * sizeof(data::Key));
    if (!keys.ok()) {
      CHECK_OK(dev.allocator().EndArena(arena));
      return keys.status();
    }
    auto vals = dev.allocator().AllocateCpu(total * sizeof(data::Value));
    if (!vals.ok()) {
      CHECK_OK(dev.allocator().EndArena(arena));
      return vals.status();
    }

    // Each request's keys come from its own seed, so its functional result
    // is identical whichever batch it lands in.
    data::Key* k = keys->as<data::Key>();
    data::Value* v = vals->as<data::Value>();
    uint64_t cursor = 0;
    for (const ProbeSpec& s : specs) {
      util::Lcg64 lcg(s.seed);
      for (uint64_t i = 0; i < s.tuples; ++i) {
        k[cursor + i] =
            static_cast<data::Key>(1 + lcg.NextBounded(config_.tuples));
        v[cursor + i] = static_cast<data::Value>(lcg.Next());
      }
      cursor += s.tuples;
    }

    run.results.resize(specs.size());
    exec::KernelConfig probe_cfg;
    probe_cfg.name = "serve_probe_batch";
    exec::KernelRecord record =
        dev.Launch(probe_cfg, [&](exec::KernelContext& ctx) {
          ctx.ReadSeq(*keys, 0, total * sizeof(data::Key));
          ctx.ReadSeq(*vals, 0, total * sizeof(data::Value));
          ctx.AddTuples(total);
          ctx.Charge(static_cast<uint64_t>(total * kProbeCyclesPerTuple));
          const hash::Entry* slots = table_.as<const hash::Entry>();
          uint64_t base = 0;
          for (size_t r = 0; r < specs.size(); ++r) {
            ProbeResult& out = run.results[r];
            for (uint64_t i = 0; i < specs[r].tuples; ++i) {
              const data::Key key = k[base + i];
              const uint64_t slot = static_cast<uint64_t>(key - 1);
              ctx.ReadRand(table_, slot * sizeof(hash::Entry),
                           sizeof(hash::Entry));
              if (slots[slot].key == key) {
                ++out.matches;
                out.checksum += static_cast<uint64_t>(slots[slot].value) +
                                static_cast<uint64_t>(v[base + i]);
              }
            }
            base += specs[r].tuples;
          }
        });
    run.elapsed = record.Elapsed();
    run.counters = record.counters;
    dev.allocator().Free(*keys);
    dev.allocator().Free(*vals);
  }
  TRITON_RETURN_IF_ERROR(dev.allocator().EndArena(arena));
  return run;
}

}  // namespace triton::serve
