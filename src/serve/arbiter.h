// Memory arbiter: carves the simulated device between in-flight queries.
//
// The paper's join owns the whole GPU; a service does not. The arbiter
// tracks three budgets of one simulated machine — GPU on-board memory, CPU
// socket memory, and per-block scratchpad (a proxy for concurrent kernel
// residency) — and hands each admitted query a Reservation. The query then
// runs on a private exec::Device built from CarvedSpec(), whose capacities
// equal the grant while bandwidths, latencies and transaction sizes stay
// those of the real machine: the existing operators adapt to the smaller
// capacities exactly as they adapt to a smaller GPU (DeriveBits, spilling,
// chunked scratchpad builds), so concurrency pressure reuses the paper's
// own out-of-core machinery.
//
// Reserve() never blocks and never aborts: an unsatisfiable request fails
// with ResourceExhausted and the caller retries after a release. All
// methods are single-threaded by design — the JoinService scheduler is the
// only caller (see DESIGN.md, "Service layer").

#ifndef TRITON_SERVE_ARBITER_H_
#define TRITON_SERVE_ARBITER_H_

#include <cstdint>
#include <utility>

#include "sim/hw_spec.h"
#include "util/status.h"

namespace triton::serve {

class MemoryArbiter;

/// One query's requested carve of the machine.
struct ResourceRequest {
  uint64_t gpu_bytes = 0;
  uint64_t cpu_bytes = 0;
  uint64_t scratchpad_bytes = 0;
};

/// RAII grant handed out by MemoryArbiter::Reserve; returns its budgets on
/// destruction (or an explicit Release). Move-only.
class Reservation {
 public:
  Reservation() = default;
  ~Reservation() { Release(); }

  Reservation(const Reservation&) = delete;
  Reservation& operator=(const Reservation&) = delete;
  Reservation(Reservation&& other) noexcept { *this = std::move(other); }
  Reservation& operator=(Reservation&& other) noexcept;

  /// True while this reservation holds budget.
  bool active() const { return arbiter_ != nullptr; }
  const ResourceRequest& grant() const { return grant_; }

  /// Returns the grant to the arbiter; idempotent.
  void Release();

 private:
  friend class MemoryArbiter;
  Reservation(MemoryArbiter* arbiter, const ResourceRequest& grant)
      : grant_(grant), arbiter_(arbiter) {}

  ResourceRequest grant_;
  MemoryArbiter* arbiter_ = nullptr;
};

/// Budget accountant for one simulated machine shared by many queries.
class MemoryArbiter {
 public:
  explicit MemoryArbiter(const sim::HwSpec& hw);

  MemoryArbiter(const MemoryArbiter&) = delete;
  MemoryArbiter& operator=(const MemoryArbiter&) = delete;

  /// Grants the carve or fails with ResourceExhausted, naming the budget
  /// that ran out. A zero request is granted (and holds nothing).
  util::StatusOr<Reservation> Reserve(const ResourceRequest& request);

  /// The HwSpec a query's private Device runs under: memory capacities and
  /// scratchpad shrunk to the grant, everything else the real machine. A
  /// zero scratchpad grant keeps the machine's scratchpad (the query runs
  /// no scratchpad kernels, so it holds none of that budget).
  sim::HwSpec CarvedSpec(const Reservation& reservation) const;

  /// True when `request` could never be granted even on an idle machine.
  bool ExceedsMachine(const ResourceRequest& request) const;

  uint64_t gpu_free() const { return gpu_capacity_ - gpu_used_; }
  uint64_t cpu_free() const { return cpu_capacity_ - cpu_used_; }
  uint64_t scratchpad_free() const {
    return scratchpad_capacity_ - scratchpad_used_;
  }
  uint64_t gpu_capacity() const { return gpu_capacity_; }
  uint64_t cpu_capacity() const { return cpu_capacity_; }
  uint64_t scratchpad_capacity() const { return scratchpad_capacity_; }
  uint32_t active_reservations() const { return active_; }

 private:
  friend class Reservation;
  void ReturnGrant(const ResourceRequest& grant);

  sim::HwSpec hw_;
  uint64_t gpu_capacity_ = 0;
  uint64_t cpu_capacity_ = 0;
  uint64_t scratchpad_capacity_ = 0;
  uint64_t gpu_used_ = 0;
  uint64_t cpu_used_ = 0;
  uint64_t scratchpad_used_ = 0;
  uint32_t active_ = 0;
};

}  // namespace triton::serve

#endif  // TRITON_SERVE_ARBITER_H_
