#include "serve/arbiter.h"

#include <utility>

#include "util/logging.h"
#include "util/units.h"

namespace triton::serve {

Reservation& Reservation::operator=(Reservation&& other) noexcept {
  if (this != &other) {
    Release();
    grant_ = other.grant_;
    arbiter_ = other.arbiter_;
    other.arbiter_ = nullptr;
    other.grant_ = ResourceRequest{};
  }
  return *this;
}

void Reservation::Release() {
  if (arbiter_ == nullptr) return;
  arbiter_->ReturnGrant(grant_);
  arbiter_ = nullptr;
  grant_ = ResourceRequest{};
}

MemoryArbiter::MemoryArbiter(const sim::HwSpec& hw)
    : hw_(hw),
      gpu_capacity_(hw.gpu_mem.capacity),
      cpu_capacity_(hw.cpu_mem.capacity),
      scratchpad_capacity_(hw.gpu.scratchpad_bytes) {}

bool MemoryArbiter::ExceedsMachine(const ResourceRequest& request) const {
  return request.gpu_bytes > gpu_capacity_ ||
         request.cpu_bytes > cpu_capacity_ ||
         request.scratchpad_bytes > scratchpad_capacity_;
}

util::StatusOr<Reservation> MemoryArbiter::Reserve(
    const ResourceRequest& request) {
  if (request.gpu_bytes > gpu_free()) {
    return util::Status::ResourceExhausted(
        "GPU budget exhausted: need " + util::FormatBytes(request.gpu_bytes) +
        ", free " + util::FormatBytes(gpu_free()));
  }
  if (request.cpu_bytes > cpu_free()) {
    return util::Status::ResourceExhausted(
        "CPU budget exhausted: need " + util::FormatBytes(request.cpu_bytes) +
        ", free " + util::FormatBytes(cpu_free()));
  }
  if (request.scratchpad_bytes > scratchpad_free()) {
    return util::Status::ResourceExhausted(
        "scratchpad budget exhausted: need " +
        util::FormatBytes(request.scratchpad_bytes) + ", free " +
        util::FormatBytes(scratchpad_free()));
  }
  gpu_used_ += request.gpu_bytes;
  cpu_used_ += request.cpu_bytes;
  scratchpad_used_ += request.scratchpad_bytes;
  ++active_;
  return Reservation(this, request);
}

void MemoryArbiter::ReturnGrant(const ResourceRequest& grant) {
  CHECK_GE(gpu_used_, grant.gpu_bytes);
  CHECK_GE(cpu_used_, grant.cpu_bytes);
  CHECK_GE(scratchpad_used_, grant.scratchpad_bytes);
  CHECK_GT(active_, 0u);
  gpu_used_ -= grant.gpu_bytes;
  cpu_used_ -= grant.cpu_bytes;
  scratchpad_used_ -= grant.scratchpad_bytes;
  --active_;
}

sim::HwSpec MemoryArbiter::CarvedSpec(const Reservation& reservation) const {
  CHECK(reservation.active());
  sim::HwSpec spec = hw_;
  const ResourceRequest& g = reservation.grant();
  spec.gpu_mem.capacity = g.gpu_bytes;
  spec.cpu_mem.capacity = g.cpu_bytes;
  if (g.scratchpad_bytes > 0) spec.gpu.scratchpad_bytes = g.scratchpad_bytes;
  return spec;
}

}  // namespace triton::serve
