#include "serve/join_service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/triton_aggregate.h"
#include "core/triton_join.h"
#include "data/generator.h"
#include "data/relation.h"
#include "exec/device.h"
#include "join/common.h"
#include "join/cpu_radix_join.h"
#include "sched/coprocess_scheduler.h"
#include "util/bits.h"
#include "util/logging.h"

namespace triton::serve {

namespace {

/// Integer-exact proportional share of a counter record: each field is
/// scaled by num/den with 128-bit intermediates, so batch attribution is
/// deterministic arithmetic, not floating point.
uint64_t Share(uint64_t v, uint64_t num, uint64_t den) {
  return static_cast<uint64_t>(
      static_cast<unsigned __int128>(v) * num / den);
}

sim::PerfCounters ProportionalShare(const sim::PerfCounters& c, uint64_t num,
                                    uint64_t den) {
  sim::PerfCounters out;
  out.gpu_mem_read = Share(c.gpu_mem_read, num, den);
  out.gpu_mem_write = Share(c.gpu_mem_write, num, den);
  out.gpu_mem_random_write = Share(c.gpu_mem_random_write, num, den);
  out.link_read_payload = Share(c.link_read_payload, num, den);
  out.link_read_physical = Share(c.link_read_physical, num, den);
  out.link_write_payload = Share(c.link_write_payload, num, den);
  out.link_write_physical = Share(c.link_write_physical, num, den);
  out.link_read_txns = Share(c.link_read_txns, num, den);
  out.link_write_txns = Share(c.link_write_txns, num, den);
  out.cpu_mem_read = Share(c.cpu_mem_read, num, den);
  out.cpu_mem_write = Share(c.cpu_mem_write, num, den);
  out.gpu_tlb_lookups = Share(c.gpu_tlb_lookups, num, den);
  out.gpu_tlb_misses = Share(c.gpu_tlb_misses, num, den);
  out.l3_hits = Share(c.l3_hits, num, den);
  out.iommu_requests = Share(c.iommu_requests, num, den);
  out.iommu_walks = Share(c.iommu_walks, num, den);
  out.issue_slots = Share(c.issue_slots, num, den);
  out.tuples = Share(c.tuples, num, den);
  return out;
}

}  // namespace

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kJoin:
      return "join";
    case RequestKind::kAggregate:
      return "aggregate";
    case RequestKind::kProbe:
      return "probe";
  }
  return "unknown";
}

JoinService::JoinService(const sim::HwSpec& hw, const ServiceConfig& config)
    : hw_(hw),
      config_(config),
      arbiter_(hw),
      rng_(config.scheduler_seed) {
  if (config_.max_inflight == 0) config_.max_inflight = 1;
  if (config_.probe_batch_limit == 0) config_.probe_batch_limit = 1;
  if (config_.shared_build_tuples > 0) {
    SharedBuild::Config sb;
    sb.tuples = config_.shared_build_tuples;
    sb.seed = config_.shared_build_seed;
    auto built = SharedBuild::Create(hw_, arbiter_, sb);
    if (built.ok()) {
      shared_build_ = std::move(built).value();
    } else {
      init_status_ = built.status();
    }
  }
  // Queries get equal shares of whatever the shared build left over; more
  // allowed concurrency means smaller carves, which is exactly the
  // contention the service models.
  gpu_share_ = arbiter_.gpu_free() / config_.max_inflight;
  scratchpad_share_ = arbiter_.scratchpad_free() / config_.max_inflight;
}

ResourceRequest JoinService::EstimateFootprint(const Request& request) const {
  const uint64_t page = hw_.tlb.page_bytes;
  ResourceRequest need;
  switch (request.kind) {
    case RequestKind::kProbe:
      // Staged keys + payloads, plus page-rounding slack. The staging
      // physically comes from the shared build's carve; this reservation
      // is the admission-control account of it.
      need.cpu_bytes =
          2 * util::AlignUp(request.s_tuples * sizeof(data::Key), page) +
          page;
      break;
    case RequestKind::kJoin: {
      const uint64_t input =
          (request.r_tuples + request.s_tuples) * data::kTupleBytes;
      // Input relations, both partitioned copies with per-slice padding,
      // and spill headroom.
      need.cpu_bytes = input * 8 + 256 * page;
      // A CPU-only join touches neither GPU memory nor scratchpad: the
      // arbiter can keep it resident alongside GPU-bound queries.
      if (request.backend != exec::Backend::kCpu) {
        need.gpu_bytes = gpu_share_;
        need.scratchpad_bytes = scratchpad_share_;
      }
      break;
    }
    case RequestKind::kAggregate: {
      const uint64_t input = request.s_tuples * data::kTupleBytes;
      need.cpu_bytes = input * 8 + request.r_tuples * data::kTupleBytes +
                       256 * page;
      need.gpu_bytes = gpu_share_;
      need.scratchpad_bytes = scratchpad_share_;
      break;
    }
  }
  return need;
}

util::Status JoinService::Submit(const Request& request) {
  TRITON_RETURN_IF_ERROR(init_status_);
  if (request.s_tuples == 0) {
    return util::Status::InvalidArgument("request needs s_tuples > 0");
  }
  if (request.kind == RequestKind::kJoin && request.r_tuples == 0) {
    return util::Status::InvalidArgument("join request needs r_tuples > 0");
  }
  if (request.kind == RequestKind::kProbe && shared_build_ == nullptr) {
    return util::Status::FailedPrecondition(
        "probe request but no shared build configured "
        "(ServiceConfig::shared_build_tuples == 0)");
  }
  if (pending_.size() >= config_.queue_capacity) {
    ++rejected_[request.tenant];
    return util::Status::ResourceExhausted(
        "admission queue full (capacity " +
        std::to_string(config_.queue_capacity) + ")");
  }
  pending_.push_back(PendingRequest{request, next_request_id_++});
  return util::Status::OK();
}

void JoinService::AdmitPending() {
  while (inflight_.size() < config_.max_inflight && !pending_.empty()) {
    PendingRequest& head = pending_.front();
    const ResourceRequest need = EstimateFootprint(head.request);
    auto res = arbiter_.Reserve(need);
    if (!res.ok()) {
      if (!inflight_.empty()) break;  // a completion will free budget
      // Nothing in flight can ever release budget for this request: fail
      // it now instead of deadlocking the scheduler.
      RequestOutcome out;
      out.id = head.id;
      out.tenant = head.request.tenant;
      out.kind = head.request.kind;
      out.status = res.status();
      outcomes_.push_back(std::move(out));
      pending_.pop_front();
      continue;
    }
    inflight_.push_back(
        InFlight{head.request, head.id, std::move(res).value()});
    pending_.pop_front();
  }
}

util::Status JoinService::Drain() {
  TRITON_RETURN_IF_ERROR(init_status_);
  while (!pending_.empty() || !inflight_.empty()) {
    AdmitPending();
    if (inflight_.empty()) continue;
    DispatchOne();
  }
  return util::Status::OK();
}

void JoinService::DispatchOne() {
  const size_t pick =
      static_cast<size_t>(rng_.NextBounded(inflight_.size()));
  if (inflight_[pick].request.kind == RequestKind::kProbe) {
    // Coalesce every in-flight probe (admission order) up to the limit.
    std::vector<size_t> batch;
    for (size_t i = 0;
         i < inflight_.size() && batch.size() < config_.probe_batch_limit;
         ++i) {
      if (inflight_[i].request.kind == RequestKind::kProbe) {
        batch.push_back(i);
      }
    }
    ExecuteProbeBatch(batch);
    for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
      inflight_.erase(inflight_.begin() + static_cast<int64_t>(*it));
    }
  } else {
    RequestOutcome out = ExecuteQuery(inflight_[pick]);
    out.elapsed += config_.dispatch_overhead_seconds;
    busy_seconds_ += out.elapsed;
    ++dispatches_;
    outcomes_.push_back(std::move(out));
    inflight_.erase(inflight_.begin() + static_cast<int64_t>(pick));
  }
}

RequestOutcome JoinService::ExecuteQuery(const InFlight& query) {
  RequestOutcome out;
  out.id = query.id;
  out.tenant = query.request.tenant;
  out.kind = query.request.kind;

  // A fresh device per query: its TLB state, trace and — thanks to its own
  // allocator — simulated addresses depend only on this query.
  exec::Device dev(arbiter_.CarvedSpec(query.reservation));
  if (query.request.kind == RequestKind::kJoin) {
    data::WorkloadConfig cfg;
    cfg.r_tuples = query.request.r_tuples;
    cfg.s_tuples = query.request.s_tuples;
    cfg.seed = query.request.seed;
    cfg.zipf_theta = query.request.zipf_theta;
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    if (!wl.ok()) {
      out.status = wl.status();
      return out;
    }
    util::StatusOr<join::JoinRun> run = join::JoinRun{};
    switch (query.request.backend) {
      case exec::Backend::kCpu: {
        join::CpuRadixJoin cpu_join(
            {.result_mode = join::ResultMode::kAggregate});
        run = cpu_join.Run(dev, wl->r, wl->s);
        break;
      }
      case exec::Backend::kHybrid: {
        sched::CoProcessConfig cfg;
        cfg.result_mode = join::ResultMode::kAggregate;
        cfg.adaptive = true;
        cfg.seed = query.request.seed;
        sched::CoProcessScheduler hybrid(cfg);
        run = hybrid.Run(dev, wl->r, wl->s);
        break;
      }
      case exec::Backend::kGpu: {
        core::TritonJoin join({.result_mode = join::ResultMode::kAggregate});
        run = join.Run(dev, wl->r, wl->s);
        break;
      }
    }
    if (!run.ok()) {
      out.status = run.status();
      return out;
    }
    out.matches = run->matches;
    out.checksum = run->checksum;
    out.elapsed = run->elapsed;
    out.counters = run->totals;
  } else {
    auto rel =
        data::Relation::AllocateCpu(dev.allocator(), query.request.s_tuples);
    if (!rel.ok()) {
      out.status = rel.status();
      return out;
    }
    const uint64_t domain = query.request.r_tuples > 0
                                ? query.request.r_tuples
                                : query.request.s_tuples;
    data::FillForeignKeys(*rel, domain, query.request.seed);
    data::FillPayloads(*rel, query.request.seed ^ 0x9e3779b97f4a7c15ULL);
    core::TritonAggregate agg;
    auto run = agg.Run(dev, *rel);
    if (!run.ok()) {
      out.status = run.status();
      return out;
    }
    out.matches = run->groups;
    out.checksum = run->checksum;
    out.elapsed = run->elapsed;
    out.counters = run->totals;
  }
  return out;
}

void JoinService::ExecuteProbeBatch(const std::vector<size_t>& indices) {
  CHECK(shared_build_ != nullptr);
  CHECK(!indices.empty());
  std::vector<ProbeSpec> specs;
  specs.reserve(indices.size());
  uint64_t total = 0;
  for (size_t i : indices) {
    specs.push_back(ProbeSpec{inflight_[i].request.s_tuples,
                              inflight_[i].request.seed});
    total += inflight_[i].request.s_tuples;
  }
  auto run = shared_build_->RunBatch(specs);
  ++dispatches_;

  if (!run.ok()) {
    for (size_t i : indices) {
      RequestOutcome out;
      out.id = inflight_[i].id;
      out.tenant = inflight_[i].request.tenant;
      out.kind = RequestKind::kProbe;
      out.status = run.status();
      out.batch_size = static_cast<uint32_t>(indices.size());
      outcomes_.push_back(std::move(out));
    }
    return;
  }

  const double batch_elapsed =
      run->elapsed + config_.dispatch_overhead_seconds;
  busy_seconds_ += batch_elapsed;
  for (size_t j = 0; j < indices.size(); ++j) {
    const InFlight& q = inflight_[indices[j]];
    RequestOutcome out;
    out.id = q.id;
    out.tenant = q.request.tenant;
    out.kind = RequestKind::kProbe;
    out.matches = run->results[j].matches;
    out.checksum = run->results[j].checksum;
    out.batch_size = static_cast<uint32_t>(indices.size());
    out.elapsed = batch_elapsed * static_cast<double>(q.request.s_tuples) /
                  static_cast<double>(total);
    out.counters = ProportionalShare(run->counters, q.request.s_tuples, total);
    outcomes_.push_back(std::move(out));
  }
}

std::vector<TenantReport> JoinService::BuildTenantReports() const {
  // Tenant ids in ascending order (std::map keeps them sorted).
  std::map<uint32_t, TenantReport> reports;
  for (const auto& [tenant, count] : rejected_) {
    reports[tenant].tenant = tenant;
    reports[tenant].rejected = count;
  }
  for (const RequestOutcome& out : outcomes_) {
    TenantReport& report = reports[out.tenant];
    report.tenant = out.tenant;
    if (out.status.ok()) {
      ++report.completed;
      report.matches += out.matches;
      report.checksum += out.checksum;
      report.elapsed += out.elapsed;
      report.counters.Merge(out.counters);
    } else {
      ++report.failed;
    }
  }
  std::vector<TenantReport> out;
  out.reserve(reports.size());
  for (auto& [tenant, report] : reports) out.push_back(std::move(report));
  return out;
}

}  // namespace triton::serve
