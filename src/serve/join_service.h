// Concurrent join service over the simulated machine.
//
// JoinService is the front end the ROADMAP's north star asks for: many
// tenants submit join / aggregate / probe requests; the service admits them
// through a bounded queue, carves the machine between in-flight queries via
// the MemoryArbiter, batches small probe requests against a SharedBuild,
// and reduces per-tenant PerfCounters in deterministic tenant order.
//
// Determinism contract (extends PR 2's): the scheduler itself is
// single-threaded and draws its interleaving decisions from a seeded
// util::Rng, so the sequence of dispatches is a pure function of
// (scheduler seed, request trace, config). Intra-query parallelism runs
// through exec::BlockExecutor, whose block-ordered reduction is
// bit-identical at any thread count; each query executes on a fresh
// private Device (and each probe batch inside an allocator arena), so its
// simulated addresses — and the TLB/counter physics derived from them —
// depend only on its own allocation sequence. Together: a given
// (seed, trace, config) triple produces bit-identical results and
// counters at any --threads value.
//
// Time model: queries time-share one GPU, so the service's modeled busy
// time is the sum of the dispatched kernels' modeled seconds plus a fixed
// dispatch overhead per scheduler dispatch (kernel launch + driver
// bookkeeping — the cost probe batching amortizes). Batched launches
// attribute elapsed time and counters to member requests proportionally to
// their probe tuples.

#ifndef TRITON_SERVE_JOIN_SERVICE_H_
#define TRITON_SERVE_JOIN_SERVICE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "exec/backend.h"
#include "serve/arbiter.h"
#include "serve/shared_build.h"
#include "sim/hw_spec.h"
#include "sim/perf_counters.h"
#include "util/random.h"
#include "util/status.h"

namespace triton::serve {

/// What a tenant asks the service to run.
enum class RequestKind {
  /// PK/FK equi-join of a generated R |><| S workload (aggregated result).
  kJoin,
  /// SUM/COUNT GROUP BY over a generated foreign-key relation.
  kAggregate,
  /// Small probe against the service's shared resident build side.
  kProbe,
};

const char* RequestKindName(RequestKind kind);

/// One tenant request.
struct Request {
  uint32_t tenant = 0;
  RequestKind kind = RequestKind::kJoin;
  /// Build-side tuples (kJoin) or group-key domain (kAggregate); unused
  /// for kProbe.
  uint64_t r_tuples = 0;
  /// Probe-side tuples (kJoin), input tuples (kAggregate), or probe keys
  /// (kProbe).
  uint64_t s_tuples = 0;
  /// Seed of the request's deterministic workload content.
  uint64_t seed = 1;
  /// Probe-side skew for kJoin (0 = uniform).
  double zipf_theta = 0.0;
  /// Backend a kJoin executes on: the GPU Triton join (default), the
  /// CPU-only radix join (reserves no GPU memory or scratchpad, so the
  /// arbiter can co-schedule it with GPU-resident queries), or the
  /// co-processing scheduler splitting the query across both processors.
  exec::Backend backend = exec::Backend::kGpu;
};

/// Service-wide configuration.
struct ServiceConfig {
  /// Admission bound: Submit fails with ResourceExhausted beyond this many
  /// pending requests.
  uint32_t queue_capacity = 64;
  /// Maximum queries holding arbiter reservations at once.
  uint32_t max_inflight = 4;
  /// Seed of the deterministic inter-query scheduler.
  uint64_t scheduler_seed = 1;
  /// Maximum probe requests coalesced into one shared-build launch.
  uint32_t probe_batch_limit = 8;
  /// Modeled seconds charged per scheduler dispatch (kernel launch +
  /// driver bookkeeping); amortized by probe batching.
  double dispatch_overhead_seconds = 20e-6;
  /// Cardinality of the shared resident build side (0 = none; probe
  /// requests are then rejected at submit).
  uint64_t shared_build_tuples = 0;
  uint64_t shared_build_seed = 7;
};

/// Terminal state of one admitted request.
struct RequestOutcome {
  uint64_t id = 0;
  uint32_t tenant = 0;
  RequestKind kind = RequestKind::kJoin;
  /// OK on success; ResourceExhausted when the request could never fit the
  /// machine; the failing operator status otherwise.
  util::Status status;
  /// Join matches, aggregate groups, or probe matches.
  uint64_t matches = 0;
  uint64_t checksum = 0;
  /// Modeled seconds attributed to this request (incl. dispatch-overhead
  /// share).
  double elapsed = 0.0;
  /// Number of requests in the launch this one executed in (1 unless
  /// batched).
  uint32_t batch_size = 1;
  /// Counters attributed to this request (proportional share for batches).
  sim::PerfCounters counters;
};

/// Per-tenant reduction of all outcomes, produced in ascending tenant id.
struct TenantReport {
  uint32_t tenant = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  /// Requests refused at admission (never admitted, no outcome).
  uint64_t rejected = 0;
  uint64_t matches = 0;
  uint64_t checksum = 0;
  double elapsed = 0.0;
  sim::PerfCounters counters;
};

/// The service: bounded admission, arbiter-carved execution, deterministic
/// scheduling. Single-threaded by design; parallelism lives inside the
/// kernels (exec::BlockExecutor).
class JoinService {
 public:
  JoinService(const sim::HwSpec& hw, const ServiceConfig& config);

  JoinService(const JoinService&) = delete;
  JoinService& operator=(const JoinService&) = delete;

  /// Enqueues a request. Fails with ResourceExhausted when the admission
  /// queue is full (counted against the tenant), InvalidArgument for a
  /// malformed request, FailedPrecondition for a probe without a shared
  /// build.
  util::Status Submit(const Request& request);

  /// Runs the deterministic scheduler until every admitted request has an
  /// outcome. Never aborts on per-request failures (they land in the
  /// request's outcome); returns non-OK only for service-level faults
  /// (e.g. the shared build failed to initialize).
  util::Status Drain();

  /// Outcomes in completion order (one per admitted request after Drain).
  const std::vector<RequestOutcome>& outcomes() const { return outcomes_; }

  /// Reduces outcomes per tenant, ordered by ascending tenant id. Counter
  /// merging follows outcome completion order within each tenant, which is
  /// itself deterministic.
  std::vector<TenantReport> BuildTenantReports() const;

  /// Modeled seconds the device spent busy (sum over dispatches).
  double busy_seconds() const { return busy_seconds_; }
  /// Scheduler dispatches executed (a probe batch counts once).
  uint64_t dispatches() const { return dispatches_; }

  MemoryArbiter& arbiter() { return arbiter_; }
  SharedBuild* shared_build() { return shared_build_.get(); }
  const util::Status& init_status() const { return init_status_; }

 private:
  struct PendingRequest {
    Request request;
    uint64_t id = 0;
  };
  struct InFlight {
    Request request;
    uint64_t id = 0;
    Reservation reservation;
  };

  /// The arbiter footprint a request is admitted under.
  ResourceRequest EstimateFootprint(const Request& request) const;

  /// Moves pending requests into the in-flight set while slots and budgets
  /// allow; permanently fails the head request when nothing in flight
  /// could ever release enough budget for it.
  void AdmitPending();

  /// Picks the next dispatch with the scheduler RNG and executes it.
  void DispatchOne();

  /// Runs one join/aggregate query on a fresh carved device.
  RequestOutcome ExecuteQuery(const InFlight& query);

  /// Runs the in-flight probe requests at `indices` as one batch.
  void ExecuteProbeBatch(const std::vector<size_t>& indices);

  sim::HwSpec hw_;
  ServiceConfig config_;
  MemoryArbiter arbiter_;
  std::unique_ptr<SharedBuild> shared_build_;
  util::Status init_status_;
  util::Rng rng_;
  /// Per-query equal shares of the post-shared-build budgets.
  uint64_t gpu_share_ = 0;
  uint64_t scratchpad_share_ = 0;

  std::deque<PendingRequest> pending_;
  std::vector<InFlight> inflight_;
  std::vector<RequestOutcome> outcomes_;
  /// tenant -> admission rejections.
  std::map<uint32_t, uint64_t> rejected_;
  uint64_t next_request_id_ = 1;
  double busy_seconds_ = 0.0;
  uint64_t dispatches_ = 0;
};

}  // namespace triton::serve

#endif  // TRITON_SERVE_JOIN_SERVICE_H_
