#include "exec/backend.h"

namespace triton::exec {

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kCpu:
      return "cpu";
    case Backend::kGpu:
      return "gpu";
    case Backend::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

util::StatusOr<Backend> ParseBackend(const std::string& name) {
  if (name == "cpu") return Backend::kCpu;
  if (name == "gpu") return Backend::kGpu;
  if (name == "hybrid") return Backend::kHybrid;
  return util::Status::InvalidArgument("unknown backend '" + name +
                                       "' (want cpu, gpu or hybrid)");
}

}  // namespace triton::exec
