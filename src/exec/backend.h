// Processor backend selection for join execution.
//
// The machine owns two join engines — the multi-core CPU radix join and the
// GPU Triton join — plus the co-processing scheduler that splits one join
// across both (src/sched/). Drivers, the serve layer and the benches select
// between them with this enum; the string forms back the --backend flag.

#ifndef TRITON_EXEC_BACKEND_H_
#define TRITON_EXEC_BACKEND_H_

#include <string>

#include "util/status.h"

namespace triton::exec {

/// Which processor(s) execute a join.
enum class Backend {
  /// Multi-core CPU radix join only (join::CpuRadixJoin).
  kCpu,
  /// GPU Triton join only (core::TritonJoin) — the default.
  kGpu,
  /// Cost-model-split co-processing across both (sched::CoProcessScheduler).
  kHybrid,
};

/// Stable lower-case name ("cpu", "gpu", "hybrid").
const char* BackendName(Backend backend);

/// Parses a --backend flag value; InvalidArgument on anything but the
/// three BackendName spellings.
util::StatusOr<Backend> ParseBackend(const std::string& name);

}  // namespace triton::exec

#endif  // TRITON_EXEC_BACKEND_H_
