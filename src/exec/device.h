// Simulated GPU device and kernel-execution context.
//
// Kernels in this codebase are ordinary C++ callables that receive a
// KernelContext. They perform real work on host memory (so their outputs
// are functionally correct) and report their memory traffic to the context,
// which packetizes interconnect accesses, replays addresses through the TLB
// simulator, and accumulates PerfCounters. Device::Launch wraps one kernel
// execution: it flushes the GPU TLB (the CUDA runtime does this on every
// launch), runs the kernel, evaluates the cost model, and appends a
// KernelRecord to the device trace used by the time-breakdown figures.
//
// Execution model: kernels decompose into independent thread blocks and run
// them through KernelContext::ForEachBlock, which executes blocks on the
// process-wide exec::BlockExecutor worker pool. Each block receives a
// private sub-context that shards the counters, defers every shared-TLB
// access into a replay log, and forks the sanitizer's shadow state; at the
// end of ForEachBlock the logs are replayed through the shared
// sim::TlbSimulator and all shards merged *in block order*, so results,
// counters and violation provenance are bit-identical for any thread count
// (the serial path uses the same code). Shared device state (TLB,
// allocator, trace) must never be mutated while blocks are in flight.

#ifndef TRITON_EXEC_DEVICE_H_
#define TRITON_EXEC_DEVICE_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/allocator.h"
#include "mem/buffer.h"
#include "sanitizer/sanitizer.h"
#include "sim/cost_model.h"
#include "sim/hw_spec.h"
#include "sim/packetizer.h"
#include "sim/perf_counters.h"
#include "sim/tlb.h"

namespace triton::exec {

class Device;

/// Launch-time parameters of one kernel.
struct KernelConfig {
  /// Kernel name for traces and time breakdowns ("part1", "join", ...).
  std::string name;
  /// Streaming multiprocessors allocated to this kernel (0 = all). The
  /// Triton join gives each pipeline stage half the SMs (Section 5.2).
  uint32_t sms = 0;
  /// Resident warps per SM this kernel sustains; bounds memory-level
  /// parallelism in the cost model. Pointer-chase microbenchmarks use 1.
  uint32_t occupancy_warps_per_sm = 64;
  /// If true, the kernel's random accesses are latency-bound rather than
  /// pipelined (single dependent chain per warp).
  bool latency_bound = false;
};

/// Result of one kernel launch.
struct KernelRecord {
  std::string name;
  sim::PerfCounters counters;
  sim::KernelTime time;
  uint32_t sms = 0;

  double Elapsed() const { return time.Elapsed(); }
};

/// Access-accounting interface handed to kernels.
///
/// The functional data accesses happen through raw pointers; kernels call
/// these methods to account the corresponding simulated traffic. Sequential
/// bulk traffic should use the *Seq methods (O(pages) accounting); per-tuple
/// random accesses use the *Rand methods (one TLB replay each).
class KernelContext : private sim::TlbEscalationSink {
 public:
  KernelContext(Device* device, const KernelConfig& config);

  // --- Parallel block execution ---

  /// Runs body(sub, b) for every block b in [0, num_blocks) on the global
  /// exec::BlockExecutor. Each block gets a private sub-context (sharded
  /// counters, deferred shared-TLB log, forked sanitizer state); when all
  /// blocks finish, the shards are reduced into this context strictly in
  /// block order, which makes counters and sanitizer provenance
  /// bit-identical to serial execution for any thread count. The body must
  /// route all accounting through its sub-context and must not touch the
  /// Device's allocator, trace, or shared TLB.
  void ForEachBlock(uint32_t num_blocks,
                    const std::function<void(KernelContext&, uint32_t)>& body);

  /// Escalation target for block-local TLBs (sim::BlockTlb): inside a
  /// ForEachBlock sub-context this logs the miss for ordered replay at
  /// reduction; on a top-level context it is the shared device TLB.
  sim::TlbEscalationSink* escalation_sink();

  // --- Sequential (streamed, perfectly coalesced) traffic ---

  /// Accounts a sequential read of [offset, offset+size) from `buf`.
  void ReadSeq(const mem::Buffer& buf, uint64_t offset, uint64_t size);
  /// Accounts a sequential write.
  void WriteSeq(const mem::Buffer& buf, uint64_t offset, uint64_t size);

  // --- Random (per-access) traffic ---

  /// Accounts one random read of `size` bytes at `offset`; the access is
  /// coalesced exactly as issued (size and alignment matter: Figure 6).
  void ReadRand(const mem::Buffer& buf, uint64_t offset, uint64_t size);
  /// Accounts one random write.
  void WriteRand(const mem::Buffer& buf, uint64_t offset, uint64_t size);

  /// Accounts a buffer flush: `size` bytes written contiguously at
  /// `offset`. Flushes of a multiple of the transaction size with matching
  /// alignment achieve perfect coalescing; others split (Figure 18b).
  /// Unlike WriteRand, the device TLB is replayed once per translation
  /// range the flush touches, so partial tail flushes and flushes that
  /// straddle a range boundary are accounted with their true size and
  /// alignment.
  void Flush(const mem::Buffer& buf, uint64_t offset, uint64_t size);

  // --- Traffic with caller-managed translation ---
  // Partitioning kernels model the per-SM L1 TLB / shared-L2-slice
  // hierarchy themselves (sim::BlockTlb); these variants account packets
  // and bytes only, leaving TLB replay to the caller.

  /// Accounts a write without TLB replay. `random` selects per-access
  /// packetization (true) vs bulk (false).
  void WriteNoTlb(const mem::Buffer& buf, uint64_t offset, uint64_t size,
                  bool random) {
    Account(buf.base_addr() + offset, size, buf.LocationOf(offset),
            /*is_write=*/true, random, /*replay_tlb=*/false);
  }

  /// Accounts a read without TLB replay.
  void ReadNoTlb(const mem::Buffer& buf, uint64_t offset, uint64_t size,
                 bool random) {
    Account(buf.base_addr() + offset, size, buf.LocationOf(offset),
            /*is_write=*/false, random, /*replay_tlb=*/false);
  }

  // --- Checked functional access (DeviceSanitizer) ---
  //
  // Kernels that want their functional stores audited against their
  // accounted traffic go through these instead of raw pointers; with the
  // sanitizer disabled they compile down to the raw access. The raw-pointer
  // path remains available for benches.

  /// Stores `value` at element `index` of `buf` viewed as a T array and
  /// records the write in the sanitizer's shadow map.
  template <typename T>
  void Store(mem::Buffer& buf, uint64_t index, const T& value) {
    const uint64_t offset = index * sizeof(T);
    DCHECK_LE(offset + sizeof(T), buf.size());
    *reinterpret_cast<T*>(buf.data() + offset) = value;
    if (san_ != nullptr) {
      san_->RecordFunctionalWrite(buf.base_addr() + offset, sizeof(T));
    }
  }

  /// Bulk Store: copies `count` elements from `src` into `buf` starting at
  /// element `index` and records the whole run in the sanitizer's shadow
  /// map in one shot. The shadow RangeSet merges adjacent intervals, so
  /// one run record is identical to `count` per-element records — this is
  /// the fast path's bulk primitive (see util/fastpath.h).
  template <typename T>
  void StoreRun(mem::Buffer& buf, uint64_t index, const T* src,
                uint64_t count) {
    if (count == 0) return;
    const uint64_t offset = index * sizeof(T);
    const uint64_t size = count * sizeof(T);
    DCHECK_LE(offset + size, buf.size());
    std::memcpy(buf.data() + offset, src, size);
    if (san_ != nullptr) {
      san_->RecordFunctionalWrite(buf.base_addr() + offset, size);
    }
  }

  /// Loads element `index` of `buf` viewed as a T array (bounds-checked).
  template <typename T>
  T Load(const mem::Buffer& buf, uint64_t index) const {
    const uint64_t offset = index * sizeof(T);
    DCHECK_LE(offset + sizeof(T), buf.size());
    return *reinterpret_cast<const T*>(buf.data() + offset);
  }

  /// The device's sanitizer, or null when checking is disabled. Kernels
  /// hand it to sanitizer::ScratchpadShadow (which accepts null).
  sanitizer::DeviceSanitizer* sanitizer() { return san_; }

  /// Sets the thread-block provenance for sanitizer reports.
  void SetSanitizerBlock(uint32_t block) {
    if (san_ != nullptr) san_->set_block(block);
  }

  /// Sets the warp/partition provenance for sanitizer reports (call before
  /// accounting a flush so violations carry the flush site).
  void SetSanitizerFlushSite(uint32_t warp, int64_t partition) {
    if (san_ != nullptr) {
      san_->set_warp(warp);
      san_->set_partition(partition);
    }
  }

  /// Declares the launch's input size and minimum bytes-per-tuple for the
  /// sanitizer's counter lint.
  void ExpectTuples(uint64_t tuples, uint64_t min_bytes_per_tuple) {
    if (san_ != nullptr) san_->ExpectTuples(tuples, min_bytes_per_tuple);
  }

  // --- Execution accounting ---

  /// Charges `n` warp-instruction issue slots.
  void Charge(uint64_t n) { counters_.issue_slots += n; }

  /// Marks `n` tuples as processed by this kernel.
  void AddTuples(uint64_t n) { counters_.tuples += n; }

  /// Scratchpad capacity available to one thread block.
  uint64_t scratchpad_bytes() const;

  /// Warp width of the simulated GPU.
  uint32_t warp_size() const;

  /// Total latency of the random accesses accounted so far (for
  /// latency-bound kernels) and their count.
  double random_latency_sum() const { return random_latency_sum_; }
  uint64_t random_accesses() const { return random_accesses_; }

  sim::PerfCounters& counters() { return counters_; }
  const sim::HwSpec& hw() const;

 private:
  friend class Device;

  /// One deferred shared-TLB access, replayed in block order at reduction.
  enum class TlbReplayKind : uint8_t {
    /// Sequential range translation (ReadSeq/WriteSeq); latency discarded.
    kRange,
    /// Random access or flush replay; latency accumulated at replay.
    kLatency,
    /// Full miss escalated by a block-local sim::BlockTlb.
    kEscalation,
  };
  struct TlbReplayEntry {
    uint64_t addr;
    sim::PageLocation loc;
    TlbReplayKind kind;
  };

  /// Routes one access of `size` bytes at absolute address `addr` located
  /// in `loc`. `replay_tlb` controls whether this access replays a device
  /// L2 TLB lookup (random accesses through the public Read/Write methods
  /// do; partitioners with their own BlockTlb do not).
  void Account(uint64_t addr, uint64_t size, sim::PageLocation loc,
               bool is_write, bool is_random, bool replay_tlb = true);

  /// Performs (or, in a deferred sub-context, logs) one shared-TLB access.
  /// `with_latency` accumulates the outcome latency into the random-access
  /// sums (random accesses and flushes do; sequential walks do not).
  void SharedTlbAccess(uint64_t addr, sim::PageLocation loc,
                       bool with_latency);

  /// Bulk form: one shared-TLB access per translation range covered by the
  /// byte run [addr, addr + size), in ascending range order. Outside a
  /// deferring sub-context this goes through TlbSimulator::TranslateRun in
  /// one call; inside, one log entry per range is appended — either way
  /// the replayed sequence equals a per-range SharedTlbAccess loop.
  void SharedTlbRun(uint64_t addr, uint64_t size, sim::PageLocation loc,
                    bool with_latency);

  /// Reinitializes this context as a deferring sub-context of `device`,
  /// keeping allocated log capacity (sub-context recycling, see the
  /// context arena in device.cc).
  void ResetForBlock(Device* device, const KernelConfig& config);

  /// sim::TlbEscalationSink: logs a block-local TLB miss for ordered
  /// replay. Only reachable on deferred sub-contexts via escalation_sink().
  sim::TranslationResult EscalateMiss(uint64_t addr, sim::PageLocation loc,
                                      sim::PerfCounters* counters) override;

  /// Replays this sub-context's deferred log through the shared device TLB
  /// (called by the parent during the block-ordered reduction).
  void ReplayDeferredLog();

  Device* device_;
  KernelConfig config_;
  sanitizer::DeviceSanitizer* san_ = nullptr;
  sim::PerfCounters counters_;
  double random_latency_sum_ = 0.0;
  uint64_t random_accesses_ = 0;
  /// True on ForEachBlock sub-contexts: shared-TLB accesses go to the log.
  bool defer_tlb_ = false;
  std::vector<TlbReplayEntry> tlb_log_;
  /// Owned sanitizer fork backing san_ on sub-contexts.
  std::unique_ptr<sanitizer::DeviceSanitizer> san_fork_;
};

/// The simulated GPU.
class Device {
 public:
  /// `sanitize` controls the DeviceSanitizer for this device; the default
  /// follows sanitizer::DefaultEnabled() (on in tests, off in benches,
  /// overridable with the TRITON_SANITIZER environment variable).
  explicit Device(const sim::HwSpec& hw);
  Device(const sim::HwSpec& hw, bool sanitize);
  ~Device();

  /// Runs `body` as one kernel and returns its record. The GPU TLB is
  /// flushed before the kernel starts. With the sanitizer enabled, the
  /// launch's shadow state is checked when `body` returns.
  KernelRecord Launch(const KernelConfig& config,
                      const std::function<void(KernelContext&)>& body);

  /// Appends an externally-computed record (CPU-side phases use this so
  /// they appear in the same trace).
  void Record(const KernelRecord& record) { trace_.push_back(record); }

  mem::Allocator& allocator() { return allocator_; }

  /// The device's checking layer, or null when disabled.
  sanitizer::DeviceSanitizer* sanitizer() { return san_.get(); }

  const sim::HwSpec& hw() const { return hw_; }
  const sim::CostModel& cost_model() const { return cost_model_; }
  sim::TlbSimulator& tlb() { return tlb_; }
  const sim::Packetizer& packetizer() const { return packetizer_; }

  /// Launch trace since the last ClearTrace().
  const std::vector<KernelRecord>& trace() const { return trace_; }
  void ClearTrace() { trace_.clear(); }

  /// Sum of elapsed times over the trace (no overlap).
  double TraceElapsed() const;

 private:
  friend class KernelContext;

  sim::HwSpec hw_;
  sim::CostModel cost_model_;
  sim::Packetizer packetizer_;
  sim::TlbSimulator tlb_;
  mem::Allocator allocator_;
  std::unique_ptr<sanitizer::DeviceSanitizer> san_;
  std::vector<KernelRecord> trace_;
};

}  // namespace triton::exec

#endif  // TRITON_EXEC_DEVICE_H_
