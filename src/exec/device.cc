#include "exec/device.h"

#include <algorithm>

#include "exec/block_executor.h"
#include "util/logging.h"

namespace triton::exec {

KernelContext::KernelContext(Device* device, const KernelConfig& config)
    : device_(device), config_(config), san_(device->san_.get()) {}

uint64_t KernelContext::scratchpad_bytes() const {
  return device_->hw_.gpu.scratchpad_bytes;
}

uint32_t KernelContext::warp_size() const {
  return device_->hw_.gpu.warp_size;
}

const sim::HwSpec& KernelContext::hw() const { return device_->hw_; }

void KernelContext::Account(uint64_t addr, uint64_t size,
                            sim::PageLocation loc, bool is_write,
                            bool is_random, bool replay_tlb) {
  if (size == 0) return;
  if (san_ != nullptr) san_->RecordAccounted(addr, size, is_write);
  if (loc == sim::PageLocation::kGpuMem) {
    if (is_write) {
      counters_.gpu_mem_write += size;
      if (is_random) counters_.gpu_mem_random_write += size;
    } else {
      counters_.gpu_mem_read += size;
    }
  } else {
    // CPU-memory access: crosses the interconnect.
    sim::TxnStats txn =
        is_random ? device_->packetizer_.Access(addr, size, is_write)
                  : device_->packetizer_.Bulk(addr, size, is_write);
    if (is_write) {
      counters_.link_write_payload += txn.payload;
      counters_.link_write_physical += txn.physical;
      counters_.link_write_txns += txn.txns;
    } else {
      counters_.link_read_payload += txn.payload;
      counters_.link_read_physical += txn.physical;
      counters_.link_read_txns += txn.txns;
    }
  }
  if (is_random && replay_tlb) {
    SharedTlbAccess(addr, loc, /*with_latency=*/true);
  }
}

void KernelContext::SharedTlbAccess(uint64_t addr, sim::PageLocation loc,
                                    bool with_latency) {
  if (defer_tlb_) {
    tlb_log_.push_back({addr, loc,
                        with_latency ? TlbReplayKind::kLatency
                                     : TlbReplayKind::kRange});
    return;
  }
  auto tr = device_->tlb_.Access(addr, loc, &counters_);
  if (with_latency) {
    random_latency_sum_ += tr.latency;
    ++random_accesses_;
  }
}

void KernelContext::SharedTlbRun(uint64_t addr, uint64_t size,
                                 sim::PageLocation loc, bool with_latency) {
  DCHECK_GT(size, 0u);
  if (defer_tlb_) {
    const uint64_t range = device_->hw_.tlb.l2_entry_range;
    const TlbReplayKind kind =
        with_latency ? TlbReplayKind::kLatency : TlbReplayKind::kRange;
    for (uint64_t r = addr / range; r <= (addr + size - 1) / range; ++r) {
      tlb_log_.push_back({r * range, loc, kind});
    }
    return;
  }
  sim::TranslationRunResult run =
      device_->tlb_.TranslateRun(addr, size, loc, &counters_);
  if (with_latency) {
    random_latency_sum_ += run.latency_sum;
    random_accesses_ += run.accesses;
  }
}

void KernelContext::ResetForBlock(Device* device, const KernelConfig& config) {
  device_ = device;
  config_ = config;
  san_ = nullptr;
  san_fork_.reset();
  counters_ = sim::PerfCounters{};
  random_latency_sum_ = 0.0;
  random_accesses_ = 0;
  defer_tlb_ = true;
  tlb_log_.clear();
}

sim::TranslationResult KernelContext::EscalateMiss(uint64_t addr,
                                                   sim::PageLocation loc,
                                                   sim::PerfCounters* counters) {
  // Only deferred sub-contexts hand themselves out as escalation sinks;
  // the log replays through TlbSimulator::EscalateMiss at reduction. The
  // counters pointer is this context's own shard, so the increments can
  // wait for the replay too. Callers discard the result (see
  // TlbEscalationSink).
  DCHECK(defer_tlb_);
  DCHECK_EQ(counters, &counters_);
  (void)counters;
  tlb_log_.push_back({addr, loc, TlbReplayKind::kEscalation});
  return sim::TranslationResult{};
}

sim::TlbEscalationSink* KernelContext::escalation_sink() {
  if (defer_tlb_) return this;
  return &device_->tlb_;
}

void KernelContext::ReplayDeferredLog() {
  for (const auto& e : tlb_log_) {
    switch (e.kind) {
      case TlbReplayKind::kRange:
        device_->tlb_.Access(e.addr, e.loc, &counters_);
        break;
      case TlbReplayKind::kLatency: {
        auto tr = device_->tlb_.Access(e.addr, e.loc, &counters_);
        random_latency_sum_ += tr.latency;
        ++random_accesses_;
        break;
      }
      case TlbReplayKind::kEscalation:
        device_->tlb_.EscalateMiss(e.addr, e.loc, &counters_);
        break;
    }
  }
  tlb_log_.clear();
}

void KernelContext::ForEachBlock(
    uint32_t num_blocks,
    const std::function<void(KernelContext&, uint32_t)>& body) {
  CHECK(!defer_tlb_) << "ForEachBlock cannot nest inside a block";
  // Sub-context arena: one frame per ForEachBlock, recycled across
  // launches. This mirrors the mem::Allocator BeginArena/EndArena frame
  // discipline for *host* objects — a launch used to heap-allocate one
  // KernelContext (plus its replay-log vector) per block, which dominated
  // small-kernel host time. Rewinding the simulated bump pointer instead
  // would change addresses and therefore modeled TLB physics; recycling
  // host contexts is invisible to the model. Thread-local so concurrent
  // launches on different devices never share a frame; contexts are fully
  // reinitialized (ResetForBlock) before each use and drop their sanitizer
  // forks at frame close so nothing outlives the device.
  //
  // Worker threads must reach the *launching* thread's frame, so the
  // dispatch lambda goes through an explicit pointer — a thread_local name
  // inside the lambda would resolve to each worker's own (empty) arena.
  thread_local std::vector<std::unique_ptr<KernelContext>> arena_tls;
  std::vector<std::unique_ptr<KernelContext>>& arena = arena_tls;
  if (arena.size() < num_blocks) {
    arena.reserve(num_blocks);
    while (arena.size() < num_blocks) {
      arena.push_back(std::make_unique<KernelContext>(device_, config_));
    }
  }
  for (uint32_t b = 0; b < num_blocks; ++b) {
    KernelContext& sub = *arena[b];
    sub.ResetForBlock(device_, config_);
    if (san_ != nullptr) {
      sub.san_fork_ = san_->Fork();
      sub.san_ = sub.san_fork_.get();
    }
  }
  const std::unique_ptr<KernelContext>* subs = arena.data();
  BlockExecutor::Global().Run(
      num_blocks, [subs, &body](uint32_t b) { body(*subs[b], b); });
  // Deterministic reduction: replay each block's shared-TLB log and merge
  // its counter shard and sanitizer state, strictly in block order. This is
  // the only place shared TLB state advances for these blocks, and the
  // replay order equals the serial execution order, so every counter and
  // latency is bit-identical to a single-threaded run.
  for (uint32_t b = 0; b < num_blocks; ++b) {
    KernelContext& sub = *arena[b];
    sub.ReplayDeferredLog();
    counters_.Merge(sub.counters_);
    random_latency_sum_ += sub.random_latency_sum_;
    random_accesses_ += sub.random_accesses_;
    if (san_ != nullptr) san_->MergeBlock(*sub.san_fork_);
    sub.san_fork_.reset();
    sub.san_ = nullptr;
  }
}

void KernelContext::ReadSeq(const mem::Buffer& buf, uint64_t offset,
                            uint64_t size) {
  if (size == 0) return;
  DCHECK_LE(offset + size, buf.size());
  // Walk the range page by page so interleaved placements split correctly;
  // runs of same-location pages are accounted in one shot. Translations are
  // replayed once per TLB entry range (sequential walks coalesce).
  const uint64_t page = buf.page_bytes();
  uint64_t pos = offset;
  uint64_t end = offset + size;
  while (pos < end) {
    sim::PageLocation loc = buf.LocationOf(pos);
    uint64_t run_end = pos;
    while (run_end < end && buf.LocationOf(run_end) == loc) {
      uint64_t page_end = (run_end / page + 1) * page;
      run_end = std::min(end, page_end);
      if (run_end < end && buf.LocationOf(run_end) != loc) break;
    }
    Account(buf.base_addr() + pos, run_end - pos, loc, /*is_write=*/false,
            /*is_random=*/false);
    // One translation per entry range touched by the run.
    SharedTlbRun(buf.base_addr() + pos, run_end - pos, loc,
                 /*with_latency=*/false);
    pos = run_end;
  }
}

void KernelContext::WriteSeq(const mem::Buffer& buf, uint64_t offset,
                             uint64_t size) {
  if (size == 0) return;
  DCHECK_LE(offset + size, buf.size());
  const uint64_t page = buf.page_bytes();
  uint64_t pos = offset;
  uint64_t end = offset + size;
  while (pos < end) {
    sim::PageLocation loc = buf.LocationOf(pos);
    uint64_t run_end = pos;
    while (run_end < end && buf.LocationOf(run_end) == loc) {
      uint64_t page_end = (run_end / page + 1) * page;
      run_end = std::min(end, page_end);
      if (run_end < end && buf.LocationOf(run_end) != loc) break;
    }
    Account(buf.base_addr() + pos, run_end - pos, loc, /*is_write=*/true,
            /*is_random=*/false);
    SharedTlbRun(buf.base_addr() + pos, run_end - pos, loc,
                 /*with_latency=*/false);
    pos = run_end;
  }
}

void KernelContext::ReadRand(const mem::Buffer& buf, uint64_t offset,
                             uint64_t size) {
  DCHECK_LE(offset + size, buf.size());
  Account(buf.base_addr() + offset, size, buf.LocationOf(offset),
          /*is_write=*/false, /*is_random=*/true);
}

void KernelContext::WriteRand(const mem::Buffer& buf, uint64_t offset,
                              uint64_t size) {
  DCHECK_LE(offset + size, buf.size());
  Account(buf.base_addr() + offset, size, buf.LocationOf(offset),
          /*is_write=*/true, /*is_random=*/true);
}

void KernelContext::Flush(const mem::Buffer& buf, uint64_t offset,
                          uint64_t size) {
  if (size == 0) return;
  DCHECK_LE(offset + size, buf.size());
  const uint64_t addr = buf.base_addr() + offset;
  const sim::PageLocation loc = buf.LocationOf(offset);
  // Packetize the flush as one contiguous random write (the packetizer
  // splits it at cacheline boundaries, so a partial tail smaller than the
  // transaction size is charged its true payload plus the byte-enable
  // extension)...
  Account(addr, size, loc, /*is_write=*/true, /*is_random=*/true,
          /*replay_tlb=*/false);
  // ...but replay the TLB once per translation range touched: a flush that
  // straddles a range boundary needs both translations, which the plain
  // WriteRand path (one replay at the start address) under-counts. Inside
  // ForEachBlock the replay is deferred to the block-ordered reduction, so
  // a flush never mutates shared TLB state mid-kernel.
  SharedTlbRun(addr, size, loc, /*with_latency=*/true);
}

Device::Device(const sim::HwSpec& hw)
    : Device(hw, sanitizer::DefaultEnabled()) {}

Device::Device(const sim::HwSpec& hw, bool sanitize)
    : hw_(hw),
      cost_model_(hw),
      packetizer_(hw.link),
      tlb_(hw.tlb),
      allocator_(hw) {
  if (sanitize) {
    san_ = std::make_unique<sanitizer::DeviceSanitizer>();
    allocator_.set_observer(san_.get());
  }
}

Device::~Device() {
  if (san_ == nullptr) return;
  // Unconsumed violations are programming errors: tests that expect them
  // must collect them with TakeViolations().
  for (const auto& v : san_->violations()) {
    LOG(ERROR) << "DeviceSanitizer: " << v.message;
  }
  CHECK(san_->violations().empty())
      << san_->violations().size() << " unconsumed sanitizer violation(s), "
      << "first: " << san_->violations().front().message;
  allocator_.set_observer(nullptr);
}

KernelRecord Device::Launch(const KernelConfig& config,
                            const std::function<void(KernelContext&)>& body) {
  KernelConfig cfg = config;
  if (cfg.sms == 0) cfg.sms = hw_.gpu.num_sms;
  CHECK_LE(cfg.sms, hw_.gpu.num_sms);

  // The CUDA runtime flushes GPU TLBs before each kernel launch.
  tlb_.FlushGpuTlb();

  if (san_ != nullptr) san_->BeginLaunch(cfg.name);
  KernelContext ctx(this, cfg);
  body(ctx);
  if (san_ != nullptr) san_->EndLaunch(ctx.counters_);

  KernelRecord record;
  record.name = cfg.name;
  record.counters = ctx.counters_;
  record.sms = cfg.sms;
  double avg_latency = 0.0;
  uint64_t latency_accesses = 0;
  if (cfg.latency_bound && ctx.random_accesses_ > 0) {
    avg_latency = ctx.random_latency_sum_ /
                  static_cast<double>(ctx.random_accesses_);
    latency_accesses = ctx.random_accesses_;
  }
  record.time = cost_model_.Evaluate(ctx.counters_, cfg.sms, avg_latency,
                                     latency_accesses,
                                     cfg.occupancy_warps_per_sm);
  trace_.push_back(record);
  return record;
}

double Device::TraceElapsed() const {
  double total = 0.0;
  for (const auto& r : trace_) total += r.Elapsed();
  return total;
}

}  // namespace triton::exec
