#include "exec/block_executor.h"

#include <cstdlib>
#include <utility>

#include "util/logging.h"

namespace triton::exec {

namespace {

uint32_t DefaultThreads() {
  const char* env = std::getenv("TRITON_THREADS");
  if (env != nullptr && env[0] != '\0') {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<uint32_t>(v);
  }
  uint32_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

BlockExecutor& BlockExecutor::Global() {
  static BlockExecutor* executor = new BlockExecutor();
  return *executor;
}

BlockExecutor::BlockExecutor() { SetThreads(0); }

BlockExecutor::~BlockExecutor() { StopWorkers(); }

void BlockExecutor::SetThreads(uint32_t threads) {
  if (threads == 0) threads = DefaultThreads();
  if (threads == threads_ &&
      (threads == 1 || workers_.size() == threads - 1)) {
    return;
  }
  StopWorkers();
  threads_ = threads;
  // The calling thread participates in Run, so the pool holds one fewer
  // worker than the requested parallelism.
  if (threads_ > 1) StartWorkers(threads_ - 1);
}

void BlockExecutor::StartWorkers(uint32_t workers) {
  shutdown_ = false;
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void BlockExecutor::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

std::pair<uint32_t, std::exception_ptr> BlockExecutor::DrainBatch(
    const std::function<void(uint32_t)>& fn, uint32_t num_blocks) {
  uint32_t done = 0;
  std::exception_ptr error;
  while (true) {
    uint32_t b = next_block_.fetch_add(1, std::memory_order_relaxed);
    if (b >= num_blocks) break;
    try {
      fn(b);
    } catch (...) {
      if (error == nullptr) error = std::current_exception();
    }
    ++done;
  }
  return {done, error};
}

void BlockExecutor::WorkerLoop() {
  uint64_t seen_batch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock,
                  [&] { return shutdown_ || batch_id_ != seen_batch; });
    if (shutdown_) return;
    seen_batch = batch_id_;
    if (batch_fn_ == nullptr) continue;  // batch already fully reduced
    const std::function<void(uint32_t)>* fn = batch_fn_;
    const uint32_t num_blocks = batch_blocks_;
    ++active_workers_;
    lock.unlock();
    auto [done, error] = DrainBatch(*fn, num_blocks);
    lock.lock();
    --active_workers_;
    blocks_done_ += done;
    if (error != nullptr && first_error_ == nullptr) first_error_ = error;
    if (active_workers_ == 0 && blocks_done_ == batch_blocks_) {
      done_cv_.notify_all();
    }
  }
}

void BlockExecutor::Run(uint32_t num_blocks,
                        const std::function<void(uint32_t)>& fn) {
  if (num_blocks == 0) return;
  if (threads_ == 1 || num_blocks == 1 || workers_.empty()) {
    for (uint32_t b = 0; b < num_blocks; ++b) fn(b);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    CHECK(batch_fn_ == nullptr) << "BlockExecutor::Run is not reentrant";
    batch_fn_ = &fn;
    batch_blocks_ = num_blocks;
    blocks_done_ = 0;
    first_error_ = nullptr;
    next_block_.store(0, std::memory_order_relaxed);
    ++batch_id_;
  }
  work_cv_.notify_all();
  auto [done, error] = DrainBatch(fn, num_blocks);
  std::exception_ptr batch_error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    blocks_done_ += done;
    if (error != nullptr && first_error_ == nullptr) first_error_ = error;
    done_cv_.wait(lock, [&] {
      return blocks_done_ == batch_blocks_ && active_workers_ == 0;
    });
    batch_fn_ = nullptr;
    batch_blocks_ = 0;
    batch_error = std::exchange(first_error_, nullptr);
  }
  if (batch_error != nullptr) std::rethrow_exception(batch_error);
}

}  // namespace triton::exec
