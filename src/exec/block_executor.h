// Host-side thread pool that runs simulated thread blocks concurrently.
//
// Every kernel in this codebase decomposes into independent thread blocks
// (one input chunk and one output slice set per block); the executor maps
// those blocks onto persistent host worker threads. Determinism is the
// contract: blocks may run in any order on any thread, so they must touch
// only per-block state (KernelContext::ForEachBlock hands each block a
// private sub-context whose shared-device effects — TLB replay, sanitizer
// shadow state, counters — are reduced in block order afterwards).
//
// The pool size comes from, in decreasing precedence: SetThreads() (the
// --threads bench flag), the TRITON_THREADS environment variable, and
// std::thread::hardware_concurrency(). One thread means inline serial
// execution with zero synchronization.

#ifndef TRITON_EXEC_BLOCK_EXECUTOR_H_
#define TRITON_EXEC_BLOCK_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace triton::exec {

/// Persistent worker pool; see file comment.
class BlockExecutor {
 public:
  /// The process-wide executor used by KernelContext::ForEachBlock.
  static BlockExecutor& Global();

  BlockExecutor();
  ~BlockExecutor();

  BlockExecutor(const BlockExecutor&) = delete;
  BlockExecutor& operator=(const BlockExecutor&) = delete;

  /// Resizes the pool to `threads` workers (0 restores the environment /
  /// hardware default). Must not be called while Run is active.
  void SetThreads(uint32_t threads);

  /// Current pool size (>= 1; includes the calling thread).
  uint32_t threads() const { return threads_; }

  /// Runs fn(b) for every b in [0, num_blocks). Blocks are claimed from an
  /// atomic counter, so assignment to threads is nondeterministic — fn must
  /// only touch per-block state. Returns when all blocks finished; the
  /// calling thread participates. The first exception thrown by any block
  /// is rethrown here after all workers have drained.
  void Run(uint32_t num_blocks, const std::function<void(uint32_t)>& fn);

 private:
  void WorkerLoop();
  /// Claims and runs blocks of one batch; returns (blocks run, first
  /// exception).
  std::pair<uint32_t, std::exception_ptr> DrainBatch(
      const std::function<void(uint32_t)>& fn, uint32_t num_blocks);
  void StopWorkers();
  void StartWorkers(uint32_t workers);

  uint32_t threads_ = 1;
  std::vector<std::thread> workers_;

  // All fields below are guarded by mu_ except next_block_ (atomic claim
  // counter, reset under mu_ between batches).
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  /// Incremented per Run() batch; workers wake when it changes.
  uint64_t batch_id_ = 0;
  uint32_t batch_blocks_ = 0;
  const std::function<void(uint32_t)>* batch_fn_ = nullptr;
  std::atomic<uint32_t> next_block_{0};
  uint32_t blocks_done_ = 0;
  /// Workers currently inside DrainBatch; Run waits for zero so a straggler
  /// cannot leak into the next batch's claim counter.
  uint32_t active_workers_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace triton::exec

#endif  // TRITON_EXEC_BLOCK_EXECUTOR_H_
