#include "sim/packetizer.h"

#include <algorithm>

#include "util/bits.h"

namespace triton::sim {

void Packetizer::AddTxn(uint64_t payload_bytes, bool is_write,
                        TxnStats* out) const {
  out->txns += 1;
  out->payload += payload_bytes;
  if (is_write) {
    // Writes move data in 32-byte sectors like reads; partial-cacheline
    // writes additionally need the byte-enable header extension so the
    // receiver knows which payload bytes are valid — which is why the
    // paper measures small reads 44-74% faster than small writes.
    uint64_t padded =
        std::max<uint64_t>(payload_bytes, spec_.min_read_payload);
    uint64_t physical = padded + spec_.header_bytes;
    if (payload_bytes < spec_.max_sm_payload) {
      physical += spec_.byte_enable_bytes;
    }
    out->physical += physical;
  } else {
    uint64_t padded = std::max<uint64_t>(payload_bytes, spec_.min_read_payload);
    out->physical += padded + spec_.header_bytes;
  }
}

TxnStats Packetizer::Access(uint64_t addr, uint64_t size,
                            bool is_write) const {
  TxnStats out;
  if (size == 0) return out;
  const uint64_t line = spec_.alignment;
  uint64_t pos = addr;
  uint64_t remaining = size;
  while (remaining > 0) {
    uint64_t line_end = util::AlignDown(pos, line) + line;
    uint64_t chunk = std::min(remaining, line_end - pos);
    // One transaction per (partial) cacheline touched; payload capped at the
    // SM transaction size.
    uint64_t payload = std::min<uint64_t>(chunk, spec_.max_sm_payload);
    AddTxn(payload, is_write, &out);
    pos += chunk;
    remaining -= chunk;
  }
  return out;
}

TxnStats Packetizer::Bulk(uint64_t addr, uint64_t size, bool is_write) const {
  TxnStats out;
  if (size == 0) return out;
  const uint64_t line = spec_.alignment;
  const uint64_t end = addr + size;

  // Ragged head: partial cacheline before the first boundary.
  if (addr % line != 0) {
    uint64_t head_end = std::min(end, util::AlignUp(addr, line));
    AddTxn(head_end - addr, is_write, &out);
    addr = head_end;
    if (addr >= end) return out;
  }

  // Ragged tail: partial cacheline after the last boundary.
  uint64_t tail_start = util::AlignDown(end, line);
  uint64_t tail = end - tail_start;

  // Full cachelines in the interior, accounted in O(1).
  uint64_t full_bytes = tail_start - addr;
  uint64_t full_lines = full_bytes / line;
  if (full_lines > 0) {
    out.txns += full_lines;
    out.payload += full_bytes;
    out.physical += full_bytes + full_lines * spec_.header_bytes;
  }
  if (tail > 0) {
    AddTxn(tail, is_write, &out);
  }
  return out;
}

TxnStats Packetizer::Dma(uint64_t size, bool is_write) const {
  TxnStats out;
  if (size == 0) return out;
  const uint64_t unit = spec_.max_dma_payload;
  uint64_t full = size / unit;
  out.txns += full;
  out.payload += full * unit;
  out.physical += full * (unit + spec_.header_bytes);
  uint64_t rest = size % unit;
  if (rest > 0) AddTxn(rest, is_write, &out);
  return out;
}

}  // namespace triton::sim
