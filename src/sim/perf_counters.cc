#include "sim/perf_counters.h"

#include <cstdio>

#include "util/units.h"

namespace triton::sim {

void PerfCounters::Merge(const PerfCounters& other) {
  gpu_mem_read += other.gpu_mem_read;
  gpu_mem_write += other.gpu_mem_write;
  gpu_mem_random_write += other.gpu_mem_random_write;
  link_read_payload += other.link_read_payload;
  link_read_physical += other.link_read_physical;
  link_write_payload += other.link_write_payload;
  link_write_physical += other.link_write_physical;
  link_read_txns += other.link_read_txns;
  link_write_txns += other.link_write_txns;
  cpu_mem_read += other.cpu_mem_read;
  cpu_mem_write += other.cpu_mem_write;
  gpu_tlb_lookups += other.gpu_tlb_lookups;
  gpu_tlb_misses += other.gpu_tlb_misses;
  l3_hits += other.l3_hits;
  iommu_requests += other.iommu_requests;
  iommu_walks += other.iommu_walks;
  issue_slots += other.issue_slots;
  tuples += other.tuples;
}

std::string PerfCounters::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "PerfCounters{\n"
      "  gpu_mem r/w:        %s / %s\n"
      "  link read:          %s payload, %s physical, %llu txns\n"
      "  link write:         %s payload, %s physical, %llu txns\n"
      "  cpu_mem r/w:        %s / %s\n"
      "  gpu tlb:            %llu lookups, %llu misses, %llu L3* hits\n"
      "  iommu:              %llu requests, %llu walks\n"
      "  issue slots:        %llu\n"
      "  tuples:             %llu\n"
      "}",
      util::FormatBytes(gpu_mem_read).c_str(),
      util::FormatBytes(gpu_mem_write).c_str(),
      util::FormatBytes(link_read_payload).c_str(),
      util::FormatBytes(link_read_physical).c_str(),
      static_cast<unsigned long long>(link_read_txns),
      util::FormatBytes(link_write_payload).c_str(),
      util::FormatBytes(link_write_physical).c_str(),
      static_cast<unsigned long long>(link_write_txns),
      util::FormatBytes(cpu_mem_read).c_str(),
      util::FormatBytes(cpu_mem_write).c_str(),
      static_cast<unsigned long long>(gpu_tlb_lookups),
      static_cast<unsigned long long>(gpu_tlb_misses),
      static_cast<unsigned long long>(l3_hits),
      static_cast<unsigned long long>(iommu_requests),
      static_cast<unsigned long long>(iommu_walks),
      static_cast<unsigned long long>(issue_slots),
      static_cast<unsigned long long>(tuples));
  return buf;
}

}  // namespace triton::sim
