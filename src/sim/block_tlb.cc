#include "sim/block_tlb.h"

#include <algorithm>

namespace triton::sim {

BlockTlb::BlockTlb(const TlbSpec& spec, uint32_t resident_blocks,
                   TlbEscalationSink* shared_iotlb)
    : spec_(spec),
      l1_(static_cast<uint64_t>(spec.l1_entries) * spec.l2_entry_range,
          spec.l2_entry_range, /*ways=*/4),
      l2_slice_(std::max<uint64_t>(
                    spec.l2_coverage / std::max(resident_blocks, 1u),
                    spec.l2_entry_range),
                spec.l2_entry_range, /*ways=*/4),
      l3_slice_(std::max<uint64_t>(
                    spec.iotlb_coverage / std::max(resident_blocks, 1u),
                    spec.l2_entry_range),
                spec.l2_entry_range, /*ways=*/4),
      shared_iotlb_(shared_iotlb) {}

TranslationResult BlockTlb::Access(uint64_t addr, PageLocation loc,
                                   PerfCounters* counters) {
  counters->gpu_tlb_lookups += 1;
  if (l1_.Access(addr)) {
    TranslationResult r;
    r.l2_hit = true;
    r.latency = loc == PageLocation::kGpuMem ? spec_.gpu_mem_hit_latency
                                             : spec_.cpu_mem_hit_latency;
    return r;
  }
  if (l2_slice_.Access(addr)) {
    TranslationResult r;
    r.l2_hit = true;
    r.latency = loc == PageLocation::kGpuMem ? spec_.gpu_mem_hit_latency
                                             : spec_.cpu_mem_hit_latency;
    return r;
  }
  if (loc == PageLocation::kCpuMem && l3_slice_.Access(addr)) {
    TranslationResult r;
    counters->gpu_tlb_misses += 1;
    counters->l3_hits += 1;
    r.iotlb_hit = true;
    r.latency = spec_.cpu_mem_iotlb_latency;
    return r;
  }
  return shared_iotlb_->EscalateMiss(addr, loc, counters);
}

TranslationRunResult BlockTlb::AccessRun(uint64_t addr, uint64_t size,
                                         PageLocation loc,
                                         PerfCounters* counters) {
  TranslationRunResult run;
  const uint64_t range = spec_.l2_entry_range;
  for (uint64_t r = addr / range; r <= (addr + size - 1) / range; ++r) {
    TranslationResult tr = Access(r * range, loc, counters);
    run.latency_sum += tr.latency;
    ++run.accesses;
  }
  return run;
}

void BlockTlb::Flush() {
  l1_.Flush();
  l2_slice_.Flush();
  l3_slice_.Flush();
}

}  // namespace triton::sim
