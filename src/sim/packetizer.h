// NVLink 2.0 packet accounting (Sections 2.1 and 3.4.1 of the paper).
//
// The interconnect moves data in transactions of up to 128 bytes (SM path)
// or 256 bytes (DMA copy engines), aligned to 128-byte cachelines. Every
// transaction carries a 16-byte header; small reads are padded to a 32-byte
// payload and partial-cacheline writes carry a 16-byte "byte enable" header
// extension. The packetizer converts a memory access (address, size,
// direction) into transaction counts and physical wire volume, which is how
// the reproduction obtains Figure 6 (granularity/alignment bandwidth),
// Figure 18(b) (tuples per transaction) and Figure 18(c) (transfer volume
// overhead) from the algorithms' real access streams.

#ifndef TRITON_SIM_PACKETIZER_H_
#define TRITON_SIM_PACKETIZER_H_

#include <cstdint>

#include "sim/hw_spec.h"

namespace triton::sim {

/// Result of packetizing one memory access or bulk transfer.
struct TxnStats {
  /// Number of link transactions.
  uint64_t txns = 0;
  /// Useful payload bytes (the access size).
  uint64_t payload = 0;
  /// Physical bytes on the wire: payload + padding + headers + extensions.
  uint64_t physical = 0;
};

/// Stateless packet-rule calculator for one interconnect spec.
class Packetizer {
 public:
  explicit Packetizer(const InterconnectSpec& spec) : spec_(spec) {}

  /// Packetizes a single access issued by SM threads (possibly coalesced
  /// from a warp): `addr` is the starting byte address, `size` the access
  /// size in bytes. The access is split at cacheline boundaries; each piece
  /// becomes one transaction.
  TxnStats Access(uint64_t addr, uint64_t size, bool is_write) const;

  /// Packetizes a large sequential transfer (e.g. a kernel streaming a
  /// relation chunk) in O(1). Assumes cacheline-aligned bulk interior with
  /// at most two ragged edges.
  TxnStats Bulk(uint64_t addr, uint64_t size, bool is_write) const;

  /// Packetizes a DMA copy-engine transfer (256-byte transactions).
  TxnStats Dma(uint64_t size, bool is_write) const;

  /// Payload efficiency (payload / physical) of a perfectly coalesced,
  /// aligned SM transaction stream.
  double PeakSmEfficiency() const {
    return static_cast<double>(spec_.max_sm_payload) /
           static_cast<double>(spec_.max_sm_payload + spec_.header_bytes);
  }

 private:
  /// Accounts one transaction with `payload_bytes` of useful data.
  void AddTxn(uint64_t payload_bytes, bool is_write, TxnStats* out) const;

  InterconnectSpec spec_;
};

}  // namespace triton::sim

#endif  // TRITON_SIM_PACKETIZER_H_
