// GPU address-translation simulation (Section 3.4.2 of the paper).
//
// The GPU's shared L2 TLB is modelled as a set-associative cache over
// *translation ranges* (32 MiB each on the real machine: 16 physically
// adjacent 2 MiB pages coalesced during one page-table walk). Accesses to
// CPU-memory pages that miss the L2 TLB become IOMMU translation requests;
// the IOMMU's own cache (the paper's speculative "L3 TLB*") is a second
// set-associative level. Requests that miss both require a full page-table
// walk by one of the IOMMU's 12 parallel walkers.
//
// Kernels replay their actual page-access streams through this simulator,
// so miss rates — and through them the fanout cliffs of Figures 13/14/18 —
// are emergent properties of the algorithms' address patterns.

#ifndef TRITON_SIM_TLB_H_
#define TRITON_SIM_TLB_H_

#include <cstdint>
#include <vector>

#include "sim/hw_spec.h"
#include "sim/perf_counters.h"

namespace triton::sim {

/// One set-associative translation cache level.
///
/// Capacity is expressed as covered bytes; each entry covers `range_bytes`.
/// Lookups are by byte address; replacement is per-set LRU.
class TranslationCache {
 public:
  /// Creates a cache covering `coverage_bytes` with entries spanning
  /// `range_bytes` each. `ways` is the set associativity.
  TranslationCache(uint64_t coverage_bytes, uint64_t range_bytes,
                   uint32_t ways = 8);

  /// Looks up the range containing `addr`; inserts it on miss.
  /// Returns true on hit.
  bool Access(uint64_t addr);

  /// Invalidates all entries (the CUDA runtime flushes GPU TLBs at kernel
  /// launch; mprotect flushes the IOTLB).
  void Flush();

  uint64_t num_entries() const { return num_sets_ * ways_; }
  uint64_t range_bytes() const { return range_bytes_; }
  uint64_t lookups() const { return lookups_; }
  uint64_t misses() const { return misses_; }

 private:
  uint64_t range_bytes_;
  uint32_t ways_;
  uint64_t num_sets_;  // power of two
  // tags_[set * ways + way]: range id + 1 (0 = invalid).
  std::vector<uint64_t> tags_;
  // lru_[set * ways + way]: logical timestamp of last use.
  std::vector<uint64_t> stamp_;
  uint64_t clock_ = 0;
  uint64_t lookups_ = 0;
  uint64_t misses_ = 0;
};

/// Which memory pool a translated page belongs to.
enum class PageLocation { kGpuMem, kCpuMem };

/// Outcome of one translated access, with the latency the paper measures
/// for that outcome (Figure 7).
struct TranslationResult {
  /// True if the GPU L2 TLB hit.
  bool l2_hit = false;
  /// For CPU-memory L2 misses: true if the "L3 TLB*" layer hit (no IOMMU
  /// request generated).
  bool iotlb_hit = false;
  /// Access latency in seconds for this outcome.
  double latency = 0.0;
};

/// Destination for TLB misses that escalate past block-local levels.
///
/// sim::BlockTlb models the per-SM L1 and shared-slice levels itself and
/// hands full misses to a sink. During serial execution the sink is the
/// Device's TlbSimulator directly; under parallel block execution it is a
/// per-block deferring sink (exec::KernelContext) that logs the escalation
/// and replays it through the shared TlbSimulator in block order at launch
/// end — shared TLB state must never be mutated while blocks are in flight.
class TlbEscalationSink {
 public:
  virtual ~TlbEscalationSink() = default;

  /// Handles an access that missed every block-local level; see
  /// TlbSimulator::EscalateMiss for the accounting contract. Deferring
  /// sinks return a zero result (callers that defer discard latencies).
  virtual TranslationResult EscalateMiss(uint64_t addr, PageLocation loc,
                                         PerfCounters* counters) = 0;
};

/// Two-level translation hierarchy: GPU L2 TLB + IOMMU-side cache.
class TlbSimulator : public TlbEscalationSink {
 public:
  explicit TlbSimulator(const TlbSpec& spec);

  /// Translates an access to `addr` in the given memory pool, updating
  /// `counters` (lookups, misses, IOMMU requests/walks). Returns the
  /// outcome with its latency.
  TranslationResult Access(uint64_t addr, PageLocation loc,
                           PerfCounters* counters);

  /// Handles an access that already missed the GPU-side TLB levels (used
  /// by BlockTlb, which models those levels itself). For CPU-memory pages
  /// this performs the IOMMU request / IOTLB lookup / walk accounting; for
  /// GPU-memory pages it charges the on-board miss latency.
  TranslationResult EscalateMiss(uint64_t addr, PageLocation loc,
                                 PerfCounters* counters) override;

  /// A translation request arriving at the CPU's IOMMU: counted as an
  /// IOMMU request; an IOTLB hit costs the L3 TLB* latency, a miss is a
  /// full page table walk.
  TranslationResult IommuAccess(uint64_t addr, PerfCounters* counters);

  /// Flushes the GPU L2 TLB only (happens at each kernel launch).
  void FlushGpuTlb();

  /// Flushes both levels.
  void FlushAll();

  const TlbSpec& spec() const { return spec_; }

  /// Total lookups across all levels: advances only when shared TLB state
  /// is touched, so tests can assert the replay-at-reduction contract
  /// (no shared mutation while blocks are in flight).
  uint64_t TotalLookups() const {
    return l2_.lookups() + l3_.lookups() + iommu_iotlb_.lookups();
  }

 private:
  TlbSpec spec_;
  TranslationCache l2_;
  // The 32 GiB "L3 TLB*" layer of Figure 7b. The paper's IOMMU counters
  // show that accesses within this reach do not generate IOMMU requests,
  // so it is modelled GPU-side; it survives kernel launches.
  TranslationCache l3_;
  // IOMMU-side IOTLB: requests that hit here are counted but avoid the
  // full page table walk.
  TranslationCache iommu_iotlb_;
};

}  // namespace triton::sim

#endif  // TRITON_SIM_TLB_H_
