// GPU address-translation simulation (Section 3.4.2 of the paper).
//
// The GPU's shared L2 TLB is modelled as a set-associative cache over
// *translation ranges* (32 MiB each on the real machine: 16 physically
// adjacent 2 MiB pages coalesced during one page-table walk). Accesses to
// CPU-memory pages that miss the L2 TLB become IOMMU translation requests;
// the IOMMU's own cache (the paper's speculative "L3 TLB*") is a second
// set-associative level. Requests that miss both require a full page-table
// walk by one of the IOMMU's 12 parallel walkers.
//
// Kernels replay their actual page-access streams through this simulator,
// so miss rates — and through them the fanout cliffs of Figures 13/14/18 —
// are emergent properties of the algorithms' address patterns.

#ifndef TRITON_SIM_TLB_H_
#define TRITON_SIM_TLB_H_

#include <cstdint>
#include <vector>

#include "sim/hw_spec.h"
#include "sim/perf_counters.h"

namespace triton::sim {

/// One set-associative translation cache level.
///
/// Capacity is expressed as covered bytes; each entry covers `range_bytes`.
/// Lookups are by byte address; replacement is per-set LRU.
class TranslationCache {
 public:
  /// Creates a cache covering `coverage_bytes` with entries spanning
  /// `range_bytes` each. `ways` is the set associativity.
  TranslationCache(uint64_t coverage_bytes, uint64_t range_bytes,
                   uint32_t ways = 8);

  /// Looks up the range containing `addr`; inserts it on miss.
  /// Returns true on hit. Defined inline: this is the innermost call of
  /// every simulated memory access (hundreds of millions per bench), and
  /// the set probe loop is small enough that call overhead dominates it.
  bool Access(uint64_t addr) {
    ++lookups_;
    ++clock_;
    uint64_t range_id = addr / range_bytes_;
    // Mix bits so contiguous ranges spread over sets.
    uint64_t h = range_id * 0x9e3779b97f4a7c15ULL;
    uint64_t set = (h >> 32) & (num_sets_ - 1);
    uint64_t base = set * ways_;
    uint64_t tag = range_id + 1;

    uint32_t victim = 0;
    uint64_t victim_stamp = UINT64_MAX;
    for (uint32_t w = 0; w < ways_; ++w) {
      if (tags_[base + w] == tag) {
        stamp_[base + w] = clock_;
        return true;
      }
      if (stamp_[base + w] < victim_stamp) {
        victim_stamp = stamp_[base + w];
        victim = w;
      }
    }
    ++misses_;
    tags_[base + victim] = tag;
    stamp_[base + victim] = clock_;
    return false;
  }

  /// Invalidates all entries (the CUDA runtime flushes GPU TLBs at kernel
  /// launch; mprotect flushes the IOTLB).
  void Flush();

  uint64_t num_entries() const { return num_sets_ * ways_; }
  uint64_t range_bytes() const { return range_bytes_; }
  uint64_t lookups() const { return lookups_; }
  uint64_t misses() const { return misses_; }

 private:
  uint64_t range_bytes_;
  uint32_t ways_;
  uint64_t num_sets_;  // power of two
  // tags_[set * ways + way]: range id + 1 (0 = invalid).
  std::vector<uint64_t> tags_;
  // lru_[set * ways + way]: logical timestamp of last use.
  std::vector<uint64_t> stamp_;
  uint64_t clock_ = 0;
  uint64_t lookups_ = 0;
  uint64_t misses_ = 0;
};

/// Which memory pool a translated page belongs to.
enum class PageLocation { kGpuMem, kCpuMem };

/// Outcome of one translated access, with the latency the paper measures
/// for that outcome (Figure 7).
struct TranslationResult {
  /// True if the GPU L2 TLB hit.
  bool l2_hit = false;
  /// For CPU-memory L2 misses: true if the "L3 TLB*" layer hit (no IOMMU
  /// request generated).
  bool iotlb_hit = false;
  /// Access latency in seconds for this outcome.
  double latency = 0.0;
};

/// Aggregate outcome of a bulk translation: one Access per translation
/// range covered by a contiguous byte run (see TlbSimulator::TranslateRun).
struct TranslationRunResult {
  /// Ranges translated (== Access calls performed).
  uint64_t accesses = 0;
  /// Sum of the per-access outcome latencies in seconds.
  double latency_sum = 0.0;
};

/// Destination for TLB misses that escalate past block-local levels.
///
/// sim::BlockTlb models the per-SM L1 and shared-slice levels itself and
/// hands full misses to a sink. During serial execution the sink is the
/// Device's TlbSimulator directly; under parallel block execution it is a
/// per-block deferring sink (exec::KernelContext) that logs the escalation
/// and replays it through the shared TlbSimulator in block order at launch
/// end — shared TLB state must never be mutated while blocks are in flight.
class TlbEscalationSink {
 public:
  virtual ~TlbEscalationSink() = default;

  /// Handles an access that missed every block-local level; see
  /// TlbSimulator::EscalateMiss for the accounting contract. Deferring
  /// sinks return a zero result (callers that defer discard latencies).
  virtual TranslationResult EscalateMiss(uint64_t addr, PageLocation loc,
                                         PerfCounters* counters) = 0;
};

/// Two-level translation hierarchy: GPU L2 TLB + IOMMU-side cache.
class TlbSimulator : public TlbEscalationSink {
 public:
  explicit TlbSimulator(const TlbSpec& spec);

  /// Translates an access to `addr` in the given memory pool, updating
  /// `counters` (lookups, misses, IOMMU requests/walks). Returns the
  /// outcome with its latency.
  TranslationResult Access(uint64_t addr, PageLocation loc,
                           PerfCounters* counters);

  /// Bulk translation of the contiguous byte run [addr, addr + size):
  /// performs exactly one Access per translation range the run touches, in
  /// ascending range order — the same sequence the per-access hot loops
  /// would replay — and returns the aggregate. `size` must be non-zero.
  TranslationRunResult TranslateRun(uint64_t addr, uint64_t size,
                                    PageLocation loc, PerfCounters* counters);

  /// Handles an access that already missed the GPU-side TLB levels (used
  /// by BlockTlb, which models those levels itself). For CPU-memory pages
  /// this performs the IOMMU request / IOTLB lookup / walk accounting; for
  /// GPU-memory pages it charges the on-board miss latency.
  TranslationResult EscalateMiss(uint64_t addr, PageLocation loc,
                                 PerfCounters* counters) override;

  /// A translation request arriving at the CPU's IOMMU: counted as an
  /// IOMMU request; an IOTLB hit costs the L3 TLB* latency, a miss is a
  /// full page table walk.
  TranslationResult IommuAccess(uint64_t addr, PerfCounters* counters);

  /// Flushes the GPU L2 TLB only (happens at each kernel launch).
  void FlushGpuTlb();

  /// Flushes both levels.
  void FlushAll();

  const TlbSpec& spec() const { return spec_; }

  /// Total lookups across all levels: advances only when shared TLB state
  /// is touched, so tests can assert the replay-at-reduction contract
  /// (no shared mutation while blocks are in flight).
  uint64_t TotalLookups() const {
    return l2_.lookups() + l3_.lookups() + iommu_iotlb_.lookups();
  }

 private:
  TlbSpec spec_;
  TranslationCache l2_;
  // The 32 GiB "L3 TLB*" layer of Figure 7b. The paper's IOMMU counters
  // show that accesses within this reach do not generate IOMMU requests,
  // so it is modelled GPU-side; it survives kernel launches.
  TranslationCache l3_;
  // IOMMU-side IOTLB: requests that hit here are counted but avoid the
  // full page table walk.
  TranslationCache iommu_iotlb_;
};

}  // namespace triton::sim

#endif  // TRITON_SIM_TLB_H_
