#include "sim/hw_spec.h"

#include "util/logging.h"

namespace triton::sim {

using util::kGB;
using util::kGiB;
using util::kMiB;

HwSpec HwSpec::Ac922NvLink() {
  HwSpec hw;
  hw.name = "IBM AC922 (POWER9 + V100, NVLink 2.0)";

  hw.gpu.num_sms = 80;
  hw.gpu.clock_hz = 1.53e9;
  hw.gpu.cores_per_sm = 64;
  hw.gpu.warp_size = 32;
  hw.gpu.scratchpad_bytes = 64 * util::kKiB;
  hw.gpu.load_watts = 71.0;
  hw.gpu.idle_watts = 32.0;

  hw.cpu.name = "POWER9";
  hw.cpu.cores = 16;
  hw.cpu.clock_hz = 3.8e9;
  hw.cpu.smt = 4;
  hw.cpu.llc_per_core = 5 * kMiB;
  hw.cpu.partition_bw = 29.0 * kGiB;
  hw.cpu.scan_bw = 129.6 * kGiB;
  hw.cpu.join_tuples_per_core = 140e6;
  hw.cpu.load_watts = 192.0;
  hw.cpu.io_for_gpu_watts = 10.5;

  hw.gpu_mem.bandwidth = 900.0 * kGB;
  hw.gpu_mem.capacity = 16 * kGiB;
  hw.gpu_mem.transaction_bytes = 32;
  hw.gpu_mem.random_write_derate = 0.25;

  hw.cpu_mem.bandwidth = 170.0 * kGB;
  // Two sockets with 128 GiB each; the near-GPU NUMA node holds the hot
  // state but the far node backs the remainder (the paper notes its largest
  // workload approaches one node's capacity).
  hw.cpu_mem.capacity = 256 * kGiB;
  hw.cpu_mem.transaction_bytes = 128;
  hw.cpu_mem.random_write_derate = 1.0;

  hw.link.raw_bandwidth_per_dir = 75.0 * kGB;
  hw.link.bidirectional_efficiency = 0.88;
  hw.link.header_bytes = 16;
  hw.link.max_sm_payload = 128;
  hw.link.max_dma_payload = 256;
  hw.link.min_read_payload = 32;
  hw.link.byte_enable_bytes = 16;
  hw.link.alignment = 128;

  hw.tlb.l2_coverage = 8 * kGiB;
  hw.tlb.l2_entry_range = 32 * kMiB;
  hw.tlb.iotlb_coverage = 32 * kGiB;
  hw.tlb.page_bytes = 2 * kMiB;
  hw.tlb.gpu_mem_hit_latency = 151.9e-9;
  hw.tlb.gpu_mem_miss_latency = 226.7e-9;
  hw.tlb.cpu_mem_hit_latency = 449.7e-9;
  hw.tlb.cpu_mem_iotlb_latency = 532.9e-9;
  hw.tlb.cpu_mem_walk_latency = 3186.4e-9;
  hw.tlb.num_walkers = 12;
  hw.tlb.translations_per_walk = 16;

  hw.system_idle_watts = 290.0;
  hw.scale = 1.0;
  return hw;
}

HwSpec HwSpec::Ac922Pcie3() {
  HwSpec hw = Ac922NvLink();
  hw.name = "POWER9 + V100, PCI-e 3.0 x16";
  // PCI-e 3.0 x16: ~16 GB/s raw, ~12 GiB/s effective payload per direction.
  hw.link.raw_bandwidth_per_dir = 16.0 * kGB;
  hw.link.bidirectional_efficiency = 0.8;
  // PCI-e TLPs: up to 256-byte payload with ~24 bytes of header/overhead.
  hw.link.header_bytes = 24;
  hw.link.max_sm_payload = 128;
  hw.link.max_dma_payload = 256;
  return hw;
}

CpuSpec HwSpec::XeonGold6126() {
  CpuSpec cpu;
  cpu.name = "Xeon Gold 6126";
  cpu.cores = 12;
  cpu.clock_hz = 2.6e9;
  cpu.smt = 2;
  cpu.llc_per_core = static_cast<uint64_t>(1.25 * kMiB);
  cpu.partition_bw = 24.0 * kGiB;
  cpu.scan_bw = 100.0 * kGiB;
  cpu.join_tuples_per_core = 160e6;
  cpu.load_watts = 165.0;
  cpu.io_for_gpu_watts = 0.0;
  return cpu;
}

HwSpec HwSpec::Scaled(double factor) const {
  CHECK_GT(factor, 0.0);
  HwSpec hw = *this;
  auto scale_u64 = [factor](uint64_t v) {
    uint64_t scaled = static_cast<uint64_t>(static_cast<double>(v) / factor);
    return scaled == 0 ? uint64_t{1} : scaled;
  };
  hw.gpu_mem.capacity = scale_u64(gpu_mem.capacity);
  hw.cpu_mem.capacity = scale_u64(cpu_mem.capacity);
  hw.tlb.l2_coverage = scale_u64(tlb.l2_coverage);
  hw.tlb.l2_entry_range = scale_u64(tlb.l2_entry_range);
  hw.tlb.iotlb_coverage = scale_u64(tlb.iotlb_coverage);
  hw.tlb.page_bytes = scale_u64(tlb.page_bytes);
  hw.scale = scale * factor;
  return hw;
}

}  // namespace triton::sim
