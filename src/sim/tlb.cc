#include "sim/tlb.h"

#include "util/bits.h"
#include "util/logging.h"

namespace triton::sim {

TranslationCache::TranslationCache(uint64_t coverage_bytes,
                                   uint64_t range_bytes, uint32_t ways)
    : range_bytes_(range_bytes), ways_(ways) {
  CHECK_GT(range_bytes, 0u);
  CHECK_GT(ways, 0u);
  uint64_t entries = coverage_bytes / range_bytes;
  if (entries < ways_) entries = ways_;
  num_sets_ = util::NextPowerOfTwo(entries / ways_);
  tags_.assign(num_sets_ * ways_, 0);
  stamp_.assign(num_sets_ * ways_, 0);
}

void TranslationCache::Flush() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(stamp_.begin(), stamp_.end(), 0);
}

TlbSimulator::TlbSimulator(const TlbSpec& spec)
    : spec_(spec),
      l2_(spec.l2_coverage, spec.l2_entry_range),
      l3_(spec.iotlb_coverage, spec.l2_entry_range, /*ways=*/16),
      iommu_iotlb_(spec.iotlb_coverage, spec.l2_entry_range, /*ways=*/16) {}

TranslationResult TlbSimulator::Access(uint64_t addr, PageLocation loc,
                                       PerfCounters* counters) {
  TranslationResult result;
  counters->gpu_tlb_lookups += 1;
  result.l2_hit = l2_.Access(addr);

  if (loc == PageLocation::kGpuMem) {
    if (result.l2_hit) {
      result.latency = spec_.gpu_mem_hit_latency;
    } else {
      counters->gpu_tlb_misses += 1;
      result.latency = spec_.gpu_mem_miss_latency;
    }
    return result;
  }

  // CPU-memory page: an L2 miss first consults the 32 GiB "L3 TLB*"
  // layer (the paper's Figure 7b plateau; its requests never reach the
  // CPU's IOMMU counters), and only an L3 miss becomes an IOMMU request
  // with a full page table walk.
  if (result.l2_hit) {
    result.latency = spec_.cpu_mem_hit_latency;
    return result;
  }
  counters->gpu_tlb_misses += 1;
  result.iotlb_hit = l3_.Access(addr);
  if (result.iotlb_hit) {
    counters->l3_hits += 1;
    result.latency = spec_.cpu_mem_iotlb_latency;
    return result;
  }
  return IommuAccess(addr, counters);
}

TranslationRunResult TlbSimulator::TranslateRun(uint64_t addr, uint64_t size,
                                                PageLocation loc,
                                                PerfCounters* counters) {
  DCHECK_GT(size, 0u);
  TranslationRunResult run;
  const uint64_t range = spec_.l2_entry_range;
  for (uint64_t r = addr / range; r <= (addr + size - 1) / range; ++r) {
    TranslationResult tr = Access(r * range, loc, counters);
    run.latency_sum += tr.latency;
    ++run.accesses;
  }
  return run;
}

TranslationResult TlbSimulator::IommuAccess(uint64_t addr,
                                            PerfCounters* counters) {
  TranslationResult result;
  counters->iommu_requests += 1;
  result.iotlb_hit = iommu_iotlb_.Access(addr);
  if (result.iotlb_hit) {
    result.latency = spec_.cpu_mem_iotlb_latency;
  } else {
    counters->iommu_walks += 1;
    result.latency = spec_.cpu_mem_walk_latency;
  }
  return result;
}

TranslationResult TlbSimulator::EscalateMiss(uint64_t addr, PageLocation loc,
                                             PerfCounters* counters) {
  TranslationResult result;
  result.l2_hit = false;
  counters->gpu_tlb_misses += 1;
  if (loc == PageLocation::kGpuMem) {
    result.latency = spec_.gpu_mem_miss_latency;
    return result;
  }
  // The caller (BlockTlb) models the GPU-side levels including its L3
  // slice; an escalated CPU-memory miss goes straight to the IOMMU.
  return IommuAccess(addr, counters);
}

void TlbSimulator::FlushGpuTlb() { l2_.Flush(); }

void TlbSimulator::FlushAll() {
  l2_.Flush();
  l3_.Flush();
  iommu_iotlb_.Flush();
}

}  // namespace triton::sim
