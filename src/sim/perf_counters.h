// Hardware-performance-counter equivalents collected during simulated
// kernel execution.
//
// Every kernel execution accumulates a PerfCounters record: bytes moved per
// memory pool, interconnect transactions (payload and physical volume
// including packet overhead), TLB/IOMMU events, and abstract issue-slot
// work. The cost model (sim/cost_model.h) converts a record into simulated
// elapsed time; the benchmark harness reads the raw counters directly for
// the profiling figures (14, 15, 18).

#ifndef TRITON_SIM_PERF_COUNTERS_H_
#define TRITON_SIM_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

namespace triton::sim {

/// Counter record for one kernel execution (or a merged set of them).
struct PerfCounters {
  // --- GPU on-board memory traffic (bytes) ---
  uint64_t gpu_mem_read = 0;
  uint64_t gpu_mem_write = 0;
  /// Subset of gpu_mem_write issued with random (uncoalesced) addresses;
  /// subject to the random-write derate of the memory model.
  uint64_t gpu_mem_random_write = 0;

  // --- Interconnect traffic, GPU <-> CPU memory ---
  /// Payload bytes read from CPU memory (CPU -> GPU direction).
  uint64_t link_read_payload = 0;
  /// Physical bytes on the wire for reads, incl. headers and read padding.
  uint64_t link_read_physical = 0;
  /// Payload bytes written to CPU memory (GPU -> CPU direction).
  uint64_t link_write_payload = 0;
  /// Physical bytes on the wire for writes, incl. headers and byte-enables.
  uint64_t link_write_physical = 0;
  /// Transaction counts per direction.
  uint64_t link_read_txns = 0;
  uint64_t link_write_txns = 0;

  // --- CPU-side memory traffic issued by the CPU itself (bytes) ---
  uint64_t cpu_mem_read = 0;
  uint64_t cpu_mem_write = 0;

  // --- Address translation ---
  /// GPU L2 TLB lookups and misses for GPU-memory pages.
  uint64_t gpu_tlb_lookups = 0;
  uint64_t gpu_tlb_misses = 0;
  /// L2 TLB misses served by the shared "L3 TLB*" layer (533 ns); its
  /// finite lookup bandwidth throttles translation-heavy random access.
  uint64_t l3_hits = 0;
  /// Translation requests that left the GPU towards the CPU's IOMMU
  /// (the paper counts these with the POWER9 PMU; Figures 14b, 18d).
  uint64_t iommu_requests = 0;
  /// Subset of iommu_requests that missed the IOTLB and required a full
  /// page table walk.
  uint64_t iommu_walks = 0;

  // --- Execution ---
  /// Abstract issue-slot work: warp-instructions issued.
  uint64_t issue_slots = 0;
  /// Tuples processed by the kernel (for per-tuple rates).
  uint64_t tuples = 0;

  /// Adds every counter of `other` into this record.
  void Merge(const PerfCounters& other);

  /// Field-by-field equality; the determinism tests compare whole records.
  bool operator==(const PerfCounters& other) const = default;

  /// Total physical bytes on the link (both directions).
  uint64_t LinkPhysicalTotal() const {
    return link_read_physical + link_write_physical;
  }

  /// Payload bytes moved over the link (both directions).
  uint64_t LinkPayloadTotal() const {
    return link_read_payload + link_write_payload;
  }

  /// Average payload bytes per link write transaction (0 if none).
  double AvgWritePayload() const {
    return link_write_txns == 0 ? 0.0
                                : static_cast<double>(link_write_payload) /
                                      static_cast<double>(link_write_txns);
  }

  /// IOMMU translation requests per processed tuple (Figure 14b / 18d).
  double IommuRequestsPerTuple() const {
    return tuples == 0 ? 0.0
                       : static_cast<double>(iommu_requests) /
                             static_cast<double>(tuples);
  }

  /// Multi-line human-readable dump (for examples and debugging).
  std::string ToString() const;
};

}  // namespace triton::sim

#endif  // TRITON_SIM_PERF_COUNTERS_H_
