// Machine description for the simulated fast-interconnect system.
//
// The default preset models the paper's evaluation platform, an IBM AC922
// with a POWER9 CPU and an Nvidia Tesla V100 GPU connected by NVLink 2.0
// (SIGMOD'22 paper, Section 2.1 and 6.1). All constants are the values the
// paper reports or measures:
//   - GPU memory: 900 GB/s, 16 GiB
//   - CPU memory: 170 GB/s per socket, 128 GiB per socket
//   - NVLink 2.0: 75 GB/s raw per direction, 16-byte packet headers,
//     128-byte SM transactions, 256-byte DMA transactions
//   - GPU L2 TLB: covers 8 GiB in 32 MiB translation ranges
//   - IOMMU: 12 parallel page table walkers, 16 coalesced translations
//   - TLB latencies from Section 3.4.2 (Figure 7)
//
// Scaled(factor) shrinks every *capacity* (GPU memory, TLB coverage, page
// sizes) by `factor` while keeping bandwidths, latencies and transaction
// sizes fixed. Shrinking the workload by the same factor preserves every
// capacity ratio, so in-core/out-of-core crossovers land at the same
// relative positions as in the paper while running on a small host.

#ifndef TRITON_SIM_HW_SPEC_H_
#define TRITON_SIM_HW_SPEC_H_

#include <cstdint>
#include <string>

#include "util/units.h"

namespace triton::sim {

/// A DRAM pool (GPU on-board memory or one CPU socket's memory).
struct MemorySpec {
  /// Peak sequential bandwidth in bytes/second.
  double bandwidth = 0.0;
  /// Capacity in bytes.
  uint64_t capacity = 0;
  /// Transaction (burst) size in bytes for random accesses.
  uint32_t transaction_bytes = 32;
  /// Random *write* bandwidth derating. The paper measures GPU-memory random
  /// reads 3.2-6x faster than random writes (Section 6.2.9).
  double random_write_derate = 1.0;
};

/// The CPU<->GPU interconnect (NVLink 2.0 by default, PCI-e 3.0 preset
/// available).
struct InterconnectSpec {
  /// Raw electrical bandwidth per direction in bytes/second.
  double raw_bandwidth_per_dir = 0.0;
  /// Efficiency factor applied when both directions are loaded
  /// simultaneously (credit/flow-control sharing).
  double bidirectional_efficiency = 1.0;
  /// Packet header bytes attached to every transaction.
  uint32_t header_bytes = 16;
  /// Maximum payload of an SM-issued transaction (one L1 cacheline).
  uint32_t max_sm_payload = 128;
  /// Maximum payload of a DMA copy-engine transaction.
  uint32_t max_dma_payload = 256;
  /// Small reads are padded up to this payload size.
  uint32_t min_read_payload = 32;
  /// Small (partial-cacheline) writes carry a byte-enable header extension.
  uint32_t byte_enable_bytes = 16;
  /// Cachelines transactions must align to; misaligned accesses split.
  uint32_t alignment = 128;
};

/// Address-translation hierarchy as seen from the GPU (Section 3.4.2).
struct TlbSpec {
  /// Entries in each SM's private L1 TLB, in translation ranges. GPU
  /// vendors do not publish this; the value is calibrated so that the
  /// Shared partitioner's measured TLB-miss cliff appears between fanout
  /// 64 and 128 (Figure 18d).
  uint32_t l1_entries = 64;
  /// Bytes covered by the GPU's shared L2 TLB (8 GiB measured).
  uint64_t l2_coverage = 0;
  /// Bytes covered by one L2 TLB entry (32 MiB: 16 coalesced 2 MiB pages).
  uint64_t l2_entry_range = 0;
  /// Bytes covered by the IOMMU-side translation cache ("L3 TLB*",
  /// plateau up to ~32 GiB in Figure 7b).
  uint64_t iotlb_coverage = 0;
  /// OS page size backing CPU memory (2 MiB huge pages).
  uint64_t page_bytes = 0;

  /// L2 TLB hit latency for GPU-memory accesses (151.9 ns measured).
  double gpu_mem_hit_latency = 0.0;
  /// L2 TLB miss latency for GPU-memory accesses (226.7 ns measured).
  double gpu_mem_miss_latency = 0.0;
  /// L2 TLB hit latency for CPU-memory accesses over the link (449.7 ns).
  double cpu_mem_hit_latency = 0.0;
  /// L2 miss that hits the IOMMU-side cache ("L3 TLB*": 532.9 ns).
  double cpu_mem_iotlb_latency = 0.0;
  /// Full IOMMU page table walk ("Miss*": 3186.4 ns).
  double cpu_mem_walk_latency = 0.0;

  /// Concurrent lookups the shared L3 TLB* structure sustains (calibrated
  /// so the out-of-core no-partitioning join with perfect hashing lands at
  /// the paper's ~0.5 G tuples/s, Figure 13).
  uint32_t l3_concurrency = 128;
  /// Parallel page table walkers in the IOMMU (12 on POWER9).
  uint32_t num_walkers = 12;
  /// Translations returned per walk (up to 16 coalesced).
  uint32_t translations_per_walk = 16;
};

/// GPU execution resources (Tesla V100 "Volta").
struct GpuSpec {
  uint32_t num_sms = 0;
  /// Core clock in Hz.
  double clock_hz = 0.0;
  /// Integer lanes per SM used for throughput modelling.
  uint32_t cores_per_sm = 64;
  /// Threads per warp.
  uint32_t warp_size = 32;
  /// Scratchpad (shared memory) bytes available per thread block.
  uint64_t scratchpad_bytes = 0;
  /// Power draw under load / idle, watts (Section 6.2.11).
  double load_watts = 71.0;
  double idle_watts = 32.0;
};

/// CPU execution resources (POWER9 "Monza" or Xeon preset).
struct CpuSpec {
  std::string name;
  uint32_t cores = 0;
  double clock_hz = 0.0;
  /// SMT ways per core.
  uint32_t smt = 4;
  /// Usable last-level cache per core in bytes (5 MiB POWER9,
  /// 1.25 MiB Xeon per the paper).
  uint64_t llc_per_core = 0;
  /// Measured out-of-cache radix-partitioning rate for the whole chip,
  /// bytes/second of input (Figure 4: ~29 GiB/s on POWER9).
  double partition_bw = 0.0;
  /// Measured sequential scan bandwidth for prefix sums (Figure 20b:
  /// up to 129.6 GiB/s on POWER9).
  double scan_bw = 0.0;
  /// Per-core hash-join processing rate while data is cache-resident,
  /// tuples/second (calibrated so the POWER9 radix join reaches
  /// ~1.1 G tuples/s end-to-end as in Figure 13).
  double join_tuples_per_core = 0.0;
  /// Power draw under load, watts.
  double load_watts = 192.0;
  /// Extra CPU I/O power drawn while serving GPU interconnect traffic.
  double io_for_gpu_watts = 10.5;
};

/// Complete machine description.
struct HwSpec {
  std::string name;
  GpuSpec gpu;
  CpuSpec cpu;
  MemorySpec gpu_mem;
  MemorySpec cpu_mem;
  InterconnectSpec link;
  TlbSpec tlb;
  /// System idle power (AC922: 290 W).
  double system_idle_watts = 290.0;
  /// Capacity scale divisor applied relative to the real machine.
  double scale = 1.0;

  /// The paper's evaluation machine: IBM AC922, POWER9 + V100, NVLink 2.0.
  static HwSpec Ac922NvLink();

  /// Same host/GPU but a PCI-e 3.0 x16 interconnect (for the transfer
  /// bottleneck comparisons of Section 3).
  static HwSpec Ac922Pcie3();

  /// Intel Xeon Gold 6126 CPU preset (CPU radix join baseline only).
  static CpuSpec XeonGold6126();

  /// Returns a copy with all capacities divided by `factor` (bandwidths,
  /// latencies and transaction sizes unchanged). See file comment.
  HwSpec Scaled(double factor) const;

  /// Link payload bandwidth per direction for a given payload:physical
  /// packet efficiency (e.g. 128/(128+16) for perfectly coalesced SM
  /// transactions).
  double LinkPayloadBandwidth(double efficiency) const {
    return link.raw_bandwidth_per_dir * efficiency;
  }

  /// Aggregate GPU instruction-issue throughput in (warp-)operations/second
  /// for `sms` streaming multiprocessors.
  double GpuIssueRate(uint32_t sms) const {
    return static_cast<double>(sms) * gpu.clock_hz;
  }
};

}  // namespace triton::sim

#endif  // TRITON_SIM_HW_SPEC_H_
