// Converts a kernel's PerfCounters record into simulated elapsed time.
//
// The model is a roofline over five resources: GPU compute issue slots, GPU
// on-board memory bandwidth, CPU memory bandwidth, interconnect bandwidth
// per direction (with a bidirectional-sharing derate), and the IOMMU's page
// table walker pool. A kernel's elapsed time is the maximum over resource
// times — the standard fully-overlapped bandwidth assumption used by
// analytical GPU models. The per-resource times are also reported
// individually so the harness can attribute stalls (Figures 15 and 18f)
// and compute interconnect utilization (Figure 14a).

#ifndef TRITON_SIM_COST_MODEL_H_
#define TRITON_SIM_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "sim/hw_spec.h"
#include "sim/perf_counters.h"

namespace triton::sim {

/// Per-resource time attribution for one kernel execution.
struct KernelTime {
  double compute = 0.0;   ///< Issue-slot time on the allocated SMs.
  double gpu_mem = 0.0;   ///< GPU on-board memory bandwidth time.
  double cpu_mem = 0.0;   ///< CPU memory bandwidth time (CPU-side traffic).
  double link = 0.0;      ///< Interconnect time (max over directions).
  double tlb = 0.0;       ///< IOMMU walker-pool time.
  double latency = 0.0;   ///< Latency-bound time (low-parallelism kernels).

  /// The roofline: elapsed = max over resources.
  double Elapsed() const;

  /// Which resource bound this kernel ("compute", "link", ...).
  const char* Bottleneck() const;

  std::string ToString() const;
};

/// Stateless counters -> time converter for one machine.
class CostModel {
 public:
  explicit CostModel(const HwSpec& hw) : hw_(hw) {}

  /// Computes per-resource times for a kernel that ran on `sms` streaming
  /// multiprocessors. `occupancy_warps` is the number of concurrently
  /// resident warps the kernel sustains (bounds memory-level parallelism;
  /// pointer-chase microbenchmarks use 1).
  KernelTime Evaluate(const PerfCounters& counters, uint32_t sms,
                      double avg_access_latency = 0.0,
                      uint64_t latency_bound_accesses = 0,
                      uint32_t occupancy_warps_per_sm = 64) const;

  /// Link utilization achieved by a phase: physical bytes per direction
  /// divided by the raw bandwidth-time product (Figure 14a).
  double LinkUtilization(const PerfCounters& counters, double elapsed) const;

  const HwSpec& hw() const { return hw_; }

 private:
  HwSpec hw_;
};

}  // namespace triton::sim

#endif  // TRITON_SIM_COST_MODEL_H_
