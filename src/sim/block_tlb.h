// Per-thread-block view of the GPU translation hierarchy.
//
// Thread blocks execute sequentially in this simulation, but on the real
// GPU all resident blocks run concurrently and *share* the L2 TLB while
// each SM has a private L1 TLB. A sequential replay through one global TLB
// would therefore overstate L2 locality. BlockTlb models the concurrent
// view from a single block:
//   - a private L1 TLB with the full per-SM capacity, and
//   - L2 and L3 *slices* whose capacities are the shared levels divided by
//     the number of concurrently resident blocks (each block can only keep
//     its proportional share of entries alive under concurrent thrashing).
// Misses on CPU-memory pages escalate to the CPU's IOMMU (IOTLB lookup or
// full page table walk); walks serialize through the walker pool in the
// cost model, so sequential replay is faithful there.

#ifndef TRITON_SIM_BLOCK_TLB_H_
#define TRITON_SIM_BLOCK_TLB_H_

#include <cstdint>

#include "sim/perf_counters.h"
#include "sim/tlb.h"

namespace triton::sim {

/// Translation stack for one thread block; see file comment.
class BlockTlb {
 public:
  /// `resident_blocks` is the number of blocks concurrently sharing the L2
  /// TLB. `escalation` receives full misses: the Device's TlbSimulator
  /// under serial execution, or a per-block deferring sink under parallel
  /// block execution (see TlbEscalationSink).
  BlockTlb(const TlbSpec& spec, uint32_t resident_blocks,
           TlbEscalationSink* escalation);

  /// Translates one access; updates counters and returns the outcome.
  TranslationResult Access(uint64_t addr, PageLocation loc,
                           PerfCounters* counters);

  /// Bulk translation of the contiguous byte run [addr, addr + size): one
  /// Access per translation range the run touches, in ascending order —
  /// the exact sequence a per-range loop at the call site would issue.
  /// `size` must be non-zero.
  TranslationRunResult AccessRun(uint64_t addr, uint64_t size,
                                 PageLocation loc, PerfCounters* counters);

  /// Invalidates the block-local levels (kernel relaunch).
  void Flush();

 private:
  const TlbSpec& spec_;
  TranslationCache l1_;
  TranslationCache l2_slice_;
  TranslationCache l3_slice_;
  TlbEscalationSink* shared_iotlb_;
};

}  // namespace triton::sim

#endif  // TRITON_SIM_BLOCK_TLB_H_
