#include "sim/cost_model.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace triton::sim {

double KernelTime::Elapsed() const {
  return std::max({compute, gpu_mem, cpu_mem, link, tlb, latency});
}

const char* KernelTime::Bottleneck() const {
  double e = Elapsed();
  if (e == 0.0) return "idle";
  if (e == link) return "link";
  if (e == tlb) return "tlb";
  if (e == gpu_mem) return "gpu_mem";
  if (e == cpu_mem) return "cpu_mem";
  if (e == latency) return "latency";
  return "compute";
}

std::string KernelTime::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "KernelTime{compute=%.3es gpu_mem=%.3es cpu_mem=%.3es "
                "link=%.3es tlb=%.3es latency=%.3es -> %s}",
                compute, gpu_mem, cpu_mem, link, tlb, latency, Bottleneck());
  return buf;
}

KernelTime CostModel::Evaluate(const PerfCounters& c, uint32_t sms,
                               double avg_access_latency,
                               uint64_t latency_bound_accesses,
                               uint32_t occupancy_warps_per_sm) const {
  KernelTime t;
  CHECK_GT(sms, 0u);

  // Compute: abstract warp-instructions over the SMs' issue rate.
  t.compute = static_cast<double>(c.issue_slots) / hw_.GpuIssueRate(sms);

  // GPU memory: sequential traffic at full bandwidth; random writes derated.
  double gpu_seq_bytes = static_cast<double>(c.gpu_mem_read + c.gpu_mem_write -
                                             c.gpu_mem_random_write);
  double gpu_rand_write = static_cast<double>(c.gpu_mem_random_write);
  t.gpu_mem = gpu_seq_bytes / hw_.gpu_mem.bandwidth +
              gpu_rand_write /
                  (hw_.gpu_mem.bandwidth * hw_.gpu_mem.random_write_derate);

  // CPU memory bandwidth serves both CPU-side traffic and the link traffic
  // that lands in / originates from CPU DRAM.
  double cpu_bytes = static_cast<double>(c.cpu_mem_read + c.cpu_mem_write) +
                     static_cast<double>(c.LinkPayloadTotal());
  t.cpu_mem = cpu_bytes / hw_.cpu_mem.bandwidth;

  // Interconnect: each direction has raw_bandwidth; when both directions are
  // active the effective bandwidth is derated by the bidirectional
  // efficiency factor.
  double bw = hw_.link.raw_bandwidth_per_dir;
  bool bidir = c.link_read_physical > 0 && c.link_write_physical > 0 &&
               std::min(c.link_read_physical, c.link_write_physical) >
                   c.LinkPhysicalTotal() / 16;
  if (bidir) bw *= hw_.link.bidirectional_efficiency;
  double t_read = static_cast<double>(c.link_read_physical) / bw;
  double t_write = static_cast<double>(c.link_write_physical) / bw;
  t.link = std::max(t_read, t_write);

  // IOMMU walker pool: full page-table walks occupy one of the parallel
  // walkers for the walk latency; cached IOMMU lookups are an order of
  // magnitude cheaper (the L3 TLB* plateau).
  double walker_time =
      static_cast<double>(c.iommu_walks) * hw_.tlb.cpu_mem_walk_latency +
      static_cast<double>(c.iommu_requests - c.iommu_walks) *
          hw_.tlb.cpu_mem_iotlb_latency;
  t.tlb = walker_time / static_cast<double>(hw_.tlb.num_walkers);
  // The shared L3 TLB* structure serves a bounded number of concurrent
  // lookups; translation-heavy random access is throttled by it even when
  // no request reaches the IOMMU.
  t.tlb += static_cast<double>(c.l3_hits) * hw_.tlb.cpu_mem_iotlb_latency /
           static_cast<double>(hw_.tlb.l3_concurrency);

  // Latency bound: with W resident warps per SM each able to keep one
  // access in flight, throughput caps at (sms * W) / avg_latency accesses
  // per second.
  if (latency_bound_accesses > 0 && avg_access_latency > 0.0) {
    double parallelism =
        static_cast<double>(sms) * static_cast<double>(occupancy_warps_per_sm);
    t.latency = static_cast<double>(latency_bound_accesses) *
                avg_access_latency / parallelism;
  }
  return t;
}

double CostModel::LinkUtilization(const PerfCounters& c,
                                  double elapsed) const {
  if (elapsed <= 0.0) return 0.0;
  double dominant = static_cast<double>(
      std::max(c.link_read_physical, c.link_write_physical));
  return dominant / (hw_.link.raw_bandwidth_per_dir * elapsed);
}

}  // namespace triton::sim
