#include "join/cpu_radix_join.h"

#include <algorithm>
#include <vector>

#include "hash/bucket_chain_table.h"
#include "partition/cpu_swwc.h"
#include "partition/input.h"
#include "partition/layout.h"
#include "partition/prefix_sum.h"
#include "util/bits.h"

namespace triton::join {

uint32_t CpuRadixBits(const sim::CpuSpec& cpu, uint64_t r_tuples) {
  // Each partition's hash table (~16 bytes/tuple) should fit in half the
  // per-core LLC share.
  uint64_t target_tuples =
      std::max<uint64_t>(cpu.llc_per_core / (2 * sizeof(partition::Tuple)),
                         1024);
  uint32_t bits = util::CeilLog2(util::CeilDiv(r_tuples, target_tuples));
  return std::clamp(bits, 6u, 20u);
}

util::StatusOr<JoinRun> CpuRadixJoin::Run(exec::Device& dev,
                                          const data::Relation& r,
                                          const data::Relation& s) {
  const sim::CpuSpec& cpu = config_.cpu != nullptr ? *config_.cpu
                                                   : dev.hw().cpu;
  // Radix bits are derived at *paper scale*: capacity ratios involving the
  // unscaled CPU caches must see the unscaled workload size so the
  // single-/two-pass switch lands where the paper measures it.
  const uint64_t paper_r = static_cast<uint64_t>(
      static_cast<double>(r.rows()) * dev.hw().scale);
  const uint32_t bits =
      config_.bits != 0 ? config_.bits : CpuRadixBits(cpu, paper_r);
  partition::RadixConfig radix{0, bits};
  const uint32_t num_blocks = cpu.cores;

  dev.ClearTrace();
  JoinRun run;

  // --- Partition both relations (prefix sum folded into the CPU
  // partitioner's measured rate) ---
  partition::ColumnInput r_in = partition::ColumnInput::Of(r);
  partition::ColumnInput s_in = partition::ColumnInput::Of(s);
  auto r_hist = partition::ComputeHistograms(r_in, radix, num_blocks);
  auto s_hist = partition::ComputeHistograms(s_in, radix, num_blocks);
  partition::PartitionLayout r_layout(radix, r_hist, /*pad_tuples=*/8);
  partition::PartitionLayout s_layout(radix, s_hist, /*pad_tuples=*/8);

  auto r_out = dev.allocator().AllocateCpu(r_layout.padded_tuples() *
                                           sizeof(partition::Tuple));
  if (!r_out.ok()) return r_out.status();
  auto s_out = dev.allocator().AllocateCpu(s_layout.padded_tuples() *
                                           sizeof(partition::Tuple));
  if (!s_out.ok()) return s_out.status();

  partition::CpuSwwcPartitioner partitioner(&cpu);
  partition::PartitionOptions opts;
  opts.name = "cpu_partition_r";
  partitioner.PartitionColumns(dev, r_in, r_layout, *r_out, opts);
  opts.name = "cpu_partition_s";
  partitioner.PartitionColumns(dev, s_in, s_layout, *s_out, opts);

  // --- Join partitions core-locally (functional) ---
  mem::Buffer result;
  if (config_.result_mode == ResultMode::kMaterialize) {
    auto res = dev.allocator().AllocateCpu(s.rows() * sizeof(hash::Entry));
    if (!res.ok()) return res.status();
    result = std::move(res).value();
  }
  partition::Tuple* out =
      result.valid() ? result.as<partition::Tuple>() : nullptr;
  const partition::Tuple* r_rows = r_out->as<partition::Tuple>();
  const partition::Tuple* s_rows = s_out->as<partition::Tuple>();

  uint64_t matches = 0;
  uint64_t checksum = 0;
  uint64_t max_partition = 0;
  for (uint32_t p = 0; p < radix.fanout(); ++p) {
    max_partition = std::max(max_partition, r_layout.PartitionSize(p));
  }
  constexpr uint32_t kBuckets = hash::BucketChainTable::kDefaultBuckets;
  std::vector<uint32_t> heads(kBuckets);
  std::vector<int64_t> keys(max_partition);
  std::vector<int64_t> values(max_partition);
  std::vector<uint32_t> next(max_partition);

  for (uint32_t p = 0; p < radix.fanout(); ++p) {
    if (r_layout.PartitionSize(p) == 0) continue;
    std::fill(heads.begin(), heads.end(), 0u);
    hash::BucketChainTable table(
        heads.data(), kBuckets, keys.data(), values.data(), next.data(),
        static_cast<uint32_t>(std::max<uint64_t>(r_layout.PartitionSize(p),
                                                 1)));
    r_layout.ForEachSlice(p, [&](uint64_t begin, uint64_t count) {
      for (uint64_t i = begin; i < begin + count; ++i) {
        table.Insert(r_rows[i].key, r_rows[i].value, bits);
      }
    });
    s_layout.ForEachSlice(p, [&](uint64_t begin, uint64_t count) {
      for (uint64_t i = begin; i < begin + count; ++i) {
        table.Probe(s_rows[i].key, bits, [&](int64_t build_val) {
          if (out != nullptr) out[matches] = {build_val, s_rows[i].value};
          ++matches;
          checksum += static_cast<uint64_t>(build_val) +
                      static_cast<uint64_t>(s_rows[i].value);
        });
      }
    });
  }

  // --- Analytic join-phase time ---
  exec::KernelRecord join_rec;
  join_rec.name = "cpu_join";
  double scheme_factor = config_.scheme == HashScheme::kPerfect ? 1.12 : 1.0;
  double rate = static_cast<double>(cpu.cores) * cpu.join_tuples_per_core *
                scheme_factor;
  join_rec.counters.tuples = r.rows() + s.rows();
  join_rec.counters.cpu_mem_read =
      (r.rows() + s.rows()) * sizeof(partition::Tuple);
  if (result.valid()) {
    join_rec.counters.cpu_mem_write = matches * sizeof(partition::Tuple);
  }
  join_rec.time.compute =
      static_cast<double>(r.rows() + s.rows()) / rate;
  dev.Record(join_rec);

  run.matches = matches;
  run.checksum = checksum;
  run.phases = dev.trace();
  for (const auto& ph : run.phases) run.totals.Merge(ph.counters);
  run.elapsed = dev.TraceElapsed();

  dev.allocator().Free(*r_out);
  dev.allocator().Free(*s_out);
  if (result.valid()) dev.allocator().Free(result);
  return run;
}

}  // namespace triton::join
