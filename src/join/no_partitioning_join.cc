#include "join/no_partitioning_join.h"

#include <algorithm>
#include <cstring>

#include "hash/hash_fn.h"
#include "hash/linear_table.h"
#include "hash/perfect_table.h"
#include "util/bits.h"
#include "util/fastpath.h"
#include "util/logging.h"

namespace triton::join {

namespace {

/// SM-cycles per build / probe tuple (calibrated; random accesses dominate
/// out-of-core runs regardless).
// Calibrated to the paper's in-core rates (Figure 21's dissection: probe
// 4.3 G tuples/s, build 1.8 G tuples/s on 80 SMs).
constexpr double kBuildCyclesPerTuple = 68.0;
constexpr double kProbeCyclesPerTuple = 28.0;

/// Distance (in tuples) the fast path prefetches hash-table lines ahead of
/// the current tuple. The table spans hundreds of MiB, so every slot touch
/// is a host DRAM miss; prefetching restores memory-level parallelism the
/// per-tuple accounting calls otherwise serialize. Prefetches only warm
/// host caches — the modeled access sequence is byte-identical.
constexpr uint64_t kPrefetchDist = 24;

/// Chained-table node for the bucket-chaining variant.
struct Node {
  int64_t key;
  int64_t value;
  uint64_t next;  // index + 1; 0 = end
};

}  // namespace

uint64_t NpjTableBytes(HashScheme scheme, uint64_t r_tuples) {
  switch (scheme) {
    case HashScheme::kPerfect:
      return r_tuples * sizeof(hash::Entry);
    case HashScheme::kLinearProbing:
      return hash::LinearTable::CapacityFor(r_tuples) * sizeof(hash::Entry);
    case HashScheme::kBucketChaining:
      return util::NextPowerOfTwo(r_tuples) * sizeof(uint64_t) +
             r_tuples * sizeof(Node);
  }
  return 0;
}

util::StatusOr<JoinRun> NoPartitioningJoin::Run(exec::Device& dev,
                                                const data::Relation& r,
                                                const data::Relation& s) {
  if (r.payload_cols() == 0 || s.payload_cols() == 0) {
    return util::Status::InvalidArgument(
        "no-partitioning join needs one payload column per relation");
  }
  JoinRun run;
  const uint64_t table_bytes = NpjTableBytes(config_.scheme, r.rows());
  // Result materialization stages matches in GPU memory before streaming
  // them out; reserve an eighth of the GPU for it.
  uint64_t gpu_avail = dev.allocator().gpu_free();
  if (config_.result_mode == ResultMode::kMaterialize) {
    uint64_t reserve = dev.hw().gpu_mem.capacity / 8;
    gpu_avail = gpu_avail > reserve ? gpu_avail - reserve : 0;
  }
  // Small headroom absorbs interleaving page-granularity rounding.
  gpu_avail -= gpu_avail / 64;
  const uint64_t cache =
      std::min({config_.cache_bytes, table_bytes, gpu_avail});
  auto table = dev.allocator().AllocateInterleaved(table_bytes, cache);
  if (!table.ok()) return table.status();
  std::memset(table->data(), 0, table->size());

  // Result buffer for materialization (general case: results go to CPU
  // memory, Section 5.1).
  mem::Buffer result;
  if (config_.result_mode == ResultMode::kMaterialize) {
    auto res = dev.allocator().AllocateCpu(s.rows() * sizeof(hash::Entry));
    if (!res.ok()) return res.status();
    result = std::move(res).value();
  }

  dev.ClearTrace();
  const bool fast = util::FastPathEnabled();
  const data::Key* r_keys = r.keys();
  const data::Value* r_vals = r.payload(0);
  const data::Key* s_keys = s.keys();
  const data::Value* s_vals = s.payload(0);

  // --- Build phase ---
  exec::KernelConfig build_cfg;
  build_cfg.name = std::string("npj_build_") + HashSchemeName(config_.scheme);
  dev.Launch(build_cfg, [&](exec::KernelContext& ctx) {
    ctx.ReadSeq(r.key_buffer(), 0, r.rows() * sizeof(data::Key));
    ctx.ReadSeq(r.payload_buffer(0), 0, r.rows() * sizeof(data::Value));
    ctx.AddTuples(r.rows());
    ctx.Charge(static_cast<uint64_t>(r.rows() * kBuildCyclesPerTuple));

    switch (config_.scheme) {
      case HashScheme::kPerfect: {
        hash::Entry* slots = table->as<hash::Entry>();
        const uint64_t n = r.rows();
        for (uint64_t i = 0; i < n; ++i) {
          if (fast && i + kPrefetchDist < n) {
            __builtin_prefetch(
                &slots[static_cast<uint64_t>(r_keys[i + kPrefetchDist] - 1)],
                1);
          }
          uint64_t slot = static_cast<uint64_t>(r_keys[i] - 1);
          slots[slot] = {r_keys[i], r_vals[i]};
          ctx.WriteRand(*table, slot * sizeof(hash::Entry),
                        sizeof(hash::Entry));
        }
        break;
      }
      case HashScheme::kLinearProbing: {
        uint64_t capacity = table->size() / sizeof(hash::Entry);
        hash::LinearTable t(table->as<hash::Entry>(), capacity);
        hash::Entry* slots = table->as<hash::Entry>();
        const uint64_t n = r.rows();
        for (uint64_t i = 0; i < n; ++i) {
          if (fast && i + kPrefetchDist < n) {
            __builtin_prefetch(&slots[t.SlotOf(r_keys[i + kPrefetchDist])],
                               1);
          }
          uint64_t slot = t.SlotOf(r_keys[i]);
          while (slots[slot].key != 0) {
            ctx.ReadRand(*table, slot * sizeof(hash::Entry),
                         sizeof(hash::Entry));
            slot = t.NextSlot(slot);
          }
          slots[slot] = {r_keys[i], r_vals[i]};
          ctx.WriteRand(*table, slot * sizeof(hash::Entry),
                        sizeof(hash::Entry));
        }
        break;
      }
      case HashScheme::kBucketChaining: {
        uint64_t num_heads = util::NextPowerOfTwo(r.rows());
        uint64_t* heads = table->as<uint64_t>();
        Node* nodes = reinterpret_cast<Node*>(table->data() +
                                              num_heads * sizeof(uint64_t));
        uint32_t head_bits = util::FloorLog2(num_heads);
        const uint64_t n = r.rows();
        for (uint64_t i = 0; i < n; ++i) {
          if (fast && i + kPrefetchDist < n) {
            __builtin_prefetch(
                &heads[hash::HashBits(
                    hash::MultiplyShift(
                        static_cast<uint64_t>(r_keys[i + kPrefetchDist])),
                    0, head_bits)],
                1);
          }
          uint64_t b = hash::HashBits(
              hash::MultiplyShift(static_cast<uint64_t>(r_keys[i])), 0,
              head_bits);
          nodes[i] = {r_keys[i], r_vals[i], heads[b]};
          ctx.WriteRand(*table,
                        num_heads * sizeof(uint64_t) + i * sizeof(Node),
                        sizeof(Node));
          ctx.ReadRand(*table, b * sizeof(uint64_t), sizeof(uint64_t));
          ctx.WriteRand(*table, b * sizeof(uint64_t), sizeof(uint64_t));
          heads[b] = i + 1;
        }
        break;
      }
    }
  });

  // --- Probe phase ---
  uint64_t matches = 0;
  uint64_t checksum = 0;
  exec::KernelConfig probe_cfg;
  probe_cfg.name = std::string("npj_probe_") + HashSchemeName(config_.scheme);
  dev.Launch(probe_cfg, [&](exec::KernelContext& ctx) {
    ctx.ReadSeq(s.key_buffer(), 0, s.rows() * sizeof(data::Key));
    ctx.ReadSeq(s.payload_buffer(0), 0, s.rows() * sizeof(data::Value));
    ctx.AddTuples(s.rows());
    ctx.Charge(static_cast<uint64_t>(s.rows() * kProbeCyclesPerTuple));

    hash::Entry* out =
        result.valid() ? result.as<hash::Entry>() : nullptr;
    auto emit = [&](int64_t build_val, int64_t probe_val) {
      if (out != nullptr) out[matches] = {build_val, probe_val};
      ++matches;
      checksum += static_cast<uint64_t>(build_val) +
                  static_cast<uint64_t>(probe_val);
    };

    switch (config_.scheme) {
      case HashScheme::kPerfect: {
        const hash::Entry* slots = table->as<hash::Entry>();
        const uint64_t n = s.rows();
        const uint64_t r_rows = r.rows();
        for (uint64_t j = 0; j < n; ++j) {
          if (fast && j + kPrefetchDist < n) {
            data::Key pk = s_keys[j + kPrefetchDist];
            if (pk >= 1 && static_cast<uint64_t>(pk) <= r_rows) {
              __builtin_prefetch(&slots[static_cast<uint64_t>(pk - 1)]);
            }
          }
          data::Key k = s_keys[j];
          if (k < 1 || static_cast<uint64_t>(k) > r_rows) continue;
          uint64_t slot = static_cast<uint64_t>(k - 1);
          ctx.ReadRand(*table, slot * sizeof(hash::Entry),
                       sizeof(hash::Entry));
          if (slots[slot].key == k) emit(slots[slot].value, s_vals[j]);
        }
        break;
      }
      case HashScheme::kLinearProbing: {
        uint64_t capacity = table->size() / sizeof(hash::Entry);
        hash::LinearTable t(table->as<hash::Entry>(), capacity);
        const hash::Entry* slots = table->as<hash::Entry>();
        const uint64_t n = s.rows();
        for (uint64_t j = 0; j < n; ++j) {
          if (fast && j + kPrefetchDist < n) {
            __builtin_prefetch(&slots[t.SlotOf(s_keys[j + kPrefetchDist])]);
          }
          uint64_t slot = t.SlotOf(s_keys[j]);
          while (true) {
            ctx.ReadRand(*table, slot * sizeof(hash::Entry),
                         sizeof(hash::Entry));
            if (slots[slot].key == s_keys[j]) {
              emit(slots[slot].value, s_vals[j]);
              break;
            }
            if (slots[slot].key == 0) break;
            slot = t.NextSlot(slot);
          }
        }
        break;
      }
      case HashScheme::kBucketChaining: {
        uint64_t num_heads = util::NextPowerOfTwo(r.rows());
        const uint64_t* heads = table->as<uint64_t>();
        const Node* nodes = reinterpret_cast<const Node*>(
            table->data() + num_heads * sizeof(uint64_t));
        uint32_t head_bits = util::FloorLog2(num_heads);
        const uint64_t n = s.rows();
        // Two prefetch distances: the far one covers the bucket head, the
        // near one reads the (by then cached, read-only) head to prefetch
        // the first chain node.
        constexpr uint64_t kNodeDist = 8;
        for (uint64_t j = 0; j < n; ++j) {
          if (fast) {
            if (j + kPrefetchDist < n) {
              __builtin_prefetch(&heads[hash::HashBits(
                  hash::MultiplyShift(
                      static_cast<uint64_t>(s_keys[j + kPrefetchDist])),
                  0, head_bits)]);
            }
            if (j + kNodeDist < n) {
              uint64_t hb = hash::HashBits(
                  hash::MultiplyShift(
                      static_cast<uint64_t>(s_keys[j + kNodeDist])),
                  0, head_bits);
              uint64_t c = heads[hb];
              if (c != 0) __builtin_prefetch(&nodes[c - 1]);
            }
          }
          uint64_t b = hash::HashBits(
              hash::MultiplyShift(static_cast<uint64_t>(s_keys[j])), 0,
              head_bits);
          ctx.ReadRand(*table, b * sizeof(uint64_t), sizeof(uint64_t));
          for (uint64_t cur = heads[b]; cur != 0; cur = nodes[cur - 1].next) {
            ctx.ReadRand(*table,
                         num_heads * sizeof(uint64_t) +
                             (cur - 1) * sizeof(Node),
                         sizeof(Node));
            if (nodes[cur - 1].key == s_keys[j]) {
              emit(nodes[cur - 1].value, s_vals[j]);
            }
          }
        }
        break;
      }
    }

    // Materialized results stream out through per-warp linear-allocator
    // buffers: sequential, coalesced writes.
    if (result.valid() && matches > 0) {
      ctx.WriteSeq(result, 0, matches * sizeof(hash::Entry));
    }
  });

  run.matches = matches;
  run.checksum = checksum;
  run.phases = dev.trace();
  for (const auto& p : run.phases) run.totals.Merge(p.counters);
  run.elapsed = dev.TraceElapsed();

  dev.allocator().Free(*table);
  if (result.valid()) dev.allocator().Free(result);
  return run;
}

}  // namespace triton::join
