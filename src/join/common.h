// Shared definitions for all join algorithms.

#ifndef TRITON_JOIN_COMMON_H_
#define TRITON_JOIN_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/relation.h"
#include "exec/device.h"
#include "sim/perf_counters.h"
#include "util/status.h"

namespace triton::join {

/// Hash-table scheme (Section 6.1: perfect hashing / array join for dense
/// primary keys, linear probing at 50% load, bucket chaining with 2048
/// buckets for the partitioned joins).
enum class HashScheme { kPerfect, kLinearProbing, kBucketChaining };

const char* HashSchemeName(HashScheme scheme);

/// How join matches are emitted.
enum class ResultMode {
  /// Matches are materialized as <build-payload, probe-payload> pairs into
  /// a CPU-memory result buffer (the paper's general case: results can
  /// exceed GPU memory).
  kMaterialize,
  /// Matches are aggregated into a per-thread checksum folded with an
  /// atomic add (the paper's alternative; no result transfers).
  kAggregate,
};

/// Outcome of one join execution.
struct JoinRun {
  /// Number of matches found (PK/FK workloads: exactly |S|).
  uint64_t matches = 0;
  /// Checksum over all matched pairs (sum of build+probe payloads); lets
  /// tests validate contents without materializing.
  uint64_t checksum = 0;
  /// Simulated end-to-end time in seconds (pipelining/overlap applied).
  double elapsed = 0.0;
  /// Per-phase kernel records, in execution order.
  std::vector<exec::KernelRecord> phases;
  /// Merged counters over all phases.
  sim::PerfCounters totals;

  /// The paper's throughput metric: (|R| + |S|) / runtime.
  double Throughput(uint64_t r_tuples, uint64_t s_tuples) const {
    return elapsed > 0.0
               ? static_cast<double>(r_tuples + s_tuples) / elapsed
               : 0.0;
  }

  /// Sums the elapsed times of phases whose name contains `substr`.
  double PhaseTime(const std::string& substr) const;
};

/// Reference checksum for validation: sum over all matching (r, s) pairs of
/// (r.payload + s.payload). Brute force; use on small inputs only.
uint64_t ReferenceChecksum(const data::Relation& r, const data::Relation& s);

}  // namespace triton::join

#endif  // TRITON_JOIN_COMMON_H_
