#include "join/cpu_partitioned_join.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "join/scratch_join.h"
#include "partition/cpu_swwc.h"
#include "partition/input.h"
#include "partition/layout.h"
#include "partition/prefix_sum.h"
#include "partition/shared.h"
#include "util/bits.h"

namespace triton::join {

namespace {

/// Derives the first-pass bits so a partition pair plus its refined copy
/// (staging + second-pass output, double-buffered) fits the GPU memory:
/// pairs are limited to a quarter of the capacity.
uint32_t DeriveBits1(const sim::HwSpec& hw, uint64_t total_bytes) {
  uint64_t quarter = hw.gpu_mem.capacity / 4;
  uint32_t bits = util::CeilLog2(util::CeilDiv(total_bytes, quarter));
  return std::clamp(bits, 1u, 12u);
}

/// Derives the total bits so build partitions fit the scratchpad table.
uint32_t DeriveTotalBits(uint64_t r_tuples, uint32_t scratch_tuples) {
  return util::CeilLog2(
      util::CeilDiv(r_tuples, std::max<uint64_t>(scratch_tuples / 2, 1)));
}

}  // namespace

util::StatusOr<JoinRun> CpuPartitionedJoin::Run(exec::Device& dev,
                                                const data::Relation& r,
                                                const data::Relation& s) {
  JoinRun run;
  const uint64_t total_bytes =
      (r.rows() + s.rows()) * sizeof(partition::Tuple);
  ScratchJoiner joiner(config_.scheme, dev.hw().gpu.scratchpad_bytes);
  const uint32_t bits1 = config_.bits1 != 0
                             ? config_.bits1
                             : DeriveBits1(dev.hw(), total_bytes);
  uint32_t total_bits =
      std::max(DeriveTotalBits(r.rows(), joiner.MaxBuildTuples()), bits1);
  const uint32_t bits2 =
      config_.bits2 != 0 ? config_.bits2 : total_bits - bits1;

  dev.ClearTrace();
  partition::RadixConfig radix1{0, bits1};
  const uint32_t cpu_blocks = dev.hw().cpu.cores;

  // --- CPU partitions both relations into CPU memory ---
  partition::ColumnInput r_in = partition::ColumnInput::Of(r);
  partition::ColumnInput s_in = partition::ColumnInput::Of(s);
  partition::PartitionLayout r_layout1(
      radix1, partition::ComputeHistograms(r_in, radix1, cpu_blocks), 8);
  partition::PartitionLayout s_layout1(
      radix1, partition::ComputeHistograms(s_in, radix1, cpu_blocks), 8);
  auto r_part = dev.allocator().AllocateCpu(r_layout1.padded_tuples() *
                                            sizeof(partition::Tuple));
  if (!r_part.ok()) return r_part.status();
  auto s_part = dev.allocator().AllocateCpu(s_layout1.padded_tuples() *
                                            sizeof(partition::Tuple));
  if (!s_part.ok()) return s_part.status();

  partition::CpuSwwcPartitioner cpu_partitioner;
  partition::PartitionOptions copts;
  copts.name = "cpu_partition_r";
  cpu_partitioner.PartitionColumns(dev, r_in, r_layout1, *r_part, copts);
  copts.name = "cpu_partition_s";
  cpu_partitioner.PartitionColumns(dev, s_in, s_layout1, *s_part, copts);

  // --- Working-set staging in GPU memory ---
  uint64_t max_pair = 0;
  for (uint32_t p = 0; p < radix1.fanout(); ++p) {
    max_pair = std::max(max_pair, r_layout1.PartitionSize(p) +
                                      s_layout1.PartitionSize(p));
  }
  auto staging = dev.allocator().AllocateGpu(
      std::max<uint64_t>(max_pair, 1) * sizeof(partition::Tuple));
  if (!staging.ok()) return staging.status();

  mem::Buffer result;
  if (config_.result_mode == ResultMode::kMaterialize) {
    auto res =
        dev.allocator().AllocateCpu(s.rows() * sizeof(partition::Tuple));
    if (!res.ok()) return res.status();
    result = std::move(res).value();
  }

  uint64_t matches = 0, checksum = 0, result_cursor = 0;
  partition::SharedPartitioner gpu_partitioner;
  const uint32_t gpu_blocks = dev.hw().gpu.num_sms;

  for (uint32_t p = 0; p < radix1.fanout(); ++p) {
    uint64_t r_n = r_layout1.PartitionSize(p);
    uint64_t s_n = s_layout1.PartitionSize(p);
    if (r_n == 0 || s_n == 0) continue;

    // Transfer the working set to GPU memory (copy engines stream the
    // partition pair; functional compaction drops the alignment gaps).
    partition::Tuple* stage = staging->as<partition::Tuple>();
    dev.Launch({.name = "transfer"}, [&](exec::KernelContext& ctx) {
      uint64_t cursor = 0;
      auto copy_slices = [&](const mem::Buffer& src,
                             const partition::PartitionLayout& layout) {
        layout.ForEachSlice(p, [&](uint64_t begin, uint64_t count) {
          ctx.ReadSeq(src, begin * sizeof(partition::Tuple),
                      count * sizeof(partition::Tuple));
          std::memcpy(stage + cursor,
                      src.as<partition::Tuple>() + begin,
                      count * sizeof(partition::Tuple));
          cursor += count;
        });
      };
      copy_slices(*r_part, r_layout1);
      copy_slices(*s_part, s_layout1);
      ctx.WriteSeq(*staging, 0, cursor * sizeof(partition::Tuple));
      ctx.AddTuples(r_n + s_n);
    });

    partition::RowInput r_rows(&*staging, 0, r_n);
    partition::RowInput s_rows(&*staging, r_n, s_n);

    if (bits2 == 0) {
      // Partitions are already scratchpad-sized: join directly.
      dev.Launch({.name = "join"}, [&](exec::KernelContext& ctx) {
        joiner.JoinRange(ctx, *staging, 0, r_n, r_n, s_n, bits1,
                         result.valid() ? &result : nullptr, &result_cursor,
                         &matches, &checksum);
      });
      continue;
    }

    // --- GPU second pass (in GPU memory) ---
    partition::RadixConfig radix2{bits1, bits2};
    partition::PrefixSumOptions ps_opts;
    ps_opts.name = "prefix_sum2";
    partition::PartitionLayout r_layout2 =
        GpuPrefixSum(dev, r_rows, radix2, gpu_blocks, ps_opts);
    partition::PartitionLayout s_layout2 =
        GpuPrefixSum(dev, s_rows, radix2, gpu_blocks, ps_opts);
    auto r2 = dev.allocator().AllocateGpu(r_layout2.padded_tuples() *
                                          sizeof(partition::Tuple));
    if (!r2.ok()) return r2.status();
    auto s2 = dev.allocator().AllocateGpu(s_layout2.padded_tuples() *
                                          sizeof(partition::Tuple));
    if (!s2.ok()) return s2.status();
    partition::PartitionOptions popts;
    popts.name = "partition2";
    gpu_partitioner.PartitionRows(dev, r_rows, r_layout2, *r2, popts);
    gpu_partitioner.PartitionRows(dev, s_rows, s_layout2, *s2, popts);

    // --- Join the refined pairs (one thread block per pair; matches are
    // staged per block and materialized in partition order, so results and
    // accounting are independent of the executor's thread count) ---
    dev.Launch({.name = "join"}, [&](exec::KernelContext& ctx) {
      const uint32_t fan2 = radix2.fanout();
      struct BlockOut {
        std::vector<partition::Tuple> pairs;
        uint64_t matches = 0;
        uint64_t checksum = 0;
      };
      std::vector<BlockOut> outs(fan2);
      ctx.ForEachBlock(fan2, [&](exec::KernelContext& sub, uint32_t q) {
        sub.SetSanitizerBlock(q);
        std::vector<std::pair<uint64_t, uint64_t>> r_sl, s_sl;
        r_layout2.ForEachSlice(
            q, [&](uint64_t b, uint64_t c) { r_sl.emplace_back(b, c); });
        s_layout2.ForEachSlice(
            q, [&](uint64_t b, uint64_t c) { s_sl.emplace_back(b, c); });
        ScratchJoiner block_joiner(config_.scheme,
                                   dev.hw().gpu.scratchpad_bytes);
        BlockOut& out = outs[q];
        block_joiner.JoinSlicesEmit(
            sub, *r2, r_sl, *s2, s_sl, bits1 + bits2,
            [&](int64_t build_val, int64_t probe_val) {
              if (result.valid()) {
                out.pairs.push_back(partition::Tuple{build_val, probe_val});
              }
              ++out.matches;
              out.checksum += static_cast<uint64_t>(build_val) +
                              static_cast<uint64_t>(probe_val);
            });
      });
      for (uint32_t q = 0; q < fan2; ++q) {
        BlockOut& out = outs[q];
        matches += out.matches;
        checksum += out.checksum;
        if (!out.pairs.empty()) {
          uint64_t at = result_cursor;
          for (const partition::Tuple& t : out.pairs) {
            ctx.Store(result, result_cursor++, t);
          }
          ctx.WriteSeq(result, at * sizeof(partition::Tuple),
                       out.pairs.size() * sizeof(partition::Tuple));
        }
      }
    });
    dev.allocator().Free(*r2);
    dev.allocator().Free(*s2);
  }

  run.matches = matches;
  run.checksum = checksum;
  run.phases = dev.trace();
  for (const auto& ph : run.phases) run.totals.Merge(ph.counters);

  // Overlap model (Sections 3.1 / 6.2.4): R must be fully partitioned
  // before the GPU starts. The strategy overlaps the *transfer* of R's
  // working sets with the partitioning of S (the paper's description), but
  // the GPU-side second pass and join serialize behind the CPU — the CPU's
  // partitioning rate cannot keep the GPU busy, which is exactly the
  // paper's argument against this strategy.
  double t_part_r = run.PhaseTime("cpu_partition_r");
  double t_part_s = run.PhaseTime("cpu_partition_s");
  double t_transfer = run.PhaseTime("transfer");
  double t_gpu = run.PhaseTime("prefix_sum2") + run.PhaseTime("partition2") +
                 run.PhaseTime("join");
  run.elapsed = t_part_r + std::max(t_part_s, t_transfer) + t_gpu;

  dev.allocator().Free(*r_part);
  dev.allocator().Free(*s_part);
  dev.allocator().Free(*staging);
  if (result.valid()) dev.allocator().Free(result);
  return run;
}

}  // namespace triton::join
