#include "join/scratch_join.h"

#include <algorithm>
#include <vector>

#include "hash/bucket_chain_table.h"
#include "util/fastpath.h"
#include "util/logging.h"

namespace triton::join {

namespace {

constexpr uint32_t kBuckets = hash::BucketChainTable::kDefaultBuckets;

}  // namespace

ScratchJoiner::ScratchJoiner(HashScheme scheme, uint64_t scratchpad_bytes)
    : scheme_(scheme) {
  if (scheme_ == HashScheme::kPerfect) {
    // Array join: no chain pointers to follow.
    costs_.build_cycles = 5.0;
    costs_.probe_cycles = 4.0;
  }
  // Table storage per build tuple: key + value + next link; the bucket
  // heads take 4 bytes each.
  uint64_t head_bytes = kBuckets * sizeof(uint32_t);
  uint64_t per_tuple = 2 * sizeof(int64_t) + sizeof(uint32_t);
  uint64_t cap = scratchpad_bytes > head_bytes
                     ? (scratchpad_bytes - head_bytes) / per_tuple
                     : 256;
  max_build_tuples_ = static_cast<uint32_t>(std::max<uint64_t>(cap, 256));
  heads_.assign(kBuckets, 0);
  keys_.resize(max_build_tuples_);
  values_.resize(max_build_tuples_);
  next_.resize(max_build_tuples_);
}

void ScratchJoiner::JoinSlicesEmit(
    exec::KernelContext& ctx, const mem::Buffer& r_rows,
    const std::vector<std::pair<uint64_t, uint64_t>>& r_slices,
    const mem::Buffer& s_rows,
    const std::vector<std::pair<uint64_t, uint64_t>>& s_slices,
    uint32_t radix_shift,
    const std::function<void(int64_t, int64_t)>& emit) {
  const partition::Tuple* r_data = r_rows.as<partition::Tuple>();
  const partition::Tuple* s_data = s_rows.as<partition::Tuple>();

  uint64_t r_total = 0, s_total = 0;
  for (const auto& [b, c] : r_slices) {
    (void)b;
    r_total += c;
  }
  for (const auto& [b, c] : s_slices) {
    (void)b;
    s_total += c;
  }
  if (r_total == 0 || s_total == 0) return;

  size_t slice_idx = 0;
  uint64_t slice_pos = 0;
  while (slice_idx < r_slices.size()) {
    // --- Build chunk ---
    std::fill(heads_.begin(), heads_.end(), 0u);
    hash::BucketChainTable table(heads_.data(), kBuckets, keys_.data(),
                                 values_.data(), next_.data(),
                                 max_build_tuples_);
    uint64_t built = 0;
    while (slice_idx < r_slices.size() && built < max_build_tuples_) {
      auto [begin, count] = r_slices[slice_idx];
      uint64_t take =
          std::min<uint64_t>(count - slice_pos, max_build_tuples_ - built);
      ctx.ReadSeq(r_rows, (begin + slice_pos) * sizeof(partition::Tuple),
                  take * sizeof(partition::Tuple));
      for (uint64_t i = 0; i < take; ++i) {
        const partition::Tuple& t = r_data[begin + slice_pos + i];
        table.Insert(t.key, t.value, radix_shift);
      }
      built += take;
      slice_pos += take;
      if (slice_pos == count) {
        ++slice_idx;
        slice_pos = 0;
      }
    }
    ctx.Charge(static_cast<uint64_t>(built * costs_.build_cycles));

    // --- Probe chunk: stream all of S against this build chunk ---
    for (const auto& [begin, count] : s_slices) {
      ctx.ReadSeq(s_rows, begin * sizeof(partition::Tuple),
                  count * sizeof(partition::Tuple));
      for (uint64_t i = begin; i < begin + count; ++i) {
        const partition::Tuple& t = s_data[i];
        table.Probe(t.key, radix_shift, [&](int64_t build_val) {
          emit(build_val, t.value);
        });
      }
    }
    ctx.Charge(static_cast<uint64_t>(s_total * costs_.probe_cycles));
    ctx.AddTuples(built + s_total);
  }
}

void ScratchJoiner::JoinSlices(
    exec::KernelContext& ctx, const mem::Buffer& r_rows,
    const std::vector<std::pair<uint64_t, uint64_t>>& r_slices,
    const mem::Buffer& s_rows,
    const std::vector<std::pair<uint64_t, uint64_t>>& s_slices,
    uint32_t radix_shift, mem::Buffer* result, uint64_t* result_cursor,
    uint64_t* matches, uint64_t* checksum) {
  const uint64_t first_matches = *matches;
  // Fast path: stage matches in a chunk and store each chunk in one bulk
  // write. Store order — and therefore the shadow write ranges — is
  // identical to the per-match path.
  const bool fast = util::FastPathEnabled() && result != nullptr;
  constexpr uint64_t kChunkTuples = 4096;
  std::vector<partition::Tuple> chunk;
  if (fast) chunk.reserve(kChunkTuples);
  auto drain_chunk = [&] {
    if (chunk.empty()) return;
    ctx.StoreRun(*result, *result_cursor, chunk.data(), chunk.size());
    *result_cursor += chunk.size();
    chunk.clear();
  };
  JoinSlicesEmit(ctx, r_rows, r_slices, s_rows, s_slices, radix_shift,
                 [&](int64_t build_val, int64_t probe_val) {
                   if (fast) {
                     chunk.push_back(partition::Tuple{build_val, probe_val});
                     if (chunk.size() == kChunkTuples) drain_chunk();
                   } else if (result != nullptr) {
                     ctx.Store(*result, *result_cursor,
                               partition::Tuple{build_val, probe_val});
                     ++*result_cursor;
                   }
                   ++*matches;
                   *checksum += static_cast<uint64_t>(build_val) +
                                static_cast<uint64_t>(probe_val);
                 });
  if (fast) drain_chunk();

  // Materialized matches stream out through coalesced linear-allocator
  // writes.
  uint64_t emitted = *matches - first_matches;
  if (result != nullptr && emitted > 0) {
    ctx.WriteSeq(*result,
                 (*result_cursor - emitted) * sizeof(partition::Tuple),
                 emitted * sizeof(partition::Tuple));
  }
}

void ScratchJoiner::JoinPartition(
    exec::KernelContext& ctx, const mem::Buffer& r_rows,
    const partition::PartitionLayout& r_layout, const mem::Buffer& s_rows,
    const partition::PartitionLayout& s_layout, uint32_t p,
    uint32_t radix_shift, mem::Buffer* result, uint64_t* result_cursor,
    uint64_t* matches, uint64_t* checksum) {
  std::vector<std::pair<uint64_t, uint64_t>> r_slices, s_slices;
  r_layout.ForEachSlice(p, [&](uint64_t begin, uint64_t count) {
    r_slices.emplace_back(begin, count);
  });
  s_layout.ForEachSlice(p, [&](uint64_t begin, uint64_t count) {
    s_slices.emplace_back(begin, count);
  });
  JoinSlices(ctx, r_rows, r_slices, s_rows, s_slices, radix_shift, result,
             result_cursor, matches, checksum);
}

void ScratchJoiner::JoinRange(exec::KernelContext& ctx,
                              const mem::Buffer& rows, uint64_t r_offset,
                              uint64_t r_count, uint64_t s_offset,
                              uint64_t s_count, uint32_t radix_shift,
                              mem::Buffer* result, uint64_t* result_cursor,
                              uint64_t* matches, uint64_t* checksum) {
  JoinSlices(ctx, rows, {{r_offset, r_count}}, rows, {{s_offset, s_count}},
             radix_shift, result, result_cursor, matches, checksum);
}

}  // namespace triton::join
