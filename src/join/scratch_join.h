// Scratchpad-resident partition-pair join kernel.
//
// The final stage of every radix-partitioned GPU join (Triton's join phase,
// the CPU-partitioned join's GPU side): for one partition pair (R_p, S_p),
// build a bucket-chaining hash table over R_p in scratchpad memory
// (Section 6.1: 2048 bucket heads), probe it with S_p, and emit matches.
// If R_p exceeds the scratchpad capacity, the build side is processed in
// chunks and S_p is re-probed per chunk (graceful degradation instead of a
// failure; well-chosen radix bits avoid this).

#ifndef TRITON_JOIN_SCRATCH_JOIN_H_
#define TRITON_JOIN_SCRATCH_JOIN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "exec/device.h"
#include "join/common.h"
#include "mem/buffer.h"
#include "partition/layout.h"

namespace triton::join {

/// SM-cycles per tuple for the scratchpad join (build / probe). The
/// perfect-hashing (array join) variant saves the chain walk; the paper
/// measures it within 0-2% of bucket chaining for partitioned joins.
struct ScratchJoinCosts {
  double build_cycles = 6.0;
  double probe_cycles = 5.0;
};

/// Per-pair join executor; reusable across partitions (table storage is
/// recycled).
class ScratchJoiner {
 public:
  /// `scheme` selects cost constants; the functional path is identical.
  ScratchJoiner(HashScheme scheme, uint64_t scratchpad_bytes);

  /// Joins partition `p` of the two partitioned relations. Accounts reads
  /// of both partitions on `ctx`, charges per-tuple cycles and updates
  /// `matches`/`checksum`. When `result` is non-null, matched pairs are
  /// appended at `*result_cursor` (in entries) and the cursor advances;
  /// result writes are accounted as streamed output.
  void JoinPartition(exec::KernelContext& ctx, const mem::Buffer& r_rows,
                     const partition::PartitionLayout& r_layout,
                     const mem::Buffer& s_rows,
                     const partition::PartitionLayout& s_layout, uint32_t p,
                     uint32_t radix_shift, mem::Buffer* result,
                     uint64_t* result_cursor, uint64_t* matches,
                     uint64_t* checksum);

  /// Joins two contiguous tuple ranges (offsets/counts in tuples) of one
  /// buffer: used when first-pass partitions are already scratchpad-sized.
  void JoinRange(exec::KernelContext& ctx, const mem::Buffer& rows,
                 uint64_t r_offset, uint64_t r_count, uint64_t s_offset,
                 uint64_t s_count, uint32_t radix_shift, mem::Buffer* result,
                 uint64_t* result_cursor, uint64_t* matches,
                 uint64_t* checksum);

  /// Core: joins slice lists (tuple offset, count) over two row buffers.
  void JoinSlices(exec::KernelContext& ctx, const mem::Buffer& r_rows,
                  const std::vector<std::pair<uint64_t, uint64_t>>& r_slices,
                  const mem::Buffer& s_rows,
                  const std::vector<std::pair<uint64_t, uint64_t>>& s_slices,
                  uint32_t radix_shift, mem::Buffer* result,
                  uint64_t* result_cursor, uint64_t* matches,
                  uint64_t* checksum);

  /// Emit-callback core JoinSlices is built on: same chunked build/probe
  /// accounting (partition reads, build/probe cycles, tuple counts), but
  /// every match is handed to `emit(build_value, probe_value)` instead of
  /// being written to a result buffer. Parallel callers stage matches per
  /// partition and materialize them in partition order afterwards, so
  /// result writes stay deterministic across thread counts.
  void JoinSlicesEmit(
      exec::KernelContext& ctx, const mem::Buffer& r_rows,
      const std::vector<std::pair<uint64_t, uint64_t>>& r_slices,
      const mem::Buffer& s_rows,
      const std::vector<std::pair<uint64_t, uint64_t>>& s_slices,
      uint32_t radix_shift,
      const std::function<void(int64_t, int64_t)>& emit);

  /// Maximum build tuples the scratchpad table holds alongside the bucket
  /// heads.
  uint32_t MaxBuildTuples() const { return max_build_tuples_; }

  const ScratchJoinCosts& costs() const { return costs_; }

 private:
  HashScheme scheme_;
  ScratchJoinCosts costs_;
  uint32_t max_build_tuples_;
  // Recycled table storage.
  std::vector<uint32_t> heads_;
  std::vector<int64_t> keys_;
  std::vector<int64_t> values_;
  std::vector<uint32_t> next_;
};

}  // namespace triton::join

#endif  // TRITON_JOIN_SCRATCH_JOIN_H_
