// Multi-core CPU radix-partitioned hash join baseline (Section 6.1,
// following Balkesen et al. / Barthels et al., ported to POWER9 by the
// paper; Figure 13's "CPU Radix Join" series).
//
// Both relations are radix-partitioned with software write-combining so
// that each partition's hash table fits into the per-core LLC share; the
// partitions are then joined core-locally. The simulated time uses the
// analytic multi-core model of partition/cpu_swwc.h plus a per-core join
// rate; the join itself runs functionally so results are exact. A CpuSpec
// selects the processor (POWER9 default, Xeon Gold 6126 preset for the
// second baseline), which drives the single- vs two-pass partitioning
// switch the paper observes on the Xeon.

#ifndef TRITON_JOIN_CPU_RADIX_JOIN_H_
#define TRITON_JOIN_CPU_RADIX_JOIN_H_

#include <cstdint>

#include "data/relation.h"
#include "exec/device.h"
#include "join/common.h"
#include "sim/hw_spec.h"
#include "util/status.h"

namespace triton::join {

/// Configuration of the CPU radix join.
struct CpuRadixJoinConfig {
  /// kBucketChaining or kPerfect (the array-join / perfect-hashing variant,
  /// 6-16% faster in the paper).
  HashScheme scheme = HashScheme::kBucketChaining;
  ResultMode result_mode = ResultMode::kMaterialize;
  /// Radix bits; 0 = derive from |R| and the LLC (the paper's 12-14 bits).
  uint32_t bits = 0;
  /// Processor model; null = the device's host CPU (POWER9).
  const sim::CpuSpec* cpu = nullptr;
};

/// Radix bits the CPU join needs so each partition's table fits the LLC.
uint32_t CpuRadixBits(const sim::CpuSpec& cpu, uint64_t r_tuples);

/// CPU radix-partitioned hash join; see file comment.
class CpuRadixJoin {
 public:
  explicit CpuRadixJoin(CpuRadixJoinConfig config = {}) : config_(config) {}

  util::StatusOr<JoinRun> Run(exec::Device& dev, const data::Relation& r,
                              const data::Relation& s);

  const CpuRadixJoinConfig& config() const { return config_; }

 private:
  CpuRadixJoinConfig config_;
};

}  // namespace triton::join

#endif  // TRITON_JOIN_CPU_RADIX_JOIN_H_
