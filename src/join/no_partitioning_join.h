// GPU no-partitioning hash join (the baseline of Figures 1, 13, 14, 19, 21).
//
// Builds one global hash table over R and probes it with S. The table is
// placed in GPU memory as long as it fits (optionally only a cached
// fraction, Figure 19); anything beyond the GPU capacity spills to CPU
// memory, where every probe becomes a random 16-byte access over the
// interconnect — and, once the table exceeds the GPU TLB reach, nearly
// every access also costs an IOMMU translation. That is the paper's
// performance cliff: with linear probing the 50% load factor doubles the
// table size, blowing the TLB range and collapsing throughput by 400x
// versus perfect hashing (Section 6.2.2).

#ifndef TRITON_JOIN_NO_PARTITIONING_JOIN_H_
#define TRITON_JOIN_NO_PARTITIONING_JOIN_H_

#include <cstdint>

#include "data/relation.h"
#include "exec/device.h"
#include "join/common.h"
#include "util/status.h"

namespace triton::join {

/// Configuration of the no-partitioning join.
struct NoPartitioningJoinConfig {
  HashScheme scheme = HashScheme::kPerfect;
  ResultMode result_mode = ResultMode::kMaterialize;
  /// GPU-memory bytes granted to the hash table (the Figure 19 cache-size
  /// knob). UINT64_MAX places as much of the table in GPU memory as fits.
  uint64_t cache_bytes = UINT64_MAX;
};

/// Size in bytes of the global hash table for `r_tuples` build tuples.
uint64_t NpjTableBytes(HashScheme scheme, uint64_t r_tuples);

/// No-partitioning hash join; see file comment.
class NoPartitioningJoin {
 public:
  explicit NoPartitioningJoin(NoPartitioningJoinConfig config = {})
      : config_(config) {}

  /// Joins r (build, primary keys) with s (probe). Returns match count,
  /// checksum and simulated timing.
  util::StatusOr<JoinRun> Run(exec::Device& dev, const data::Relation& r,
                              const data::Relation& s);

  const NoPartitioningJoinConfig& config() const { return config_; }

 private:
  NoPartitioningJoinConfig config_;
};

}  // namespace triton::join

#endif  // TRITON_JOIN_NO_PARTITIONING_JOIN_H_
