#include "join/common.h"

#include <unordered_map>

namespace triton::join {

const char* HashSchemeName(HashScheme scheme) {
  switch (scheme) {
    case HashScheme::kPerfect:
      return "Perfect";
    case HashScheme::kLinearProbing:
      return "LinearProbing";
    case HashScheme::kBucketChaining:
      return "BucketChaining";
  }
  return "Unknown";
}

double JoinRun::PhaseTime(const std::string& substr) const {
  double total = 0.0;
  for (const auto& p : phases) {
    if (p.name.find(substr) != std::string::npos) total += p.Elapsed();
  }
  return total;
}

uint64_t ReferenceChecksum(const data::Relation& r, const data::Relation& s) {
  std::unordered_multimap<data::Key, data::Value> index;
  index.reserve(r.rows() * 2);
  for (uint64_t i = 0; i < r.rows(); ++i) {
    index.emplace(r.keys()[i], r.payload(0)[i]);
  }
  uint64_t checksum = 0;
  for (uint64_t j = 0; j < s.rows(); ++j) {
    auto [lo, hi] = index.equal_range(s.keys()[j]);
    for (auto it = lo; it != hi; ++it) {
      checksum += static_cast<uint64_t>(it->second) +
                  static_cast<uint64_t>(s.payload(0)[j]);
    }
  }
  return checksum;
}

}  // namespace triton::join
