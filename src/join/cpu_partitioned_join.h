// CPU-partitioned GPU join — the state-of-the-art strategy of Section 3.1
// (reimplementation of Sioulas et al., optimized for POWER9 + NVLink as in
// Section 6.2.4 / Figure 16).
//
// The CPU radix-partitions both relations into working sets that fit GPU
// memory; working sets are DMA-transferred to the GPU, which refines them
// with a second partitioning pass in GPU memory and joins them in
// scratchpad. Transfers and GPU work pipeline against the CPU's
// partitioning of the outer relation. The strategy's weakness is exactly
// the paper's argument: the CPU's partitioning rate (~29 GiB/s) cannot
// keep a 63 GiB/s interconnect busy, so the GPU starves.

#ifndef TRITON_JOIN_CPU_PARTITIONED_JOIN_H_
#define TRITON_JOIN_CPU_PARTITIONED_JOIN_H_

#include <cstdint>

#include "data/relation.h"
#include "exec/device.h"
#include "join/common.h"
#include "util/status.h"

namespace triton::join {

/// Configuration of the CPU-partitioned join strategy.
struct CpuPartitionedJoinConfig {
  HashScheme scheme = HashScheme::kBucketChaining;
  ResultMode result_mode = ResultMode::kMaterialize;
  /// First-pass radix bits; 0 = derive so a partition pair fits in half
  /// the GPU memory.
  uint32_t bits1 = 0;
  /// Second-pass (GPU) radix bits; 0 = derive so partitions fit scratchpad.
  uint32_t bits2 = 0;
};

/// CPU-partitioned GPU join; see file comment.
class CpuPartitionedJoin {
 public:
  explicit CpuPartitionedJoin(CpuPartitionedJoinConfig config = {})
      : config_(config) {}

  util::StatusOr<JoinRun> Run(exec::Device& dev, const data::Relation& r,
                              const data::Relation& s);

  const CpuPartitionedJoinConfig& config() const { return config_; }

 private:
  CpuPartitionedJoinConfig config_;
};

}  // namespace triton::join

#endif  // TRITON_JOIN_CPU_PARTITIONED_JOIN_H_
