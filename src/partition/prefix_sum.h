// Prefix-sum (histogram) phase of radix partitioning, on GPU or CPU.
//
// The prefix sum reads only the key column of the input (one column per
// relation thanks to the columnar layout — Section 6.2.8), builds
// per-block histograms, and converts them into the padded partition-major
// layout. Either processor can run it: the GPU streams the keys over the
// interconnect (bounded by link bandwidth, ~63 GiB/s), while the CPU scans
// at memory bandwidth (up to ~130 GiB/s) — the Figure 20 comparison.

#ifndef TRITON_PARTITION_PREFIX_SUM_H_
#define TRITON_PARTITION_PREFIX_SUM_H_

#include <string>

#include "exec/device.h"
#include "partition/layout.h"
#include "partition/radix.h"
#include "util/units.h"

namespace triton::partition {

/// SM-cycles charged per tuple by the GPU prefix-sum kernel (hash + local
/// histogram increment; calibrated against the paper's time breakdown).
inline constexpr double kPrefixSumCyclesPerTuple = 3.0;

/// Number of tuples the GPU prefix sum copies into GPU memory alongside
/// counting when the destination pass spills (the paper's prefix sum
/// copies data to avoid redundant transfers; modelled by callers).
struct PrefixSumOptions {
  /// SMs allocated (0 = all).
  uint32_t sms = 0;
  /// Slice alignment in tuples (flush coalescing); 8 tuples = 128 bytes.
  uint32_t pad_tuples = 8;
  /// Kernel name in the device trace.
  std::string name = "prefix_sum";
};

/// Runs the prefix sum on the GPU over `input` split into `num_blocks`
/// chunks. Returns the layout; the kernel is recorded in the device trace.
template <typename Input>
PartitionLayout GpuPrefixSum(exec::Device& dev, const Input& input,
                             RadixConfig radix, uint32_t num_blocks,
                             const PrefixSumOptions& opts = {}) {
  PartitionLayout layout;
  exec::KernelConfig cfg;
  cfg.name = opts.name;
  cfg.sms = opts.sms;
  dev.Launch(cfg, [&](exec::KernelContext& ctx) {
    const uint64_t n = input.size();
    const uint64_t chunk = (n + num_blocks - 1) / num_blocks;
    std::vector<std::vector<uint64_t>> histograms(
        num_blocks, std::vector<uint64_t>(radix.fanout(), 0));
    ctx.ForEachBlock(num_blocks, [&](exec::KernelContext& sub, uint32_t b) {
      uint64_t begin = static_cast<uint64_t>(b) * chunk;
      uint64_t end = std::min(n, begin + chunk);
      if (begin >= end) return;
      sub.SetSanitizerBlock(b);
      // Per-block copy: sliced inputs cache a slice cursor in Get().
      Input block_input = input;
      block_input.AccountReadKeys(sub, begin, end);
      ComputeBlockHistogram(block_input, radix, begin, end, histograms[b]);
    });
    layout = PartitionLayout(radix, histograms, opts.pad_tuples);
    ctx.AddTuples(n);
    ctx.Charge(static_cast<uint64_t>(n * kPrefixSumCyclesPerTuple));
  });
  return layout;
}

/// Runs the prefix sum on the CPU: functionally identical, but timed by the
/// CPU's scan bandwidth and recorded as a CPU phase in the device trace.
template <typename Input>
PartitionLayout CpuPrefixSum(exec::Device& dev, const Input& input,
                             RadixConfig radix, uint32_t num_blocks,
                             const PrefixSumOptions& opts = {}) {
  auto histograms = ComputeHistograms(input, radix, num_blocks);
  PartitionLayout layout(radix, histograms, opts.pad_tuples);

  exec::KernelRecord record;
  record.name = opts.name + "_cpu";
  record.sms = 0;
  const uint64_t key_bytes = input.size() * sizeof(data::Key);
  record.counters.cpu_mem_read = key_bytes;
  record.counters.tuples = input.size();
  // The CPU scan saturates its memory bandwidth; large out-of-cache scans
  // lose some efficiency (the paper measures 129.6 GiB/s dropping to
  // 96 GiB/s for the 2048 M tuple workload).
  double bw = dev.hw().cpu.scan_bw;
  double paper_bytes = static_cast<double>(key_bytes) * dev.hw().scale;
  if (paper_bytes > 8.0 * util::kGiB) bw *= 0.74;
  record.time.cpu_mem = static_cast<double>(key_bytes) / bw;
  dev.Record(record);
  return layout;
}

}  // namespace triton::partition

#endif  // TRITON_PARTITION_PREFIX_SUM_H_
