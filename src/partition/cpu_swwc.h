// CPU software-write-combining radix partitioner (the baseline of
// Sections 2.2 / 3.1 / 6.1).
//
// Functionally identical to the GPU partitioners (same layouts, same
// output), but executed by the CPU: per-thread SWWC buffers in the LLC,
// cacheline-sized flushes, SIMD histogramming. Its simulated time comes
// from an analytic multi-core model: the chip partitions at its measured
// out-of-cache rate (~29 GiB/s on POWER9, Figure 4), switches to two
// passes when the required fanout's SWWC buffers exceed the per-core LLC
// share (the Xeon's cliff in Figure 13), and is capped by the interconnect
// when writing to GPU memory.

#ifndef TRITON_PARTITION_CPU_SWWC_H_
#define TRITON_PARTITION_CPU_SWWC_H_

#include <cstdint>

#include "exec/device.h"
#include "partition/input.h"
#include "partition/layout.h"
#include "partition/partitioner.h"
#include "sim/hw_spec.h"

namespace triton::partition {

/// Maximum radix bits a CPU can partition with in one pass: each thread's
/// SWWC buffers (one cacheline per partition) must fit in half its LLC
/// share.
uint32_t CpuMaxSinglePassBits(const sim::CpuSpec& cpu);

/// Number of passes the CPU needs for `bits` radix bits.
uint32_t CpuPartitionPasses(const sim::CpuSpec& cpu, uint32_t bits);

/// CPU-side SWWC partitioner; see file comment.
class CpuSwwcPartitioner {
 public:
  /// Partitions with `cpu`'s cost model (defaults to the device's host CPU
  /// when `cpu` is null).
  explicit CpuSwwcPartitioner(const sim::CpuSpec* cpu = nullptr)
      : cpu_(cpu) {}

  const char* name() const { return "CPU-SWWC"; }

  PartitionRun PartitionColumns(exec::Device& dev, const ColumnInput& input,
                                const PartitionLayout& layout,
                                mem::Buffer& out,
                                const PartitionOptions& opts);

  PartitionRun PartitionRows(exec::Device& dev, const RowInput& input,
                             const PartitionLayout& layout, mem::Buffer& out,
                             const PartitionOptions& opts);

  PartitionRun PartitionSliced(exec::Device& dev, const SlicedRowInput& input,
                               const PartitionLayout& layout,
                               mem::Buffer& out, const PartitionOptions& opts);

 private:
  template <typename Input>
  PartitionRun Run(exec::Device& dev, const Input& input,
                   const PartitionLayout& layout, mem::Buffer& out,
                   const PartitionOptions& opts);

  const sim::CpuSpec* cpu_;
};

}  // namespace triton::partition

#endif  // TRITON_PARTITION_CPU_SWWC_H_
