#include "partition/standard.h"

namespace triton::partition {

template <typename Input>
PartitionRun StandardPartitioner::Run(exec::Device& dev, const Input& input,
                                      const PartitionLayout& layout,
                                      mem::Buffer& out,
                                      const PartitionOptions& opts) {
  const RadixConfig radix = layout.radix();
  PartitionOptions o = opts;
  if (o.name.empty()) o.name = "standard";
  return internal::RunPartitionKernel(
      dev, input, layout, o, kPartitionCyclesPerTuple,
      [&](exec::KernelContext& ctx, internal::BlockState& st, const Input& in,
          uint64_t begin, uint64_t end) -> uint64_t {
        // One warp scatters 32 tuples at a time. Lanes whose tuples fall in
        // the same partition land on consecutive cursor slots, so the
        // hardware coalescing unit merges them into one transaction — the
        // only write combining Standard gets. With high fanouts the runs
        // shrink to single tuples and every write is a 16-byte packet.
        const uint32_t warp = ctx.warp_size();
        const uint32_t fanout = radix.fanout();
        std::vector<uint32_t> run_count(fanout, 0);
        std::vector<uint32_t> touched;
        touched.reserve(warp);
        uint64_t writes = 0;
        for (uint64_t i = begin; i < end; i += warp) {
          uint64_t batch_end = std::min(end, i + warp);
          const uint32_t sim_warp = internal::SimWarpOf(i - begin, warp);
          for (uint64_t j = i; j < batch_end; ++j) {
            uint32_t p = radix.PartitionOf(in.Get(j).key);
            if (run_count[p]++ == 0) touched.push_back(p);
          }
          for (uint32_t p : touched) {
            uint64_t at = st.cursors[p];
            internal::AccountFlush(ctx, *st.tlb, out, at, run_count[p], p,
                                   sim_warp);
            ++writes;
            run_count[p] = 0;
          }
          touched.clear();
          for (uint64_t j = i; j < batch_end; ++j) {
            Tuple t = in.Get(j);
            ctx.Store(out, st.cursors[radix.PartitionOf(t.key)]++, t);
          }
        }
        return writes;
      });
}

PartitionRun StandardPartitioner::PartitionColumns(
    exec::Device& dev, const ColumnInput& input, const PartitionLayout& layout,
    mem::Buffer& out, const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

PartitionRun StandardPartitioner::PartitionRows(exec::Device& dev,
                                                const RowInput& input,
                                                const PartitionLayout& layout,
                                                mem::Buffer& out,
                                                const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

PartitionRun StandardPartitioner::PartitionSliced(exec::Device& dev,
                                        const SlicedRowInput& input,
                                        const PartitionLayout& layout,
                                        mem::Buffer& out,
                                        const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

}  // namespace triton::partition
