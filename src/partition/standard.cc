#include "partition/standard.h"

#include <algorithm>

#include "util/fastpath.h"

namespace triton::partition {

template <typename Input>
PartitionRun StandardPartitioner::Run(exec::Device& dev, const Input& input,
                                      const PartitionLayout& layout,
                                      mem::Buffer& out,
                                      const PartitionOptions& opts) {
  const RadixConfig radix = layout.radix();
  PartitionOptions o = opts;
  if (o.name.empty()) o.name = "standard";
  return internal::RunPartitionKernel(
      dev, input, layout, o, kPartitionCyclesPerTuple,
      [&](exec::KernelContext& ctx, internal::BlockState& st, const Input& in,
          uint64_t begin, uint64_t end) -> uint64_t {
        // One warp scatters 32 tuples at a time. Lanes whose tuples fall in
        // the same partition land on consecutive cursor slots, so the
        // hardware coalescing unit merges them into one transaction — the
        // only write combining Standard gets. With high fanouts the runs
        // shrink to single tuples and every write is a 16-byte packet.
        const uint32_t warp = ctx.warp_size();
        const uint32_t fanout = radix.fanout();
        std::vector<uint32_t>& run_count =
            internal::BlockScratch<uint32_t,
                                   internal::kScratchStandardRuns>(fanout);
        std::fill_n(run_count.begin(), fanout, 0u);
        std::vector<uint32_t>& touched =
            internal::BlockScratch<uint32_t,
                                   internal::kScratchStandardTouched>(0);
        touched.clear();
        touched.reserve(warp);
        uint64_t writes = 0;
        const bool fast = util::FastPathEnabled();
        // Fast path: fetch and hash each warp's tuples once, then reuse the
        // indices for both the run-count and scatter loops (the per-tuple
        // path below computes them twice). Values and order are identical.
        Tuple batch[64];
        uint32_t pidx[64];
        CHECK_LE(warp, 64u);
        for (uint64_t i = begin; i < end; i += warp) {
          uint64_t batch_end = std::min(end, i + warp);
          const uint32_t sim_warp = internal::SimWarpOf(i - begin, warp);
          if (fast) {
            const uint64_t m = batch_end - i;
            in.GetBatch(i, m, batch);
            radix.PartitionsOf(batch, m, pidx);
            for (uint64_t j = 0; j < m; ++j) {
              if (run_count[pidx[j]]++ == 0) touched.push_back(pidx[j]);
            }
          } else {
            for (uint64_t j = i; j < batch_end; ++j) {
              uint32_t p = radix.PartitionOf(in.Get(j).key);
              if (run_count[p]++ == 0) touched.push_back(p);
            }
          }
          for (uint32_t p : touched) {
            uint64_t at = st.cursors[p];
            internal::AccountFlush(ctx, *st.tlb, out, at, run_count[p], p,
                                   sim_warp);
            ++writes;
            run_count[p] = 0;
          }
          touched.clear();
          if (fast) {
            const uint64_t m = batch_end - i;
            for (uint64_t j = 0; j < m; ++j) {
              ctx.Store(out, st.cursors[pidx[j]]++, batch[j]);
            }
          } else {
            for (uint64_t j = i; j < batch_end; ++j) {
              Tuple t = in.Get(j);
              ctx.Store(out, st.cursors[radix.PartitionOf(t.key)]++, t);
            }
          }
        }
        return writes;
      });
}

PartitionRun StandardPartitioner::PartitionColumns(
    exec::Device& dev, const ColumnInput& input, const PartitionLayout& layout,
    mem::Buffer& out, const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

PartitionRun StandardPartitioner::PartitionRows(exec::Device& dev,
                                                const RowInput& input,
                                                const PartitionLayout& layout,
                                                mem::Buffer& out,
                                                const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

PartitionRun StandardPartitioner::PartitionSliced(exec::Device& dev,
                                        const SlicedRowInput& input,
                                        const PartitionLayout& layout,
                                        mem::Buffer& out,
                                        const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

}  // namespace triton::partition
