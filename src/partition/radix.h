// Radix partitioning configuration.
//
// Multi-pass radix partitioning consumes disjoint bit ranges of the hashed
// join key: pass 1 uses bits [0, B1), pass 2 bits [B1, B1+B2), etc., where
// bit positions count hash bits already consumed (see hash/hash_fn.h).

#ifndef TRITON_PARTITION_RADIX_H_
#define TRITON_PARTITION_RADIX_H_

#include <cstdint>

#include "data/relation.h"
#include "hash/hash_fn.h"
#include "util/logging.h"

namespace triton::partition {

/// One radix pass: `bits` hash bits after `shift` already-consumed bits.
struct RadixConfig {
  uint32_t shift = 0;
  uint32_t bits = 0;

  /// Number of partitions this pass produces.
  uint32_t fanout() const {
    DCHECK_LT(bits, 32u);  // 1u << 32 is undefined behaviour
    return 1u << bits;
  }

  /// Partition index of a key.
  uint32_t PartitionOf(data::Key key) const {
    return static_cast<uint32_t>(
        hash::RadixPartition(static_cast<uint64_t>(key), shift, bits));
  }

  /// Config for the pass following this one, consuming `next_bits`.
  RadixConfig Next(uint32_t next_bits) const {
    return RadixConfig{shift + bits, next_bits};
  }

  /// Partition indices for a batch of keys. The loop body is a multiply,
  /// a shift and a mask per element with no cross-iteration dependency, so
  /// -O2 autovectorizes it — the fast path's "SIMD" radix inner loop.
  void PartitionsOf(const data::Key* keys, uint64_t n, uint32_t* out) const {
    const uint32_t s = shift;
    const uint32_t b = bits;
    for (uint64_t j = 0; j < n; ++j) {
      out[j] = static_cast<uint32_t>(
          hash::RadixPartition(static_cast<uint64_t>(keys[j]), s, b));
    }
  }

  /// Same over row-format tuples (strided key gather).
  template <typename TupleT>
  void PartitionsOf(const TupleT* tuples, uint64_t n, uint32_t* out) const {
    const uint32_t s = shift;
    const uint32_t b = bits;
    for (uint64_t j = 0; j < n; ++j) {
      out[j] = static_cast<uint32_t>(
          hash::RadixPartition(static_cast<uint64_t>(tuples[j].key), s, b));
    }
  }
};

}  // namespace triton::partition

#endif  // TRITON_PARTITION_RADIX_H_
