#include "partition/cpu_swwc.h"

#include <algorithm>

#include "util/bits.h"
#include "util/fastpath.h"

namespace triton::partition {

uint32_t CpuMaxSinglePassBits(const sim::CpuSpec& cpu) {
  // One 128-byte SWWC buffer per partition per thread; buffers may use half
  // the per-core LLC share.
  uint64_t max_fanout = (cpu.llc_per_core / 2) / 128;
  if (max_fanout == 0) return 0;
  return util::FloorLog2(max_fanout);
}

uint32_t CpuPartitionPasses(const sim::CpuSpec& cpu, uint32_t bits) {
  uint32_t per_pass = std::max(1u, CpuMaxSinglePassBits(cpu));
  return (bits + per_pass - 1) / per_pass;
}

template <typename Input>
PartitionRun CpuSwwcPartitioner::Run(exec::Device& dev, const Input& input,
                                     const PartitionLayout& layout,
                                     mem::Buffer& out,
                                     const PartitionOptions& opts) {
  const sim::CpuSpec& cpu = cpu_ != nullptr ? *cpu_ : dev.hw().cpu;
  Tuple* out_rows = out.as<Tuple>();
  const RadixConfig radix = layout.radix();
  const uint32_t fanout = radix.fanout();
  const uint32_t num_blocks = layout.num_blocks();

  // Functional scatter (single logical pass; intermediate passes of a
  // two-pass plan produce the same final partitions).
  PartitionRun run;
  const uint64_t n = input.size();
  const uint64_t chunk = (n + num_blocks - 1) / num_blocks;
  std::vector<uint64_t> cursors(fanout);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    uint64_t begin = static_cast<uint64_t>(b) * chunk;
    uint64_t end = std::min(n, begin + chunk);
    for (uint32_t p = 0; p < fanout; ++p) cursors[p] = layout.SliceBegin(p, b);
    if (util::FastPathEnabled()) {
      Tuple batch[kFastPathBatchTuples];
      uint32_t pidx[kFastPathBatchTuples];
      for (uint64_t base = begin; base < end; base += kFastPathBatchTuples) {
        const uint64_t m =
            std::min<uint64_t>(end - base, kFastPathBatchTuples);
        input.GetBatch(base, m, batch);
        radix.PartitionsOf(batch, m, pidx);
        for (uint64_t j = 0; j < m; ++j) {
          out_rows[cursors[pidx[j]]++] = batch[j];
        }
      }
    } else {
      for (uint64_t i = begin; i < end; ++i) {
        Tuple t = input.Get(i);
        out_rows[cursors[radix.PartitionOf(t.key)]++] = t;
      }
    }
  }

  // Analytic cost model.
  exec::KernelRecord& rec = run.record;
  rec.name = opts.name.empty() ? "cpu_swwc" : opts.name;
  rec.sms = 0;
  const uint64_t in_bytes = n * input.BytesPerTuple();
  const uint64_t out_bytes = n * sizeof(Tuple);
  const uint32_t passes = CpuPartitionPasses(cpu, radix.bits);
  rec.counters.tuples = n;
  rec.counters.cpu_mem_read = in_bytes * passes;
  rec.counters.tuples = n;
  run.flushes = util::CeilDiv(out_bytes, 128) * passes;

  // Chip-level partitioning rate, mildly degraded by very high single-pass
  // fanouts (TLB pressure on the CPU side as well).
  double rate = cpu.partition_bw;
  uint32_t per_pass_bits = (radix.bits + passes - 1) / passes;
  if (per_pass_bits > 12) rate *= 1.0 - 0.04 * (per_pass_bits - 12);

  bool to_gpu = out.GpuBytes() > 0;
  if (to_gpu) {
    // Writes cross the interconnect; the CPU-side DMA path reaches the
    // paper's Figure 4 "CPU to GPU" plateau.
    rate = std::min(rate, dev.hw().link.raw_bandwidth_per_dir * 0.85);
    rec.counters.link_write_payload = out_bytes;
    rec.counters.link_write_physical = out_bytes * 272 / 256;
    rec.counters.link_write_txns = util::CeilDiv(out_bytes, 256);
  } else {
    rec.counters.cpu_mem_write = out_bytes * passes;
  }
  rec.time.cpu_mem = static_cast<double>(in_bytes) * passes / rate;
  dev.Record(rec);
  return run;
}

PartitionRun CpuSwwcPartitioner::PartitionColumns(
    exec::Device& dev, const ColumnInput& input, const PartitionLayout& layout,
    mem::Buffer& out, const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

PartitionRun CpuSwwcPartitioner::PartitionRows(exec::Device& dev,
                                               const RowInput& input,
                                               const PartitionLayout& layout,
                                               mem::Buffer& out,
                                               const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

PartitionRun CpuSwwcPartitioner::PartitionSliced(
    exec::Device& dev, const SlicedRowInput& input,
    const PartitionLayout& layout, mem::Buffer& out,
    const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

}  // namespace triton::partition
