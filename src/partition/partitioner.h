// Common interface and kernel driver for GPU radix-partitioning algorithms.
//
// A partitioner scatters the input into the row-format output buffer
// according to a PartitionLayout computed by a prior prefix-sum phase. All
// algorithms share the same block decomposition (one contiguous input chunk
// per thread block, one output slice per (partition, block)) and differ in
// how tuples are buffered and flushed — which is exactly where their
// bandwidth and TLB behaviour comes from (Sections 4.2 and 4.3).

#ifndef TRITON_PARTITION_PARTITIONER_H_
#define TRITON_PARTITION_PARTITIONER_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/device.h"
#include "mem/buffer.h"
#include "partition/input.h"
#include "partition/layout.h"
#include "sim/block_tlb.h"
#include "util/logging.h"

namespace triton::partition {

/// SM-cycles charged per tuple by the buffering partitioners (hash, slot
/// acquisition, scratchpad store; calibrated so that partitioning becomes
/// link-bound above ~25 SMs as in Figure 24).
inline constexpr double kPartitionCyclesPerTuple = 9.0;

/// Launch options for one partitioning pass.
struct PartitionOptions {
  /// SMs allocated (0 = all).
  uint32_t sms = 0;
  /// Thread blocks (0 = one per allocated SM).
  uint32_t num_blocks = 0;
  /// Kernel name in the device trace.
  std::string name = "partition";
};

/// Result of one partitioning pass.
struct PartitionRun {
  exec::KernelRecord record;
  /// Total buffer flushes issued (all blocks).
  uint64_t flushes = 0;

  double Elapsed() const { return record.Elapsed(); }

  /// Tuples scattered per link write transaction (Figure 18b).
  double TuplesPerWriteTxn() const {
    return record.counters.link_write_txns == 0
               ? 0.0
               : static_cast<double>(record.counters.tuples) /
                     static_cast<double>(record.counters.link_write_txns);
  }
};

/// Abstract GPU radix partitioner.
class GpuPartitioner {
 public:
  virtual ~GpuPartitioner() = default;

  /// Algorithm name ("Standard", "Linear", "Shared", "Hierarchical").
  virtual const char* name() const = 0;

  /// Scatters columnar input (pass 1 over base relations).
  virtual PartitionRun PartitionColumns(exec::Device& dev,
                                        const ColumnInput& input,
                                        const PartitionLayout& layout,
                                        mem::Buffer& out,
                                        const PartitionOptions& opts) = 0;

  /// Scatters row-format input (later passes).
  virtual PartitionRun PartitionRows(exec::Device& dev, const RowInput& input,
                                     const PartitionLayout& layout,
                                     mem::Buffer& out,
                                     const PartitionOptions& opts) = 0;

  /// Scatters a sliced row view (a pass-1 partition read through its
  /// per-block slices).
  virtual PartitionRun PartitionSliced(exec::Device& dev,
                                       const SlicedRowInput& input,
                                       const PartitionLayout& layout,
                                       mem::Buffer& out,
                                       const PartitionOptions& opts) = 0;
};

namespace internal {

/// Per-block execution state handed to algorithm callbacks.
struct BlockState {
  uint32_t block = 0;
  /// Write cursors, one per partition, in tuple units within `out`.
  std::vector<uint64_t> cursors;
  sim::BlockTlb* tlb = nullptr;
};

/// Distinct tags for BlockScratch instantiations, one per call site, so
/// two live scratch users on the same thread can never alias.
enum ScratchTag {
  kScratchSharedTuples,
  kScratchSharedFill,
  kScratchHierTuples,
  kScratchHierL1Fill,
  kScratchHierL2Fill,
  kScratchLinearCounts,
  kScratchLinearStaged,
  kScratchLinearPidx,
  kScratchStandardRuns,
  kScratchStandardTouched,
};

/// Reusable per-worker-thread scratch vector, grown to at least `n`
/// elements. Per-block lambdas run thousands of times per kernel launch;
/// constructing their staging vectors fresh per block (a heap allocation
/// plus zero-initialization of up to a scratchpad's worth of tuples)
/// dominates host time at high fanout. Blocks execute sequentially on each
/// worker thread and never nest, so one buffer per (type, tag, thread) is
/// safe to reuse. The contents are host-side staging whose elements are
/// always written before being read (fill counters gate every read), so
/// reuse is invisible to modeled physics. Callers needing zeroed elements
/// must clear [0, n) themselves.
template <typename T, ScratchTag Tag>
inline std::vector<T>& BlockScratch(uint64_t n) {
  thread_local std::vector<T> v;
  if (v.size() < n) v.resize(n);
  return v;
}

/// Warps a simulated thread block schedules (a typical 256-thread block).
/// The kernel drivers consume the input in warp-sized batches round-robined
/// over these warps; the id feeds the sanitizer's racecheck and the
/// provenance in violation reports.
inline constexpr uint32_t kSimWarpsPerBlock = 8;

/// Simulated warp id owning the block-relative tuple `idx`.
inline uint32_t SimWarpOf(uint64_t idx, uint32_t warp_size) {
  return static_cast<uint32_t>((idx / warp_size) % kSimWarpsPerBlock);
}

/// Accounts one output flush of `count` tuples at tuple offset `at`:
/// packetizes the write and replays the block TLB once per translation
/// range the flush touches. `partition` and `warp` tag the flush site for
/// sanitizer reports. Returns nothing; counters accumulate in ctx.
inline void AccountFlush(exec::KernelContext& ctx, sim::BlockTlb& tlb,
                         const mem::Buffer& out, uint64_t at, uint64_t count,
                         int64_t partition = -1, uint32_t warp = 0) {
  ctx.SetSanitizerFlushSite(warp, partition);
  const uint64_t offset = at * sizeof(Tuple);
  const uint64_t size = count * sizeof(Tuple);
  ctx.WriteNoTlb(out, offset, size, /*random=*/true);
  tlb.AccessRun(out.base_addr() + offset, size, out.LocationOf(offset),
                &ctx.counters());
}

/// Shared kernel driver: splits the input into per-block chunks, accounts
/// the streamed input read, sets up cursors and the block TLB, and invokes
/// `per_block(ctx, state, input, begin, end)` for each block, which returns
/// the number of flushes it issued. `cycles_per_tuple` is charged
/// automatically.
///
/// Blocks run concurrently on the exec::BlockExecutor pool, so per_block
/// receives a per-block *copy* of the input view (SlicedRowInput caches its
/// current slice) and a per-block sub-context; all shared-device effects
/// are reduced in block order by ForEachBlock.
template <typename Input, typename PerBlockFn>
PartitionRun RunPartitionKernel(exec::Device& dev, const Input& input,
                                const PartitionLayout& layout,
                                const PartitionOptions& opts,
                                double cycles_per_tuple,
                                PerBlockFn&& per_block) {
  PartitionRun run;
  exec::KernelConfig cfg;
  cfg.name = opts.name;
  cfg.sms = opts.sms == 0 ? dev.hw().gpu.num_sms : opts.sms;
  const uint32_t num_blocks =
      opts.num_blocks == 0 ? layout.num_blocks() : opts.num_blocks;
  CHECK_EQ(num_blocks, layout.num_blocks())
      << "layout was computed for a different grid";

  std::vector<uint64_t> block_flushes(num_blocks, 0);
  run.record = dev.Launch(cfg, [&](exec::KernelContext& ctx) {
    const uint64_t n = input.size();
    const uint64_t chunk = (n + num_blocks - 1) / num_blocks;
    const uint32_t fanout = layout.fanout();
    ctx.ExpectTuples(n, sizeof(Tuple));
    ctx.ForEachBlock(num_blocks, [&](exec::KernelContext& sub, uint32_t b) {
      uint64_t begin = static_cast<uint64_t>(b) * chunk;
      uint64_t end = std::min(n, begin + chunk);
      if (begin >= end) return;
      sub.SetSanitizerBlock(b);
      Input block_input = input;
      block_input.AccountRead(sub, begin, end);

      sim::BlockTlb tlb(dev.hw().tlb, num_blocks, sub.escalation_sink());
      // One BlockState per worker thread: each worker runs blocks strictly
      // sequentially, so reusing the cursors vector's storage across
      // blocks saves an allocation per block; every slot is overwritten
      // below before per_block sees it.
      thread_local BlockState state;
      state.block = b;
      state.tlb = &tlb;
      state.cursors.resize(fanout);
      for (uint32_t p = 0; p < fanout; ++p) {
        state.cursors[p] = layout.SliceBegin(p, b);
      }
      block_flushes[b] = per_block(sub, state, block_input, begin, end);

      // Verify the block wrote exactly its slice sizes.
      for (uint32_t p = 0; p < fanout; ++p) {
        DCHECK_EQ(state.cursors[p],
                  layout.SliceBegin(p, b) + layout.SliceSize(p, b));
      }
    });
    ctx.AddTuples(n);
    ctx.Charge(static_cast<uint64_t>(n * cycles_per_tuple));
  });
  for (uint64_t f : block_flushes) run.flushes += f;
  return run;
}

}  // namespace internal
}  // namespace triton::partition

#endif  // TRITON_PARTITION_PARTITIONER_H_
