#include "partition/shared.h"

#include <algorithm>
#include <vector>

#include "sanitizer/sanitizer.h"
#include "util/fastpath.h"

namespace triton::partition {

uint32_t SwwcBufferTuples(uint64_t scratchpad_bytes, uint32_t fanout) {
  uint64_t cap = scratchpad_bytes / (static_cast<uint64_t>(fanout) *
                                     sizeof(Tuple));
  if (cap >= 8) cap -= cap % 8;  // whole 128-byte transactions
  if (cap == 0) cap = 1;
  return static_cast<uint32_t>(cap);
}

namespace {

/// Extra issue-slot cost of one flush. Flushing occupies the warp even
/// when the buffer holds fewer than 32 tuples, which is why compute
/// utilization climbs at very high fanouts (Figure 18e).
constexpr double kFlushCycles = 8.0;

}  // namespace

template <typename Input>
PartitionRun SharedPartitioner::Run(exec::Device& dev, const Input& input,
                                    const PartitionLayout& layout,
                                    mem::Buffer& out,
                                    const PartitionOptions& opts) {
  const RadixConfig radix = layout.radix();
  const uint32_t fanout = radix.fanout();
  const uint32_t cap = SwwcBufferTuples(dev.hw().gpu.scratchpad_bytes, fanout);

  PartitionOptions o = opts;
  if (o.name.empty()) o.name = "shared";
  return internal::RunPartitionKernel(
      dev, input, layout, o, kPartitionCyclesPerTuple,
      [&](exec::KernelContext& ctx, internal::BlockState& st, const Input& in,
          uint64_t begin, uint64_t end) -> uint64_t {
        // Block-shared scratchpad buffers: one per partition, `cap` tuples.
        const uint64_t buf_tuples = static_cast<uint64_t>(fanout) * cap;
        std::vector<Tuple>& buffers =
            internal::BlockScratch<Tuple, internal::kScratchSharedTuples>(
                buf_tuples);
        std::vector<uint32_t>& fill =
            internal::BlockScratch<uint32_t, internal::kScratchSharedFill>(
                fanout);
        std::fill_n(fill.begin(), fanout, 0u);
        sanitizer::ScratchpadShadow shadow(ctx.sanitizer(),
                                           buf_tuples * sizeof(Tuple),
                                           ctx.scratchpad_bytes());
        uint64_t flushes = 0;

        // Flush phase (Figure 8): the leader warp takes the buffer lock,
        // drains the buffer to the partition cursor and marks the buffer
        // empty before releasing.
        auto flush = [&](uint32_t p, uint32_t count, uint32_t warp) {
          shadow.AcquireLock(p, warp);
          shadow.NoteFlush(p, warp);
          const uint64_t buf_off = static_cast<uint64_t>(p) * cap *
                                   sizeof(Tuple);
          shadow.Load(buf_off, static_cast<uint64_t>(count) * sizeof(Tuple),
                      warp);
          uint64_t at = st.cursors[p];
          if (util::FastPathEnabled()) {
            ctx.StoreRun(out, at, &buffers[static_cast<uint64_t>(p) * cap],
                         count);
          } else {
            for (uint32_t i = 0; i < count; ++i) {
              ctx.Store(out, at + i,
                        buffers[static_cast<uint64_t>(p) * cap + i]);
            }
          }
          internal::AccountFlush(ctx, *st.tlb, out, at, count, p, warp);
          ctx.Charge(static_cast<uint64_t>(kFlushCycles));
          st.cursors[p] = at + count;
          fill[p] = 0;
          shadow.SyncRange(buf_off, static_cast<uint64_t>(cap) * sizeof(Tuple));
          shadow.ReleaseLock(p, warp);
          ++flushes;
        };

        // Fill phase: every thread hashes its tuple and acquires a buffer
        // slot; a thread hitting a full buffer triggers the flush phase for
        // that buffer (Figure 8's steps, warp-synchronous).
        if (util::FastPathEnabled()) {
          // Batched fill: fetch a tuple tile, compute all partition
          // indices in one vectorizable pass, then place. Flush trigger
          // points and warp provenance are positional, so they match the
          // per-tuple path exactly; the per-tuple shadow stores only
          // matter (and only run) when the sanitizer is on.
          const uint32_t ws = ctx.warp_size();
          const bool shadow_on = ctx.sanitizer() != nullptr;
          Tuple batch[kFastPathBatchTuples];
          uint32_t pidx[kFastPathBatchTuples];
          for (uint64_t base = begin; base < end;
               base += kFastPathBatchTuples) {
            const uint64_t m =
                std::min<uint64_t>(end - base, kFastPathBatchTuples);
            in.GetBatch(base, m, batch);
            radix.PartitionsOf(batch, m, pidx);
            for (uint64_t j = 0; j < m; ++j) {
              const uint32_t p = pidx[j];
              if (fill[p] == cap) {
                flush(p, cap, internal::SimWarpOf(base + j - begin, ws));
              }
              if (shadow_on) {
                shadow.Store((static_cast<uint64_t>(p) * cap + fill[p]) *
                                 sizeof(Tuple),
                             sizeof(Tuple),
                             internal::SimWarpOf(base + j - begin, ws));
              }
              buffers[static_cast<uint64_t>(p) * cap + fill[p]++] = batch[j];
            }
          }
        } else {
          for (uint64_t i = begin; i < end; ++i) {
            Tuple t = in.Get(i);
            uint32_t p = radix.PartitionOf(t.key);
            const uint32_t warp = internal::SimWarpOf(i - begin,
                                                      ctx.warp_size());
            if (fill[p] == cap) flush(p, cap, warp);
            shadow.Store((static_cast<uint64_t>(p) * cap + fill[p]) *
                             sizeof(Tuple),
                         sizeof(Tuple), warp);
            buffers[static_cast<uint64_t>(p) * cap + fill[p]++] = t;
          }
        }
        // End of input: the leader warp drains the partially filled buffers.
        for (uint32_t p = 0; p < fanout; ++p) {
          if (fill[p] > 0) flush(p, fill[p], 0);
        }
        return flushes;
      });
}

PartitionRun SharedPartitioner::PartitionColumns(exec::Device& dev,
                                                 const ColumnInput& input,
                                                 const PartitionLayout& layout,
                                                 mem::Buffer& out,
                                                 const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

PartitionRun SharedPartitioner::PartitionRows(exec::Device& dev,
                                              const RowInput& input,
                                              const PartitionLayout& layout,
                                              mem::Buffer& out,
                                              const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

PartitionRun SharedPartitioner::PartitionSliced(exec::Device& dev,
                                        const SlicedRowInput& input,
                                        const PartitionLayout& layout,
                                        mem::Buffer& out,
                                        const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

}  // namespace triton::partition
