// Hierarchical software write-combining (Hierarchical) partitioner —
// Section 4.3, the paper's contribution powering the Triton join's first
// pass.
//
// Hierarchical extends Shared with a second buffer level in GPU memory:
// a full scratchpad (L1) buffer is evicted into its partition's L2 buffer;
// a full L2 buffer is swapped against a spare from a per-warp pool
// (double-buffering keeps the critical section to a pointer update) and
// flushed to CPU memory asynchronously. The much larger flush granularity
// slashes the TLB miss rate at high fanouts — buffering capacity is traded
// for TLB reach (Figure 18d: orders of magnitude fewer IOMMU requests).

#ifndef TRITON_PARTITION_HIERARCHICAL_H_
#define TRITON_PARTITION_HIERARCHICAL_H_

#include "partition/partitioner.h"

namespace triton::partition {

/// Tuning knobs of the two-level buffer hierarchy.
struct HierarchicalConfig {
  /// GPU memory budget for L2 buffers as a fraction of the *free* GPU
  /// memory at launch. The Triton join leaves the rest to the cache and
  /// the second pass.
  double gpu_budget_fraction = 0.5;
  /// Lower/upper bounds for the per-partition L2 buffer, in tuples.
  uint32_t min_l2_tuples = 8;
  uint32_t max_l2_tuples = 4096;  // 64 KiB
};

/// Computes the per-(block, partition) L2 buffer capacity in tuples.
uint32_t L2BufferTuples(const HierarchicalConfig& config, uint64_t gpu_free,
                        uint32_t num_blocks, uint32_t fanout);

/// Thread blocks to launch for a given fanout: high fanouts need large L2
/// buffers per block, so occupancy drops until each block's flush reaches
/// a useful granularity (>= 256 tuples) — exactly how a CUDA launch is
/// occupancy-limited by its per-block memory footprint.
uint32_t HierarchicalRecommendedBlocks(const HierarchicalConfig& config,
                                       const sim::HwSpec& hw,
                                       uint64_t gpu_free, uint32_t fanout);

/// Two-level SWWC partitioner; see file comment.
class HierarchicalPartitioner : public GpuPartitioner {
 public:
  explicit HierarchicalPartitioner(HierarchicalConfig config = {})
      : config_(config) {}

  const char* name() const override { return "Hierarchical"; }

  PartitionRun PartitionColumns(exec::Device& dev, const ColumnInput& input,
                                const PartitionLayout& layout,
                                mem::Buffer& out,
                                const PartitionOptions& opts) override;

  PartitionRun PartitionRows(exec::Device& dev, const RowInput& input,
                             const PartitionLayout& layout, mem::Buffer& out,
                             const PartitionOptions& opts) override;

  PartitionRun PartitionSliced(exec::Device& dev, const SlicedRowInput& input,
                               const PartitionLayout& layout,
                               mem::Buffer& out,
                               const PartitionOptions& opts) override;

 private:
  template <typename Input>
  PartitionRun Run(exec::Device& dev, const Input& input,
                   const PartitionLayout& layout, mem::Buffer& out,
                   const PartitionOptions& opts);

  HierarchicalConfig config_;
};

}  // namespace triton::partition

#endif  // TRITON_PARTITION_HIERARCHICAL_H_
