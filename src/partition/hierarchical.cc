#include "partition/hierarchical.h"

#include <algorithm>
#include <vector>

#include "partition/shared.h"
#include "sanitizer/sanitizer.h"
#include "util/bits.h"
#include "util/fastpath.h"

namespace triton::partition {

uint32_t L2BufferTuples(const HierarchicalConfig& config, uint64_t gpu_free,
                        uint32_t num_blocks, uint32_t fanout) {
  uint64_t budget = static_cast<uint64_t>(
      static_cast<double>(gpu_free) * config.gpu_budget_fraction);
  uint64_t per_buffer = budget / (static_cast<uint64_t>(num_blocks) * fanout *
                                  sizeof(Tuple));
  if (per_buffer >= 8) per_buffer -= per_buffer % 8;
  per_buffer = std::clamp<uint64_t>(per_buffer, config.min_l2_tuples,
                                    config.max_l2_tuples);
  return static_cast<uint32_t>(per_buffer);
}

uint32_t HierarchicalRecommendedBlocks(const HierarchicalConfig& config,
                                       const sim::HwSpec& hw,
                                       uint64_t gpu_free, uint32_t fanout) {
  uint64_t budget = static_cast<uint64_t>(
      static_cast<double>(gpu_free) * config.gpu_budget_fraction);
  // Each block wants >= 256-tuple (4 KiB) L2 buffers per partition.
  uint64_t per_block = static_cast<uint64_t>(fanout) * 256 * sizeof(Tuple);
  uint64_t blocks = per_block > 0 ? budget / per_block : hw.gpu.num_sms;
  return static_cast<uint32_t>(
      std::clamp<uint64_t>(blocks, 1, hw.gpu.num_sms));
}

namespace {

constexpr double kFlushCycles = 8.0;

}  // namespace

template <typename Input>
PartitionRun HierarchicalPartitioner::Run(exec::Device& dev,
                                          const Input& input,
                                          const PartitionLayout& layout,
                                          mem::Buffer& out,
                                          const PartitionOptions& opts) {
  const RadixConfig radix = layout.radix();
  const uint32_t fanout = radix.fanout();
  const uint32_t l1_cap =
      SwwcBufferTuples(dev.hw().gpu.scratchpad_bytes, fanout);
  const uint32_t num_blocks =
      opts.num_blocks == 0 ? layout.num_blocks() : opts.num_blocks;
  const uint32_t l2_cap = std::max(
      2 * l1_cap, L2BufferTuples(config_, dev.allocator().gpu_free(),
                                 num_blocks, fanout));

  // L2 buffers live in GPU memory; allocate (and account) them for real so
  // capacity pressure on the GPU is honest. One buffer per (block,
  // partition), matching the physical layout — blocks run concurrently on
  // the executor, so each needs its own slice of the staging storage.
  uint64_t l2_bytes = static_cast<uint64_t>(num_blocks) * fanout * l2_cap *
                      sizeof(Tuple);
  auto l2_storage = dev.allocator().AllocateGpu(std::max<uint64_t>(
      l2_bytes, 1));
  // If GPU memory is too tight for the L2 buffers, degrade to Shared
  // behaviour (l2 == l1 eviction is a plain flush).
  const bool have_l2 = l2_storage.ok();

  PartitionOptions o = opts;
  if (o.name.empty()) o.name = "hierarchical";
  PartitionRun run = internal::RunPartitionKernel(
      dev, input, layout, o, kPartitionCyclesPerTuple,
      [&](exec::KernelContext& ctx, internal::BlockState& st, const Input& in,
          uint64_t begin, uint64_t end) -> uint64_t {
        const uint64_t l1_tuples = static_cast<uint64_t>(fanout) * l1_cap;
        std::vector<Tuple>& l1 =
            internal::BlockScratch<Tuple, internal::kScratchHierTuples>(
                l1_tuples);
        std::vector<uint32_t>& l1_fill =
            internal::BlockScratch<uint32_t, internal::kScratchHierL1Fill>(
                fanout);
        std::vector<uint32_t>& l2_fill =
            internal::BlockScratch<uint32_t, internal::kScratchHierL2Fill>(
                fanout);
        std::fill_n(l1_fill.begin(), fanout, 0u);
        std::fill_n(l2_fill.begin(), fanout, 0u);
        // This block's slice of the (block, partition)-major L2 staging
        // storage, in tuples.
        const uint64_t l2_base =
            static_cast<uint64_t>(st.block) * fanout * l2_cap;
        // L1 buffer locks use ids [0, fanout); the L2 buffers in GPU memory
        // are guarded by lock ids [fanout, 2 * fanout).
        sanitizer::ScratchpadShadow shadow(ctx.sanitizer(),
                                           l1_tuples * sizeof(Tuple),
                                           ctx.scratchpad_bytes());
        uint64_t flushes = 0;

        // L2 flush: one large, aligned write to the output (asynchronous on
        // the real GPU thanks to the spare-buffer swap; the swap itself is
        // a pointer update inside the critical section). The staged tuples
        // live in the real l2_storage buffer, so the sanitizer audits the
        // read-back against the accounted GPU-memory traffic.
        auto flush_l2 = [&](uint32_t p, uint32_t count, uint32_t warp) {
          shadow.AcquireLock(fanout + p, warp);
          shadow.NoteFlush(fanout + p, warp);
          uint64_t at = st.cursors[p];
          if (util::FastPathEnabled()) {
            // Bulk copy-out; Load is a bounds-checked read, so copying
            // straight from the staging storage is functionally identical.
            ctx.StoreRun(out, at,
                         l2_storage->as<Tuple>() + l2_base +
                             static_cast<uint64_t>(p) * l2_cap,
                         count);
          } else {
            for (uint32_t i = 0; i < count; ++i) {
              ctx.Store(out, at + i,
                        ctx.Load<Tuple>(
                            *l2_storage,
                            l2_base + static_cast<uint64_t>(p) * l2_cap + i));
            }
          }
          // Reading the staged tuples back out of GPU memory.
          ctx.ReadNoTlb(*l2_storage,
                        (l2_base + static_cast<uint64_t>(p) * l2_cap) *
                            sizeof(Tuple),
                        static_cast<uint64_t>(count) * sizeof(Tuple),
                        /*random=*/false);
          internal::AccountFlush(ctx, *st.tlb, out, at, count, p, warp);
          ctx.Charge(static_cast<uint64_t>(kFlushCycles));
          st.cursors[p] = at + count;
          l2_fill[p] = 0;
          shadow.ReleaseLock(fanout + p, warp);
          ++flushes;
        };

        // L1 eviction: append the full scratchpad buffer to the partition's
        // L2 buffer in GPU memory.
        auto evict_l1 = [&](uint32_t p, uint32_t count, uint32_t warp) {
          shadow.AcquireLock(p, warp);
          shadow.NoteFlush(p, warp);
          const uint64_t l1_off = static_cast<uint64_t>(p) * l1_cap *
                                  sizeof(Tuple);
          shadow.Load(l1_off, static_cast<uint64_t>(count) * sizeof(Tuple),
                      warp);
          if (!have_l2) {
            // Degraded mode: flush L1 straight to the output.
            uint64_t at = st.cursors[p];
            if (util::FastPathEnabled()) {
              ctx.StoreRun(out, at, &l1[static_cast<uint64_t>(p) * l1_cap],
                           count);
            } else {
              for (uint32_t i = 0; i < count; ++i) {
                ctx.Store(out, at + i,
                          l1[static_cast<uint64_t>(p) * l1_cap + i]);
              }
            }
            internal::AccountFlush(ctx, *st.tlb, out, at, count, p, warp);
            ctx.Charge(static_cast<uint64_t>(kFlushCycles));
            st.cursors[p] = at + count;
            ++flushes;
          } else {
            if (l2_fill[p] + count > l2_cap) flush_l2(p, l2_fill[p], warp);
            shadow.AcquireLock(fanout + p, warp);
            if (util::FastPathEnabled()) {
              ctx.StoreRun(*l2_storage,
                           l2_base + static_cast<uint64_t>(p) * l2_cap +
                               l2_fill[p],
                           &l1[static_cast<uint64_t>(p) * l1_cap], count);
            } else {
              for (uint32_t i = 0; i < count; ++i) {
                ctx.Store(*l2_storage,
                          l2_base + static_cast<uint64_t>(p) * l2_cap +
                              l2_fill[p] + i,
                          l1[static_cast<uint64_t>(p) * l1_cap + i]);
              }
            }
            ctx.WriteNoTlb(*l2_storage,
                           (l2_base + static_cast<uint64_t>(p) * l2_cap +
                            l2_fill[p]) *
                               sizeof(Tuple),
                           static_cast<uint64_t>(count) * sizeof(Tuple),
                           /*random=*/false);
            l2_fill[p] += count;
            shadow.ReleaseLock(fanout + p, warp);
          }
          l1_fill[p] = 0;
          shadow.SyncRange(l1_off,
                           static_cast<uint64_t>(l1_cap) * sizeof(Tuple));
          shadow.ReleaseLock(p, warp);
        };

        if (util::FastPathEnabled()) {
          // Batched fill; see SharedPartitioner for the positional-identity
          // argument (flush triggers and warp ids match the per-tuple
          // path exactly).
          const uint32_t ws = ctx.warp_size();
          const bool shadow_on = ctx.sanitizer() != nullptr;
          Tuple batch[kFastPathBatchTuples];
          uint32_t pidx[kFastPathBatchTuples];
          for (uint64_t base = begin; base < end;
               base += kFastPathBatchTuples) {
            const uint64_t m =
                std::min<uint64_t>(end - base, kFastPathBatchTuples);
            in.GetBatch(base, m, batch);
            radix.PartitionsOf(batch, m, pidx);
            for (uint64_t j = 0; j < m; ++j) {
              const uint32_t p = pidx[j];
              if (l1_fill[p] == l1_cap) {
                evict_l1(p, l1_cap, internal::SimWarpOf(base + j - begin, ws));
              }
              if (shadow_on) {
                shadow.Store(
                    (static_cast<uint64_t>(p) * l1_cap + l1_fill[p]) *
                        sizeof(Tuple),
                    sizeof(Tuple), internal::SimWarpOf(base + j - begin, ws));
              }
              l1[static_cast<uint64_t>(p) * l1_cap + l1_fill[p]++] = batch[j];
            }
          }
        } else {
          for (uint64_t i = begin; i < end; ++i) {
            Tuple t = in.Get(i);
            uint32_t p = radix.PartitionOf(t.key);
            const uint32_t warp = internal::SimWarpOf(i - begin,
                                                      ctx.warp_size());
            if (l1_fill[p] == l1_cap) evict_l1(p, l1_cap, warp);
            shadow.Store((static_cast<uint64_t>(p) * l1_cap + l1_fill[p]) *
                             sizeof(Tuple),
                         sizeof(Tuple), warp);
            l1[static_cast<uint64_t>(p) * l1_cap + l1_fill[p]++] = t;
          }
        }
        // Drain both levels at end of input (leader warp 0).
        for (uint32_t p = 0; p < fanout; ++p) {
          if (l1_fill[p] > 0) evict_l1(p, l1_fill[p], 0);
          if (have_l2 && l2_fill[p] > 0) flush_l2(p, l2_fill[p], 0);
        }
        return flushes;
      });
  if (l2_storage.ok()) dev.allocator().Free(*l2_storage);
  return run;
}

PartitionRun HierarchicalPartitioner::PartitionColumns(
    exec::Device& dev, const ColumnInput& input, const PartitionLayout& layout,
    mem::Buffer& out, const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

PartitionRun HierarchicalPartitioner::PartitionRows(
    exec::Device& dev, const RowInput& input, const PartitionLayout& layout,
    mem::Buffer& out, const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

PartitionRun HierarchicalPartitioner::PartitionSliced(exec::Device& dev,
                                        const SlicedRowInput& input,
                                        const PartitionLayout& layout,
                                        mem::Buffer& out,
                                        const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

}  // namespace triton::partition
