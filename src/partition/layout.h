// Output layout of one radix-partitioning pass.
//
// The input is split into contiguous chunks, one per thread block. Each
// block owns one *slice* per partition; the global layout orders slices
// partition-major (partition p occupies slices (p, block 0..B-1) back to
// back), so every partition is contiguous up to per-slice alignment
// padding. Slice starts are padded to the interconnect transaction size so
// that software-write-combining flushes stay perfectly coalesced
// (Section 4.2's design discussion).

#ifndef TRITON_PARTITION_LAYOUT_H_
#define TRITON_PARTITION_LAYOUT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "partition/input.h"
#include "partition/radix.h"
#include "util/fastpath.h"
#include "util/logging.h"

namespace triton::partition {

/// Per-(partition, block) slice table; see file comment.
class PartitionLayout {
 public:
  PartitionLayout() = default;

  /// Builds the layout from per-block histograms. `histograms[b][p]` is the
  /// number of block-b tuples falling in partition p. Slice starts are
  /// aligned to `pad_tuples` tuples (1 = no padding).
  PartitionLayout(RadixConfig radix,
                  const std::vector<std::vector<uint64_t>>& histograms,
                  uint32_t pad_tuples);

  const RadixConfig& radix() const { return radix_; }
  uint32_t fanout() const { return radix_.fanout(); }
  uint32_t num_blocks() const { return num_blocks_; }

  /// Total tuples of storage including padding.
  uint64_t padded_tuples() const { return padded_tuples_; }
  /// Total data tuples (sum of all slice sizes).
  uint64_t data_tuples() const { return data_tuples_; }

  /// Start offset (in tuples) of slice (partition, block).
  uint64_t SliceBegin(uint32_t partition, uint32_t block) const {
    return slice_begin_[Index(partition, block)];
  }
  /// Number of data tuples in slice (partition, block).
  uint64_t SliceSize(uint32_t partition, uint32_t block) const {
    return slice_size_[Index(partition, block)];
  }

  /// First storage offset of a partition.
  uint64_t PartitionBegin(uint32_t partition) const {
    return SliceBegin(partition, 0);
  }
  /// Storage extent of a partition including intra-partition padding.
  uint64_t PartitionExtent(uint32_t partition) const {
    uint64_t end = partition + 1 < fanout() ? PartitionBegin(partition + 1)
                                            : padded_tuples_;
    return end - PartitionBegin(partition);
  }
  /// Data tuples in a partition (excluding padding).
  uint64_t PartitionSize(uint32_t partition) const {
    return partition_size_[partition];
  }

  /// Invokes fn(slice_begin, slice_size) for every non-empty slice of the
  /// partition, in storage order.
  template <typename Fn>
  void ForEachSlice(uint32_t partition, Fn&& fn) const {
    for (uint32_t b = 0; b < num_blocks_; ++b) {
      uint64_t n = SliceSize(partition, b);
      if (n > 0) fn(SliceBegin(partition, b), n);
    }
  }

 private:
  uint64_t Index(uint32_t partition, uint32_t block) const {
    DCHECK_LT(partition, fanout());
    DCHECK_LT(block, num_blocks_);
    return static_cast<uint64_t>(partition) * num_blocks_ + block;
  }

  RadixConfig radix_;
  uint32_t num_blocks_ = 0;
  uint64_t padded_tuples_ = 0;
  uint64_t data_tuples_ = 0;
  std::vector<uint64_t> slice_begin_;
  std::vector<uint64_t> slice_size_;
  std::vector<uint64_t> partition_size_;
};

/// Builds the SlicedRowInput for one partition of a partitioned buffer.
inline SlicedRowInput PartitionInputOf(const mem::Buffer& rows,
                                       const PartitionLayout& layout,
                                       uint32_t p) {
  std::vector<std::pair<uint64_t, uint64_t>> slices;
  layout.ForEachSlice(p, [&](uint64_t begin, uint64_t count) {
    slices.emplace_back(begin, count);
  });
  return SlicedRowInput(&rows, std::move(slices));
}

/// Computes one block's histogram over input tuples [begin, end) into the
/// preallocated, zeroed `histogram` (fanout entries). The building block of
/// ComputeHistograms that the GPU prefix-sum kernels run per thread block.
template <typename Input>
void ComputeBlockHistogram(const Input& input, RadixConfig radix,
                           uint64_t begin, uint64_t end,
                           std::vector<uint64_t>& histogram) {
  DCHECK_EQ(histogram.size(), radix.fanout());
  if (util::FastPathEnabled()) {
    // Batched: fetch a key tile, compute all partition indices in one
    // vectorizable pass, then count. Same values in the same order as the
    // per-tuple loop below, so the histogram is bit-identical.
    data::Key keys[kFastPathBatchTuples];
    uint32_t pidx[kFastPathBatchTuples];
    for (uint64_t base = begin; base < end; base += kFastPathBatchTuples) {
      const uint64_t m = std::min<uint64_t>(end - base, kFastPathBatchTuples);
      input.KeysBatch(base, m, keys);
      radix.PartitionsOf(keys, m, pidx);
      for (uint64_t j = 0; j < m; ++j) ++histogram[pidx[j]];
    }
    return;
  }
  for (uint64_t i = begin; i < end; ++i) {
    ++histogram[radix.PartitionOf(input.Get(i).key)];
  }
}

/// Computes per-block histograms for `input` split into `num_blocks`
/// contiguous chunks (the functional part of the prefix-sum kernels).
template <typename Input>
std::vector<std::vector<uint64_t>> ComputeHistograms(const Input& input,
                                                     RadixConfig radix,
                                                     uint32_t num_blocks) {
  std::vector<std::vector<uint64_t>> histograms(
      num_blocks, std::vector<uint64_t>(radix.fanout(), 0));
  const uint64_t n = input.size();
  const uint64_t chunk = (n + num_blocks - 1) / num_blocks;
  for (uint32_t b = 0; b < num_blocks; ++b) {
    uint64_t begin = static_cast<uint64_t>(b) * chunk;
    uint64_t end = std::min(n, begin + chunk);
    ComputeBlockHistogram(input, radix, begin, end, histograms[b]);
  }
  return histograms;
}

}  // namespace triton::partition

#endif  // TRITON_PARTITION_LAYOUT_H_
