// Standard radix partitioner: direct per-tuple scatter.
//
// Each thread reads a tuple and writes it straight to its partition's
// cursor — no write combining at all. Every output write is a 16-byte
// random access, so interconnect packets carry mostly overhead and every
// write replays the TLB. This is the slowest baseline in Figures 17/18
// (the paper reports 10-minute runtimes for high fanouts).

#ifndef TRITON_PARTITION_STANDARD_H_
#define TRITON_PARTITION_STANDARD_H_

#include "partition/partitioner.h"

namespace triton::partition {

/// Direct-scatter baseline; see file comment.
class StandardPartitioner : public GpuPartitioner {
 public:
  const char* name() const override { return "Standard"; }

  PartitionRun PartitionColumns(exec::Device& dev, const ColumnInput& input,
                                const PartitionLayout& layout,
                                mem::Buffer& out,
                                const PartitionOptions& opts) override;

  PartitionRun PartitionRows(exec::Device& dev, const RowInput& input,
                             const PartitionLayout& layout, mem::Buffer& out,
                             const PartitionOptions& opts) override;

  PartitionRun PartitionSliced(exec::Device& dev, const SlicedRowInput& input,
                               const PartitionLayout& layout,
                               mem::Buffer& out,
                               const PartitionOptions& opts) override;

 private:
  template <typename Input>
  PartitionRun Run(exec::Device& dev, const Input& input,
                   const PartitionLayout& layout, mem::Buffer& out,
                   const PartitionOptions& opts);
};

}  // namespace triton::partition

#endif  // TRITON_PARTITION_STANDARD_H_
