// Linear-allocator SWWC (Linear) partitioner.
//
// The state of the art for in-GPU partitioning (Rui & Tu; Stehle &
// Jacobsen): a thread block stages a batch of tuples in scratchpad, sorts
// the batch by partition using a linear allocator (an atomically
// incremented free-slot counter), and flushes each partition's run to its
// cursor. Runs rarely end on transaction boundaries and cursors drift out
// of alignment, so writes are only *opportunistically* coalesced — the
// paper measures up to 156% interconnect overhead (Figure 18c) and a
// throughput drop as soon as fanout exceeds 1 (Figure 18a).

#ifndef TRITON_PARTITION_LINEAR_H_
#define TRITON_PARTITION_LINEAR_H_

#include "partition/partitioner.h"

namespace triton::partition {

/// Batch-sorting linear-allocator partitioner; see file comment.
class LinearPartitioner : public GpuPartitioner {
 public:
  const char* name() const override { return "Linear"; }

  PartitionRun PartitionColumns(exec::Device& dev, const ColumnInput& input,
                                const PartitionLayout& layout,
                                mem::Buffer& out,
                                const PartitionOptions& opts) override;

  PartitionRun PartitionRows(exec::Device& dev, const RowInput& input,
                             const PartitionLayout& layout, mem::Buffer& out,
                             const PartitionOptions& opts) override;

  PartitionRun PartitionSliced(exec::Device& dev, const SlicedRowInput& input,
                               const PartitionLayout& layout,
                               mem::Buffer& out,
                               const PartitionOptions& opts) override;

 private:
  template <typename Input>
  PartitionRun Run(exec::Device& dev, const Input& input,
                   const PartitionLayout& layout, mem::Buffer& out,
                   const PartitionOptions& opts);
};

}  // namespace triton::partition

#endif  // TRITON_PARTITION_LINEAR_H_
