#include "partition/layout.h"

#include "util/bits.h"

namespace triton::partition {

PartitionLayout::PartitionLayout(
    RadixConfig radix, const std::vector<std::vector<uint64_t>>& histograms,
    uint32_t pad_tuples)
    : radix_(radix), num_blocks_(static_cast<uint32_t>(histograms.size())) {
  CHECK_GT(num_blocks_, 0u);
  CHECK_GT(pad_tuples, 0u);
  const uint32_t fanout = radix_.fanout();
  slice_begin_.resize(static_cast<uint64_t>(fanout) * num_blocks_);
  slice_size_.resize(static_cast<uint64_t>(fanout) * num_blocks_);
  partition_size_.assign(fanout, 0);

  uint64_t cursor = 0;
  for (uint32_t p = 0; p < fanout; ++p) {
    for (uint32_t b = 0; b < num_blocks_; ++b) {
      CHECK_EQ(histograms[b].size(), fanout);
      uint64_t count = histograms[b][p];
      cursor = util::AlignUp(cursor, pad_tuples);
      slice_begin_[Index(p, b)] = cursor;
      slice_size_[Index(p, b)] = count;
      cursor += count;
      partition_size_[p] += count;
      data_tuples_ += count;
    }
  }
  padded_tuples_ = util::AlignUp(cursor, pad_tuples);
}

}  // namespace triton::partition
