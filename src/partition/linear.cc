#include "partition/linear.h"

#include <algorithm>
#include <vector>

#include "sanitizer/sanitizer.h"
#include "util/fastpath.h"

namespace triton::partition {

namespace {

/// Extra per-tuple issue cost of the scratchpad sort: histogram, linear
/// allocator and reorder are additional scratchpad passes, and the
/// allocator's atomics serialize warps (the paper's Figure 18f shows
/// Linear stalling on synchronization and pipe-busy, unlike Shared).
constexpr double kLinearExtraCyclesPerTuple = 30.0;

}  // namespace

template <typename Input>
PartitionRun LinearPartitioner::Run(exec::Device& dev, const Input& input,
                                    const PartitionLayout& layout,
                                    mem::Buffer& out,
                                    const PartitionOptions& opts) {
  const RadixConfig radix = layout.radix();
  const uint32_t fanout = radix.fanout();
  // The whole scratchpad holds one batch.
  const uint32_t batch_tuples = static_cast<uint32_t>(
      dev.hw().gpu.scratchpad_bytes / sizeof(Tuple));

  PartitionOptions o = opts;
  if (o.name.empty()) o.name = "linear";
  return internal::RunPartitionKernel(
      dev, input, layout, o,
      kPartitionCyclesPerTuple + kLinearExtraCyclesPerTuple,
      [&](exec::KernelContext& ctx, internal::BlockState& st, const Input& in,
          uint64_t begin, uint64_t end) -> uint64_t {
        std::vector<uint32_t>& counts =
            internal::BlockScratch<uint32_t, internal::kScratchLinearCounts>(
                fanout);
        sanitizer::ScratchpadShadow shadow(
            ctx.sanitizer(),
            static_cast<uint64_t>(batch_tuples) * sizeof(Tuple),
            ctx.scratchpad_bytes());
        uint64_t flushes = 0;
        // Fast path: fetch and hash each scratchpad batch once into these
        // per-block staging arrays, reusing the indices for the count and
        // scatter loops (the per-tuple path hashes twice). Values and
        // order are identical either way.
        const bool fast = util::FastPathEnabled();
        const bool shadow_on = ctx.sanitizer() != nullptr;
        Tuple* staged = nullptr;
        uint32_t* pidx = nullptr;
        if (fast) {
          staged = internal::BlockScratch<
                       Tuple, internal::kScratchLinearStaged>(batch_tuples)
                       .data();
          pidx = internal::BlockScratch<
                     uint32_t, internal::kScratchLinearPidx>(batch_tuples)
                     .data();
        }
        for (uint64_t base = begin; base < end; base += batch_tuples) {
          uint64_t batch_end = std::min(end, base + batch_tuples);
          const uint64_t m = batch_end - base;
          // Sort the batch by partition inside the scratchpad (functional
          // equivalent: per-partition run counting; the reorder itself is
          // scratchpad-local and charged via the cycle constant). Each
          // tuple is staged once into the arena by its owning warp.
          std::fill_n(counts.begin(), fanout, 0u);
          if (fast) {
            in.GetBatch(base, m, staged);
            radix.PartitionsOf(staged, m, pidx);
            for (uint64_t i = 0; i < m; ++i) {
              ++counts[pidx[i]];
              if (shadow_on) {
                shadow.Store(i * sizeof(Tuple), sizeof(Tuple),
                             internal::SimWarpOf(i, ctx.warp_size()));
              }
            }
          } else {
            for (uint64_t i = base; i < batch_end; ++i) {
              ++counts[radix.PartitionOf(in.Get(i).key)];
              shadow.Store((i - base) * sizeof(Tuple), sizeof(Tuple),
                           internal::SimWarpOf(i - base, ctx.warp_size()));
            }
          }
          // Flush each partition's run to its cursor. Run lengths are
          // data-dependent and cursors are not re-aligned, so coalescing is
          // only opportunistic.
          for (uint32_t p = 0; p < fanout; ++p) {
            if (counts[p] == 0) continue;
            internal::AccountFlush(ctx, *st.tlb, out, st.cursors[p],
                                   counts[p], p, /*warp=*/0);
            ++flushes;
          }
          // Functional scatter (stable within the batch); the flush is a
          // block-wide synchronization point, after which the arena is
          // reusable for the next batch.
          shadow.Load(0, m * sizeof(Tuple), /*warp=*/0);
          if (fast) {
            for (uint64_t i = 0; i < m; ++i) {
              ctx.Store(out, st.cursors[pidx[i]]++, staged[i]);
            }
          } else {
            for (uint64_t i = base; i < batch_end; ++i) {
              Tuple t = in.Get(i);
              ctx.Store(out, st.cursors[radix.PartitionOf(t.key)]++, t);
            }
          }
          shadow.SyncRange(0,
                           static_cast<uint64_t>(batch_tuples) *
                               sizeof(Tuple));
        }
        return flushes;
      });
}

PartitionRun LinearPartitioner::PartitionColumns(exec::Device& dev,
                                                 const ColumnInput& input,
                                                 const PartitionLayout& layout,
                                                 mem::Buffer& out,
                                                 const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

PartitionRun LinearPartitioner::PartitionRows(exec::Device& dev,
                                              const RowInput& input,
                                              const PartitionLayout& layout,
                                              mem::Buffer& out,
                                              const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

PartitionRun LinearPartitioner::PartitionSliced(exec::Device& dev,
                                        const SlicedRowInput& input,
                                        const PartitionLayout& layout,
                                        mem::Buffer& out,
                                        const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

}  // namespace triton::partition
