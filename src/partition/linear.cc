#include "partition/linear.h"

#include <vector>

namespace triton::partition {

namespace {

/// Extra per-tuple issue cost of the scratchpad sort: histogram, linear
/// allocator and reorder are additional scratchpad passes, and the
/// allocator's atomics serialize warps (the paper's Figure 18f shows
/// Linear stalling on synchronization and pipe-busy, unlike Shared).
constexpr double kLinearExtraCyclesPerTuple = 30.0;

}  // namespace

template <typename Input>
PartitionRun LinearPartitioner::Run(exec::Device& dev, const Input& input,
                                    const PartitionLayout& layout,
                                    mem::Buffer& out,
                                    const PartitionOptions& opts) {
  Tuple* out_rows = out.as<Tuple>();
  const RadixConfig radix = layout.radix();
  const uint32_t fanout = radix.fanout();
  // The whole scratchpad holds one batch.
  const uint32_t batch_tuples = static_cast<uint32_t>(
      dev.hw().gpu.scratchpad_bytes / sizeof(Tuple));

  PartitionOptions o = opts;
  if (o.name.empty()) o.name = "linear";
  return internal::RunPartitionKernel(
      dev, input, layout, o,
      kPartitionCyclesPerTuple + kLinearExtraCyclesPerTuple,
      [&](exec::KernelContext& ctx, internal::BlockState& st, uint64_t begin,
          uint64_t end) -> uint64_t {
        std::vector<uint32_t> counts(fanout);
        uint64_t flushes = 0;
        for (uint64_t base = begin; base < end; base += batch_tuples) {
          uint64_t batch_end = std::min(end, base + batch_tuples);
          // Sort the batch by partition inside the scratchpad (functional
          // equivalent: per-partition run counting; the reorder itself is
          // scratchpad-local and charged via the cycle constant).
          std::fill(counts.begin(), counts.end(), 0u);
          for (uint64_t i = base; i < batch_end; ++i) {
            ++counts[radix.PartitionOf(input.Get(i).key)];
          }
          // Flush each partition's run to its cursor. Run lengths are
          // data-dependent and cursors are not re-aligned, so coalescing is
          // only opportunistic.
          for (uint32_t p = 0; p < fanout; ++p) {
            if (counts[p] == 0) continue;
            internal::AccountFlush(ctx, *st.tlb, out, st.cursors[p],
                                   counts[p]);
            ++flushes;
          }
          // Functional scatter (stable within the batch).
          for (uint64_t i = base; i < batch_end; ++i) {
            Tuple t = input.Get(i);
            out_rows[st.cursors[radix.PartitionOf(t.key)]++] = t;
          }
        }
        return flushes;
      });
}

PartitionRun LinearPartitioner::PartitionColumns(exec::Device& dev,
                                                 const ColumnInput& input,
                                                 const PartitionLayout& layout,
                                                 mem::Buffer& out,
                                                 const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

PartitionRun LinearPartitioner::PartitionRows(exec::Device& dev,
                                              const RowInput& input,
                                              const PartitionLayout& layout,
                                              mem::Buffer& out,
                                              const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

PartitionRun LinearPartitioner::PartitionSliced(exec::Device& dev,
                                        const SlicedRowInput& input,
                                        const PartitionLayout& layout,
                                        mem::Buffer& out,
                                        const PartitionOptions& opts) {
  return Run(dev, input, layout, out, opts);
}

}  // namespace triton::partition
