// Shared software write-combining (Shared) partitioner — Section 4.2.
//
// The thread block shares one scratchpad SWWC buffer per partition. Warps
// fill buffer slots with lock-free atomic slot acquisition; a full buffer
// is locked by its fill-state, a leader warp flushes it as one write that
// is a multiple of — and aligned to — the interconnect transaction size
// (perfect coalescing). Sharing buffers across the whole block (instead of
// per-thread or per-warp buffers) is what makes the design fit the small
// scratchpad: space efficiency + perfect coalescing, at the price of TLB
// misses once the fanout exceeds the TLB reach (Table 1, Figure 18d).

#ifndef TRITON_PARTITION_SHARED_H_
#define TRITON_PARTITION_SHARED_H_

#include "partition/partitioner.h"

namespace triton::partition {

/// Computes the per-partition SWWC buffer capacity in tuples for a given
/// scratchpad size and fanout: floor(scratchpad / (fanout * tuple_size)),
/// rounded down to a multiple of 8 tuples (one 128-byte transaction) when
/// possible. High fanouts drop below 8 and lose perfect coalescing — the
/// paper's flush-granularity cliff (Section 6.2.5).
uint32_t SwwcBufferTuples(uint64_t scratchpad_bytes, uint32_t fanout);

/// Block-shared SWWC partitioner; see file comment.
class SharedPartitioner : public GpuPartitioner {
 public:
  const char* name() const override { return "Shared"; }

  PartitionRun PartitionColumns(exec::Device& dev, const ColumnInput& input,
                                const PartitionLayout& layout,
                                mem::Buffer& out,
                                const PartitionOptions& opts) override;

  PartitionRun PartitionRows(exec::Device& dev, const RowInput& input,
                             const PartitionLayout& layout, mem::Buffer& out,
                             const PartitionOptions& opts) override;

  PartitionRun PartitionSliced(exec::Device& dev, const SlicedRowInput& input,
                               const PartitionLayout& layout,
                               mem::Buffer& out,
                               const PartitionOptions& opts) override;

 private:
  template <typename Input>
  PartitionRun Run(exec::Device& dev, const Input& input,
                   const PartitionLayout& layout, mem::Buffer& out,
                   const PartitionOptions& opts);
};

}  // namespace triton::partition

#endif  // TRITON_PARTITION_SHARED_H_
