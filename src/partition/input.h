// Input views for partitioning kernels.
//
// Pass 1 reads base relations in column layout (separate key and payload
// arrays); later passes read the 16-byte row-format tuples produced by the
// previous pass. Both expose the same Get(i) -> Entry interface so the
// partitioning kernels are written once, templated over the view.

#ifndef TRITON_PARTITION_INPUT_H_
#define TRITON_PARTITION_INPUT_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "data/relation.h"
#include "exec/device.h"
#include "hash/perfect_table.h"
#include "mem/buffer.h"

namespace triton::partition {

/// 16-byte <key, value> tuple flowing through the partitioning pipeline.
using Tuple = hash::Entry;

/// Tuples fetched per fast-path batch (see util/fastpath.h): large enough
/// to amortize per-batch overhead and let the partition-index loop
/// vectorize, small enough that batch + index arrays stay in L1 (256
/// tuples = 4 KiB of tuples + 1 KiB of indices) like a warp-per-thread
/// register tile would on the real GPU.
inline constexpr uint32_t kFastPathBatchTuples = 256;

/// Columnar view over a base relation range (pass-1 input).
class ColumnInput {
 public:
  ColumnInput(const mem::Buffer* keys, const mem::Buffer* values,
              uint64_t offset_tuples, uint64_t num_tuples)
      : keys_(keys),
        values_(values),
        offset_(offset_tuples),
        num_tuples_(num_tuples) {}

  /// Convenience view over a whole relation's key + first payload column.
  static ColumnInput Of(const data::Relation& rel) {
    return ColumnInput(&rel.key_buffer(),
                       rel.payload_cols() > 0 ? &rel.payload_buffer(0)
                                              : nullptr,
                       0, rel.rows());
  }

  uint64_t size() const { return num_tuples_; }

  Tuple Get(uint64_t i) const {
    Tuple t;
    t.key = keys_->as<data::Key>()[offset_ + i];
    t.value = values_ != nullptr
                  ? values_->as<data::Value>()[offset_ + i]
                  : static_cast<data::Value>(offset_ + i);  // row id
    return t;
  }

  /// Bulk Get: fetches tuples [i, i + n) into `out` (fast-path batching;
  /// element j equals Get(i + j) exactly).
  void GetBatch(uint64_t i, uint64_t n, Tuple* out) const {
    const data::Key* k = keys_->as<data::Key>() + offset_ + i;
    if (values_ != nullptr) {
      const data::Value* v = values_->as<data::Value>() + offset_ + i;
      for (uint64_t j = 0; j < n; ++j) {
        out[j].key = k[j];
        out[j].value = v[j];
      }
    } else {
      for (uint64_t j = 0; j < n; ++j) {
        out[j].key = k[j];
        out[j].value = static_cast<data::Value>(offset_ + i + j);  // row id
      }
    }
  }

  /// Bulk key fetch: keys of tuples [i, i + n) into `out` (histograms
  /// touch only the key column).
  void KeysBatch(uint64_t i, uint64_t n, data::Key* out) const {
    std::memcpy(out, keys_->as<data::Key>() + offset_ + i,
                n * sizeof(data::Key));
  }

  /// Accounts a sequential read of tuples [begin, end) of this view.
  void AccountRead(exec::KernelContext& ctx, uint64_t begin,
                   uint64_t end) const {
    ctx.ReadSeq(*keys_, (offset_ + begin) * sizeof(data::Key),
                (end - begin) * sizeof(data::Key));
    if (values_ != nullptr) {
      ctx.ReadSeq(*values_, (offset_ + begin) * sizeof(data::Value),
                  (end - begin) * sizeof(data::Value));
    }
  }

  /// Accounts a sequential read of only the key column (prefix sums read a
  /// single column per relation thanks to the columnar layout).
  void AccountReadKeys(exec::KernelContext& ctx, uint64_t begin,
                       uint64_t end) const {
    ctx.ReadSeq(*keys_, (offset_ + begin) * sizeof(data::Key),
                (end - begin) * sizeof(data::Key));
  }

  /// Bytes read per tuple.
  uint64_t BytesPerTuple() const {
    return sizeof(data::Key) + (values_ != nullptr ? sizeof(data::Value) : 0);
  }

 private:
  const mem::Buffer* keys_;
  const mem::Buffer* values_;  // may be null: generate row ids on the fly
  uint64_t offset_;
  uint64_t num_tuples_;
};

/// Row-format view over partitioned tuples (pass-2+ input).
class RowInput {
 public:
  RowInput(const mem::Buffer* rows, uint64_t offset_tuples,
           uint64_t num_tuples)
      : rows_(rows), offset_(offset_tuples), num_tuples_(num_tuples) {}

  uint64_t size() const { return num_tuples_; }

  Tuple Get(uint64_t i) const { return rows_->as<Tuple>()[offset_ + i]; }

  void GetBatch(uint64_t i, uint64_t n, Tuple* out) const {
    std::memcpy(out, rows_->as<Tuple>() + offset_ + i, n * sizeof(Tuple));
  }

  void KeysBatch(uint64_t i, uint64_t n, data::Key* out) const {
    const Tuple* rows = rows_->as<Tuple>() + offset_ + i;
    for (uint64_t j = 0; j < n; ++j) out[j] = rows[j].key;
  }

  void AccountRead(exec::KernelContext& ctx, uint64_t begin,
                   uint64_t end) const {
    ctx.ReadSeq(*rows_, (offset_ + begin) * sizeof(Tuple),
                (end - begin) * sizeof(Tuple));
  }

  /// Row-format tuples interleave keys with values, so a key scan still
  /// touches every cacheline: same cost as a full read.
  void AccountReadKeys(exec::KernelContext& ctx, uint64_t begin,
                       uint64_t end) const {
    AccountRead(ctx, begin, end);
  }

  uint64_t BytesPerTuple() const { return sizeof(Tuple); }

 private:
  const mem::Buffer* rows_;
  uint64_t offset_;
  uint64_t num_tuples_;
};

/// Row-format view over a list of slices (a pass-1 partition is stored as
/// per-block slices with alignment gaps; pass 2 reads it through this view
/// as one flat index space).
class SlicedRowInput {
 public:
  /// `slices` are (tuple offset, tuple count) pairs in storage order.
  SlicedRowInput(const mem::Buffer* rows,
                 std::vector<std::pair<uint64_t, uint64_t>> slices)
      : rows_(rows), slices_(std::move(slices)) {
    starts_.reserve(slices_.size() + 1);
    starts_.push_back(0);
    for (const auto& [begin, count] : slices_) {
      (void)begin;
      starts_.push_back(starts_.back() + count);
    }
  }

  uint64_t size() const { return starts_.back(); }

  Tuple Get(uint64_t i) const {
    // Accesses are overwhelmingly sequential; cache the current slice.
    Seek(i);
    const auto& [begin, count] = slices_[cursor_];
    (void)count;
    return rows_->as<Tuple>()[begin + (i - starts_[cursor_])];
  }

  /// Bulk Get across slice boundaries: each contiguous sub-run within one
  /// slice is a memcpy; element j equals Get(i + j) exactly.
  void GetBatch(uint64_t i, uint64_t n, Tuple* out) const {
    const Tuple* rows = rows_->as<Tuple>();
    uint64_t done = 0;
    while (done < n) {
      const uint64_t pos = i + done;
      Seek(pos);
      const uint64_t in_slice = pos - starts_[cursor_];
      const uint64_t take =
          std::min(n - done, slices_[cursor_].second - in_slice);
      std::memcpy(out + done, rows + slices_[cursor_].first + in_slice,
                  take * sizeof(Tuple));
      done += take;
    }
  }

  void KeysBatch(uint64_t i, uint64_t n, data::Key* out) const {
    const Tuple* rows = rows_->as<Tuple>();
    uint64_t done = 0;
    while (done < n) {
      const uint64_t pos = i + done;
      Seek(pos);
      const uint64_t in_slice = pos - starts_[cursor_];
      const uint64_t take =
          std::min(n - done, slices_[cursor_].second - in_slice);
      const Tuple* src = rows + slices_[cursor_].first + in_slice;
      for (uint64_t j = 0; j < take; ++j) out[done + j] = src[j].key;
      done += take;
    }
  }

  void AccountRead(exec::KernelContext& ctx, uint64_t begin,
                   uint64_t end) const {
    for (size_t k = 0; k < slices_.size(); ++k) {
      uint64_t lo = std::max(begin, starts_[k]);
      uint64_t hi = std::min(end, starts_[k + 1]);
      if (lo >= hi) continue;
      ctx.ReadSeq(*rows_,
                  (slices_[k].first + (lo - starts_[k])) * sizeof(Tuple),
                  (hi - lo) * sizeof(Tuple));
    }
  }

  void AccountReadKeys(exec::KernelContext& ctx, uint64_t begin,
                       uint64_t end) const {
    AccountRead(ctx, begin, end);
  }

  uint64_t BytesPerTuple() const { return sizeof(Tuple); }

 private:
  /// Points cursor_ at the slice containing flat index `i`.
  void Seek(uint64_t i) const {
    if (i < starts_[cursor_] || i >= starts_[cursor_ + 1]) {
      auto it = std::upper_bound(starts_.begin(), starts_.end(), i);
      cursor_ = static_cast<size_t>(it - starts_.begin()) - 1;
    }
  }

  const mem::Buffer* rows_;
  std::vector<std::pair<uint64_t, uint64_t>> slices_;
  std::vector<uint64_t> starts_;
  mutable size_t cursor_ = 0;
};

}  // namespace triton::partition

#endif  // TRITON_PARTITION_INPUT_H_
