// Hash functions used by the join algorithms.
//
// The paper uses a multiply-shift hash (Dietzfelbinger et al.) in both
// hashing schemes (Section 6.1). Radix partitioning extracts contiguous bit
// ranges of the hashed key, so the same function drives partitioning and
// hash-table placement; partition bits and in-partition hash bits never
// overlap.

#ifndef TRITON_HASH_HASH_FN_H_
#define TRITON_HASH_HASH_FN_H_

#include <cstdint>

namespace triton::hash {

/// Multiply-shift hashing: multiplies by a fixed odd constant; the high
/// bits are well mixed. Returns the full 64-bit product; callers extract
/// the bit ranges they need.
inline uint64_t MultiplyShift(uint64_t key) {
  // Odd constant from the multiply-shift family (golden-ratio based).
  return key * 0x9e3779b97f4a7c15ULL;
}

/// Extracts `bits` bits of the hash starting at `shift` (from the top, so
/// that successive radix passes consume disjoint, well-mixed ranges).
/// shift counts bits already consumed by earlier passes.
inline uint64_t HashBits(uint64_t hashed, uint32_t shift, uint32_t bits) {
  if (bits == 0) return 0;
  return (hashed >> (64 - shift - bits)) & ((uint64_t{1} << bits) - 1);
}

/// Convenience: partition index for a key in a pass consuming `bits` bits
/// after `shift` bits were consumed by earlier passes.
inline uint64_t RadixPartition(uint64_t key, uint32_t shift, uint32_t bits) {
  return HashBits(MultiplyShift(key), shift, bits);
}

/// Murmur3 finalizer; used where an independent second hash is needed
/// (e.g. hash-table placement independent of the partition bits).
inline uint64_t Murmur3Fmix(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace triton::hash

#endif  // TRITON_HASH_HASH_FN_H_
