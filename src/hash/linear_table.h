// Linear-probing hash table with a 50% load factor.
//
// This is the paper's no-partitioning-join hashing scheme (Section 6.1):
// open addressing with linear probing, capacity rounded up to a power of
// two at twice the build cardinality, multiply-shift placement. The probe
// sequence is exposed step by step so callers can account every slot touch
// individually (each touch is a random memory access in the simulation).

#ifndef TRITON_HASH_LINEAR_TABLE_H_
#define TRITON_HASH_LINEAR_TABLE_H_

#include <cstdint>

#include "hash/hash_fn.h"
#include "hash/perfect_table.h"
#include "util/bits.h"
#include "util/logging.h"

namespace triton::hash {

/// Open-addressing table over caller-provided storage.
/// Storage must be zero-initialized; key 0 marks empty slots.
class LinearTable {
 public:
  LinearTable(Entry* slots, uint64_t capacity)
      : slots_(slots), capacity_(capacity), mask_(capacity - 1) {
    DCHECK(util::IsPowerOfTwo(capacity));
  }

  uint64_t capacity() const { return capacity_; }

  /// Capacity (in entries) for `build_tuples` at a 50% load factor,
  /// rounded up to a power of two.
  static uint64_t CapacityFor(uint64_t build_tuples) {
    return util::NextPowerOfTwo(build_tuples * 2);
  }

  /// Byte size of backing storage for `build_tuples`.
  static uint64_t StorageBytes(uint64_t build_tuples) {
    return CapacityFor(build_tuples) * sizeof(Entry);
  }

  /// Home slot of a key.
  uint64_t SlotOf(int64_t key) const {
    return HashBits(MultiplyShift(static_cast<uint64_t>(key)), 0,
                    util::FloorLog2(capacity_)) &
           mask_;
  }

  /// Next slot in the probe sequence.
  uint64_t NextSlot(uint64_t slot) const { return (slot + 1) & mask_; }

  /// Inserts a key/value; returns the number of slots touched (>= 1).
  /// Keys must be nonzero. Aborts if the table is full.
  uint64_t Insert(int64_t key, int64_t value) {
    DCHECK_NE(key, 0);
    uint64_t slot = SlotOf(key);
    uint64_t touches = 1;
    while (slots_[slot].key != 0) {
      slot = NextSlot(slot);
      ++touches;
      CHECK_LE(touches, capacity_) << "linear table full";
    }
    slots_[slot].key = key;
    slots_[slot].value = value;
    return touches;
  }

  /// Probes for a key; sets *value on match. Returns slots touched.
  /// `found` reports the match outcome.
  uint64_t Probe(int64_t key, int64_t* value, bool* found) const {
    uint64_t slot = SlotOf(key);
    uint64_t touches = 1;
    while (true) {
      const Entry& e = slots_[slot];
      if (e.key == key) {
        *value = e.value;
        *found = true;
        return touches;
      }
      if (e.key == 0) {
        *found = false;
        return touches;
      }
      slot = NextSlot(slot);
      ++touches;
    }
  }

  const Entry* slots() const { return slots_; }

 private:
  Entry* slots_;
  uint64_t capacity_;
  uint64_t mask_;
};

}  // namespace triton::hash

#endif  // TRITON_HASH_LINEAR_TABLE_H_
