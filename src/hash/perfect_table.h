// Perfect (array) hash table.
//
// For dense primary keys 1..N the build side can be stored as a plain
// array indexed by key-1 — the paper's "perfect hashing" / array-join
// variant (Schuh et al.). One 16-byte <key, value> entry per slot; a zero
// key marks an empty slot (generated keys start at 1).

#ifndef TRITON_HASH_PERFECT_TABLE_H_
#define TRITON_HASH_PERFECT_TABLE_H_

#include <cstdint>

#include "util/logging.h"

namespace triton::hash {

/// One 16-byte hash table entry.
struct Entry {
  int64_t key = 0;
  int64_t value = 0;
};

/// Array table over caller-provided storage of `capacity` entries.
/// Keys must lie in [1, capacity].
class PerfectTable {
 public:
  PerfectTable(Entry* slots, uint64_t capacity)
      : slots_(slots), capacity_(capacity) {}

  uint64_t capacity() const { return capacity_; }

  /// Byte size of the backing storage for a given key domain.
  static uint64_t StorageBytes(uint64_t key_domain) {
    return key_domain * sizeof(Entry);
  }

  /// Slot index a key maps to.
  uint64_t SlotOf(int64_t key) const {
    DCHECK_GE(key, 1);
    DCHECK_LE(static_cast<uint64_t>(key), capacity_);
    return static_cast<uint64_t>(key - 1);
  }

  /// Inserts a key/value pair (exactly one insert per key).
  void Insert(int64_t key, int64_t value) {
    Entry& e = slots_[SlotOf(key)];
    e.key = key;
    e.value = value;
  }

  /// Probes for a key; returns true and sets *value on a match.
  bool Probe(int64_t key, int64_t* value) const {
    if (key < 1 || static_cast<uint64_t>(key) > capacity_) return false;
    const Entry& e = slots_[SlotOf(key)];
    if (e.key != key) return false;
    *value = e.value;
    return true;
  }

 private:
  Entry* slots_;
  uint64_t capacity_;
};

}  // namespace triton::hash

#endif  // TRITON_HASH_PERFECT_TABLE_H_
