// Bucket-chaining hash table for scratchpad-resident join partitions.
//
// The paper's Triton and radix joins build a bucket-chaining table with
// 2048 header entries per partition in scratchpad memory (Section 6.1,
// following He et al. and Sioulas et al.). The table separates a small
// header array (bucket heads) from entry arrays (key, value, next-link),
// all over caller-provided storage, so the whole structure fits a 64 KiB
// scratchpad alongside the partition.

#ifndef TRITON_HASH_BUCKET_CHAIN_TABLE_H_
#define TRITON_HASH_BUCKET_CHAIN_TABLE_H_

#include <cstdint>

#include "hash/hash_fn.h"
#include "util/bits.h"
#include "util/logging.h"

namespace triton::hash {

/// Chained table over caller-provided arrays.
///
/// Layout: heads[num_buckets] holds the index+1 of the first entry of each
/// bucket (0 = empty); entries are appended densely with next[] links.
class BucketChainTable {
 public:
  /// Default bucket count from the paper.
  static constexpr uint32_t kDefaultBuckets = 2048;

  /// `heads` must have `num_buckets` elements (zero-initialized);
  /// `keys`/`values`/`next` must each hold `max_entries` elements.
  BucketChainTable(uint32_t* heads, uint32_t num_buckets, int64_t* keys,
                   int64_t* values, uint32_t* next, uint32_t max_entries)
      : heads_(heads),
        num_buckets_(num_buckets),
        bucket_mask_(num_buckets - 1),
        keys_(keys),
        values_(values),
        next_(next),
        max_entries_(max_entries) {
    DCHECK(util::IsPowerOfTwo(num_buckets));
  }

  /// Scratchpad bytes needed for a table of `max_entries` entries.
  static uint64_t StorageBytes(uint32_t num_buckets, uint32_t max_entries) {
    return num_buckets * sizeof(uint32_t) +
           static_cast<uint64_t>(max_entries) *
               (sizeof(int64_t) * 2 + sizeof(uint32_t));
  }

  uint32_t size() const { return size_; }
  uint32_t num_buckets() const { return num_buckets_; }

  /// Bucket a key belongs to. Uses hash bits disjoint from the radix
  /// partitioning bits: partitioning consumes the top `radix_shift` bits.
  uint32_t BucketOf(int64_t key, uint32_t radix_shift) const {
    return static_cast<uint32_t>(
        HashBits(MultiplyShift(static_cast<uint64_t>(key)), radix_shift,
                 util::FloorLog2(num_buckets_)) &
        bucket_mask_);
  }

  /// Inserts a key/value pair; aborts if storage is exhausted.
  void Insert(int64_t key, int64_t value, uint32_t radix_shift) {
    CHECK_LT(size_, max_entries_) << "bucket-chain table full";
    uint32_t idx = size_++;
    keys_[idx] = key;
    values_[idx] = value;
    uint32_t bucket = BucketOf(key, radix_shift);
    next_[idx] = heads_[bucket];
    heads_[bucket] = idx + 1;
  }

  /// Probes for a key; invokes `on_match(value)` for every match.
  /// Returns the chain length walked.
  template <typename Fn>
  uint32_t Probe(int64_t key, uint32_t radix_shift, Fn&& on_match) const {
    uint32_t bucket = BucketOf(key, radix_shift);
    uint32_t walked = 0;
    for (uint32_t cur = heads_[bucket]; cur != 0; cur = next_[cur - 1]) {
      ++walked;
      if (keys_[cur - 1] == key) {
        on_match(values_[cur - 1]);
      }
    }
    return walked;
  }

  /// Returns the entry index of the first match for `key`, or UINT32_MAX.
  /// Aggregations use this to accumulate into an existing group in place.
  uint32_t FindFirst(int64_t key, uint32_t radix_shift) const {
    uint32_t bucket = BucketOf(key, radix_shift);
    for (uint32_t cur = heads_[bucket]; cur != 0; cur = next_[cur - 1]) {
      if (keys_[cur - 1] == key) return cur - 1;
    }
    return UINT32_MAX;
  }

  /// Resets the table for reuse with another partition.
  void Clear() {
    for (uint32_t b = 0; b < num_buckets_; ++b) heads_[b] = 0;
    size_ = 0;
  }

 private:
  uint32_t* heads_;
  uint32_t num_buckets_;
  uint32_t bucket_mask_;
  int64_t* keys_;
  int64_t* values_;
  uint32_t* next_;
  uint32_t max_entries_;
  uint32_t size_ = 0;
};

}  // namespace triton::hash

#endif  // TRITON_HASH_BUCKET_CHAIN_TABLE_H_
