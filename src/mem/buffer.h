// Simulated device/host memory buffers.
//
// All buffers live in host RAM (the simulation is functional), but each
// buffer carries a *placement map* declaring which simulated pool — GPU
// on-board memory or CPU memory — every page belongs to. Placement drives
// cost accounting: accesses to CPU-memory pages cross the simulated
// interconnect and the IOMMU, accesses to GPU-memory pages use on-board
// bandwidth and the GPU-memory TLB path.
//
// Three placements exist:
//   - uniform GPU      (cudaMalloc equivalent)
//   - uniform CPU      (pageable host memory, 2 MiB huge pages)
//   - interleaved      (Section 5.3: GPU pages interleaved with CPU pages
//                       into one contiguous virtual array, in proportion to
//                       the physical allocation sizes)

#ifndef TRITON_MEM_BUFFER_H_
#define TRITON_MEM_BUFFER_H_

#include <cstdint>
#include <memory>

#include "sim/tlb.h"
#include "util/logging.h"

namespace triton::mem {

class Allocator;

/// Page-placement pattern of a buffer.
struct Placement {
  /// Pages per interleave group that are GPU-resident.
  uint32_t gpu_pages_per_group = 0;
  /// Pages per interleave group that are CPU-resident.
  uint32_t cpu_pages_per_group = 1;

  static Placement AllGpu() { return {1, 0}; }
  static Placement AllCpu() { return {0, 1}; }

  uint32_t group_size() const {
    return gpu_pages_per_group + cpu_pages_per_group;
  }

  /// Fraction of pages that are GPU-resident.
  double GpuFraction() const {
    return static_cast<double>(gpu_pages_per_group) /
           static_cast<double>(group_size());
  }

  /// Location of the `page_index`-th page. Within each group the GPU pages
  /// come first, evenly spreading GPU pages through the array.
  sim::PageLocation LocationOfPage(uint64_t page_index) const {
    uint64_t in_group = page_index % group_size();
    return in_group < gpu_pages_per_group ? sim::PageLocation::kGpuMem
                                          : sim::PageLocation::kCpuMem;
  }
};

/// A move-only allocation with a placement map.
///
/// data() is valid host memory of size() bytes; LocationOf() maps byte
/// offsets to simulated pools at page granularity.
class Buffer {
 public:
  Buffer() = default;
  ~Buffer();

  Buffer(Buffer&& other) noexcept;
  Buffer& operator=(Buffer&& other) noexcept;
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  uint64_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

  /// Typed view of the buffer contents.
  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(data_);
  }

  /// Simulated page size this buffer was allocated with.
  uint64_t page_bytes() const { return page_bytes_; }

  const Placement& placement() const { return placement_; }

  /// Pool owning the page containing byte `offset`.
  sim::PageLocation LocationOf(uint64_t offset) const {
    DCHECK_LT(offset, size_);
    return placement_.LocationOfPage(offset / page_bytes_);
  }

  /// Virtual base address used for TLB simulation and traffic accounting.
  /// Allocator-owned buffers get a *deterministic* simulated address (a
  /// bump pointer per Allocator), so TLB set conflicts — and through them
  /// every performance counter — depend only on the allocation sequence,
  /// never on where the host heap happened to place the backing storage.
  uint64_t base_addr() const {
    return sim_addr_ != 0 ? sim_addr_ : reinterpret_cast<uint64_t>(data_);
  }

  /// Bytes of this buffer resident in GPU memory.
  uint64_t GpuBytes() const { return gpu_bytes_; }
  /// Bytes of this buffer resident in CPU memory.
  uint64_t CpuBytes() const { return size_ - gpu_bytes_; }

 private:
  friend class Allocator;

  uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  uint64_t page_bytes_ = 1;
  uint64_t gpu_bytes_ = 0;
  /// Simulated virtual address; 0 = fall back to the host pointer.
  uint64_t sim_addr_ = 0;
  Placement placement_ = Placement::AllCpu();
  Allocator* owner_ = nullptr;
};

}  // namespace triton::mem

#endif  // TRITON_MEM_BUFFER_H_
