#include "mem/allocator.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/bits.h"
#include "util/fastpath.h"
#include "util/logging.h"
#include "util/units.h"

namespace triton::mem {

namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define TRITON_HOST_BLOCK_POOL 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define TRITON_HOST_BLOCK_POOL 0
#else
#define TRITON_HOST_BLOCK_POOL 1
#endif
#else
#define TRITON_HOST_BLOCK_POOL 1
#endif

/// Process-wide pool of host storage blocks backing simulated buffers.
/// Benches and the serve layer tear whole Devices down between cells and
/// re-allocate the same buffer sizes immediately after; recycling the host
/// blocks avoids re-faulting gigabytes per cell (and preserves huge-page
/// backing once established). Host pointers are invisible to the model —
/// simulated addresses come from the allocator's deterministic bump
/// pointer — so pooling cannot change modeled physics. Disabled under
/// ASan/TSan so lifetime bugs stay visible to the sanitizers.
class HostBlockPool {
 public:
  struct Block {
    void* data = nullptr;
  };

  static HostBlockPool& Get() {
    static HostBlockPool* pool = new HostBlockPool;
    return *pool;
  }

  Block Acquire(uint64_t bytes, uint64_t align) {
#if TRITON_HOST_BLOCK_POOL
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = free_.find({bytes, align});
      if (it != free_.end() && !it->second.empty()) {
        void* p = it->second.back();
        it->second.pop_back();
        pooled_bytes_ -= bytes;
        live_.emplace(p, std::pair<uint64_t, uint64_t>{bytes, align});
        return {p};
      }
    }
    void* p = std::aligned_alloc(align, bytes);
    if (p != nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      live_.emplace(p, std::pair<uint64_t, uint64_t>{bytes, align});
    }
    return {p};
#else
    return {std::aligned_alloc(align, bytes)};
#endif
  }

  /// Returns true if the pointer was pool-managed (retained or freed).
  bool Release(void* p) {
#if TRITON_HOST_BLOCK_POOL
    std::lock_guard<std::mutex> lock(mu_);
    auto it = live_.find(p);
    if (it == live_.end()) return false;
    auto [bytes, align] = it->second;
    live_.erase(it);
    if (!util::FastPathEnabled() ||
        pooled_bytes_ + bytes > kMaxPooledBytes) {
      std::free(p);
      return true;
    }
    pooled_bytes_ += bytes;
    free_[{bytes, align}].push_back(p);
    return true;
#else
    (void)p;
    return false;
#endif
  }

 private:
  static constexpr uint64_t kMaxPooledBytes = 2ull << 30;

  std::mutex mu_;
  uint64_t pooled_bytes_ = 0;
  std::map<std::pair<uint64_t, uint64_t>, std::vector<void*>> free_;
  std::unordered_map<void*, std::pair<uint64_t, uint64_t>> live_;
};

/// Free path for every host block: returns it to the pool when pooled,
/// falls back to the libc allocator otherwise.
void FreeHostBlock(void* p) {
  if (p == nullptr) return;
  if (!HostBlockPool::Get().Release(p)) std::free(p);
}

}  // namespace

Buffer::~Buffer() {
  if (owner_ != nullptr) {
    owner_->Free(*this);
  } else if (data_ != nullptr) {
    FreeHostBlock(data_);
    data_ = nullptr;
  }
}

Buffer::Buffer(Buffer&& other) noexcept { *this = std::move(other); }

Buffer& Buffer::operator=(Buffer&& other) noexcept {
  if (this != &other) {
    if (owner_ != nullptr) {
      owner_->Free(*this);
    } else if (data_ != nullptr) {
      FreeHostBlock(data_);
    }
    data_ = other.data_;
    size_ = other.size_;
    page_bytes_ = other.page_bytes_;
    gpu_bytes_ = other.gpu_bytes_;
    sim_addr_ = other.sim_addr_;
    placement_ = other.placement_;
    owner_ = other.owner_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.gpu_bytes_ = 0;
    other.sim_addr_ = 0;
    other.owner_ = nullptr;
  }
  return *this;
}

Allocator::Allocator(const sim::HwSpec& hw) : hw_(hw) {
  CHECK_GT(hw_.tlb.page_bytes, 0u);
}

Allocator::~Allocator() {
  if (live_buffers_ != 0) {
    LOG(WARNING) << "Allocator destroyed with " << live_buffers_
                 << " live buffers";
  }
  if (!arenas_.empty()) {
    LOG(WARNING) << "Allocator destroyed with " << arenas_.size()
                 << " open arena frames";
  }
}

uint64_t Allocator::BeginArena() {
  ArenaFrame frame;
  frame.id = next_arena_id_++;
  frame.sim_addr_checkpoint = next_sim_addr_;
  frame.live_checkpoint = live_buffers_;
  arenas_.push_back(frame);
  if (observer_ != nullptr) {
    observer_->OnArenaBegin(frame.id, frame.sim_addr_checkpoint);
  }
  return frame.id;
}

util::Status Allocator::ArenaViolation(uint64_t id, std::string message) {
  if (observer_ != nullptr) observer_->OnArenaViolation(id, message);
  return util::Status::FailedPrecondition(std::move(message));
}

util::Status Allocator::EndArena(uint64_t id) {
  if (std::find(closed_arena_ids_.begin(), closed_arena_ids_.end(), id) !=
      closed_arena_ids_.end()) {
    return ArenaViolation(
        id, "arena " + std::to_string(id) + " released twice");
  }
  auto it = std::find_if(arenas_.begin(), arenas_.end(),
                         [id](const ArenaFrame& f) { return f.id == id; });
  if (it == arenas_.end()) {
    return ArenaViolation(
        id, "arena " + std::to_string(id) + " is not an open frame");
  }
  if (it + 1 != arenas_.end()) {
    return ArenaViolation(
        id, "arena " + std::to_string(id) + " released out of order (" +
                std::to_string(arenas_.back().id) + " is still open)");
  }
  const ArenaFrame frame = *it;
  if (live_buffers_ != frame.live_checkpoint) {
    return ArenaViolation(
        id, "arena " + std::to_string(id) + " released with " +
                std::to_string(live_buffers_ - frame.live_checkpoint) +
                " live buffer(s); freeing them later would corrupt the "
                "rewound bump pointer");
  }
  // Clean close: rewind the bump pointer so the next query's simulated
  // addresses are independent of this arena's history.
  next_sim_addr_ = frame.sim_addr_checkpoint;
  arenas_.pop_back();
  closed_arena_ids_.push_back(id);
  if (observer_ != nullptr) observer_->OnArenaEnd(id);
  return util::Status::OK();
}

util::StatusOr<Buffer> Allocator::AllocateImpl(uint64_t bytes,
                                               Placement placement) {
  if (bytes == 0) {
    return util::Status::InvalidArgument("cannot allocate 0 bytes");
  }
  const uint64_t page = hw_.tlb.page_bytes;
  uint64_t padded = util::AlignUp(bytes, page);
  uint64_t num_pages = padded / page;

  // Count GPU pages in the placement pattern over this allocation.
  uint64_t gpu_pages = 0;
  uint32_t group = placement.group_size();
  uint64_t full_groups = num_pages / group;
  gpu_pages += full_groups * placement.gpu_pages_per_group;
  for (uint64_t p = full_groups * group; p < num_pages; ++p) {
    if (placement.LocationOfPage(p) == sim::PageLocation::kGpuMem) ++gpu_pages;
  }
  uint64_t gpu_bytes = gpu_pages * page;
  uint64_t cpu_bytes = padded - gpu_bytes;

  if (gpu_used_ + gpu_bytes > gpu_capacity()) {
    return util::Status::OutOfMemory(
        "GPU memory exhausted: need " + util::FormatBytes(gpu_bytes) +
        ", free " + util::FormatBytes(gpu_free()));
  }
  if (cpu_used_ + cpu_bytes > cpu_capacity()) {
    return util::Status::OutOfMemory(
        "CPU memory exhausted: need " + util::FormatBytes(cpu_bytes) +
        ", used " + util::FormatBytes(cpu_used_));
  }

  // Align host allocations to the simulated page size so that TLB-range
  // arithmetic on real pointers is exact.
  uint64_t align = std::min<uint64_t>(page, 1 * util::kMiB);
  HostBlockPool::Block block = HostBlockPool::Get().Acquire(padded, align);
  void* data = block.data;
  if (data == nullptr) {
    return util::Status::OutOfMemory("host allocation failed for " +
                                     util::FormatBytes(padded));
  }

  gpu_used_ += gpu_bytes;
  cpu_used_ += cpu_bytes;
  ++live_buffers_;

  Buffer buf;
  buf.data_ = static_cast<uint8_t*>(data);
  buf.size_ = bytes;
  buf.page_bytes_ = page;
  buf.gpu_bytes_ = gpu_bytes;
  // Deterministic simulated virtual address: a never-reused bump pointer
  // with the same alignment as the host storage. TLB range ids derive from
  // this address, so simulated counters are a pure function of the
  // allocation sequence, independent of host heap/mmap layout (and thus
  // identical across runs and executor thread counts).
  buf.sim_addr_ = util::AlignUp(next_sim_addr_, align);
  next_sim_addr_ = buf.sim_addr_ + padded;
  buf.placement_ = placement;
  buf.owner_ = this;
  if (observer_ != nullptr) observer_->OnAlloc(buf);
  return buf;
}

util::StatusOr<Buffer> Allocator::AllocateGpu(uint64_t bytes) {
  return AllocateImpl(bytes, Placement::AllGpu());
}

util::StatusOr<Buffer> Allocator::AllocateCpu(uint64_t bytes) {
  return AllocateImpl(bytes, Placement::AllCpu());
}

util::StatusOr<Buffer> Allocator::AllocateInterleaved(uint64_t bytes,
                                                      uint64_t gpu_bytes) {
  if (gpu_bytes == 0) return AllocateCpu(bytes);
  if (gpu_bytes >= bytes) return AllocateGpu(bytes);

  // Choose the smallest integer ratio g:c with g+c <= 64 approximating
  // gpu_bytes/bytes from below (never overshooting the GPU budget), e.g.
  // one GPU page after every two CPU pages.
  double frac = static_cast<double>(gpu_bytes) / static_cast<double>(bytes);
  uint32_t best_g = 0, best_c = 1;
  double best_err = 1.0;
  for (uint32_t total = 2; total <= 64; ++total) {
    uint32_t g = static_cast<uint32_t>(frac * static_cast<double>(total));
    if (g == 0 || g >= total) continue;
    double err = frac - static_cast<double>(g) / total;
    if (err >= 0.0 && err < best_err - 1e-12) {
      best_err = err;
      best_g = g;
      best_c = total - g;
    }
  }
  if (best_g == 0) return AllocateCpu(bytes);
  Placement placement{best_g, best_c};
  return AllocateImpl(bytes, placement);
}

void Allocator::Free(Buffer& buffer) {
  if (buffer.data_ == nullptr) return;
  CHECK(buffer.owner_ == this);
  if (observer_ != nullptr) observer_->OnFree(buffer);
  uint64_t padded = util::AlignUp(buffer.size_, buffer.page_bytes_);
  gpu_used_ -= buffer.gpu_bytes_;
  cpu_used_ -= padded - buffer.gpu_bytes_;
  --live_buffers_;
  FreeHostBlock(buffer.data_);
  buffer.data_ = nullptr;
  buffer.size_ = 0;
  buffer.gpu_bytes_ = 0;
  buffer.owner_ = nullptr;
}

}  // namespace triton::mem
