// Capacity-tracking allocator for simulated GPU and CPU memory.
//
// GPU memory is the scarce resource the paper scales against: the allocator
// enforces the (scaled) 16 GiB on-board capacity and returns OutOfMemory
// when a GPU allocation would exceed it, which is what triggers spilling in
// the Triton join. CPU memory is checked against the (much larger) socket
// capacity.

#ifndef TRITON_MEM_ALLOCATOR_H_
#define TRITON_MEM_ALLOCATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mem/buffer.h"
#include "sim/hw_spec.h"
#include "util/status.h"

namespace triton::mem {

/// Receives allocation lifecycle events. The DeviceSanitizer registers one
/// to maintain its live-allocation shadow map; the interface lives here so
/// mem stays independent of the sanitizer layer.
class AllocationObserver {
 public:
  virtual ~AllocationObserver() = default;
  /// Called after `buffer` was successfully allocated.
  virtual void OnAlloc(const Buffer& buffer) = 0;
  /// Called before `buffer`'s storage is released.
  virtual void OnFree(const Buffer& buffer) = 0;

  // --- Arena lifecycle (see Allocator::BeginArena) ---

  /// Called when an arena frame is opened; `base_addr` is the simulated
  /// address the bump pointer will rewind to on a clean close.
  virtual void OnArenaBegin(uint64_t /*id*/, uint64_t /*base_addr*/) {}
  /// Called when an arena frame closes cleanly.
  virtual void OnArenaEnd(uint64_t /*id*/) {}
  /// Called when an arena close is rejected (double release, out-of-order
  /// release, or live buffers still inside the arena).
  virtual void OnArenaViolation(uint64_t /*id*/,
                                const std::string& /*message*/) {}
};

/// Allocates simulated-placement buffers and tracks pool usage.
class Allocator {
 public:
  explicit Allocator(const sim::HwSpec& hw);
  ~Allocator();

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  /// Allocates `bytes` entirely in GPU memory. Fails with OutOfMemory when
  /// the GPU capacity would be exceeded.
  util::StatusOr<Buffer> AllocateGpu(uint64_t bytes);

  /// Allocates `bytes` in pageable CPU memory (2 MiB simulated huge pages).
  util::StatusOr<Buffer> AllocateCpu(uint64_t bytes);

  /// Allocates `bytes` with `gpu_bytes` of it placed in GPU memory, the
  /// rest in CPU memory, interleaved at page granularity in proportion to
  /// the two sizes (Section 5.3). gpu_bytes == 0 degenerates to AllocateCpu
  /// and gpu_bytes >= bytes to AllocateGpu.
  util::StatusOr<Buffer> AllocateInterleaved(uint64_t bytes,
                                             uint64_t gpu_bytes);

  /// Frees a buffer explicitly (also happens on Buffer destruction).
  void Free(Buffer& buffer);

  // --- Query arenas ---
  //
  // The bump pointer behind simulated virtual addresses never recycles, so
  // a long-lived allocator (the serve layer's shared device) would hand a
  // query different addresses — and therefore different TLB-range physics —
  // depending on what ran before it. An arena frame checkpoints the bump
  // pointer: when the frame closes with every buffer allocated inside it
  // freed, the pointer rewinds to the checkpoint, making each query's
  // addresses a function of its own allocation sequence only.

  /// Opens an arena frame and returns its id (never 0, never reused).
  uint64_t BeginArena();

  /// Closes the most recent open arena frame. Fails with
  /// FailedPrecondition — leaving the bump pointer untouched and notifying
  /// the observer (the DeviceSanitizer turns this into a diagnostic) — when
  /// `id` is unknown or already closed (double release), is not the
  /// innermost open frame (out-of-order release), or still has live
  /// buffers allocated inside it (use-after-release hazard).
  util::Status EndArena(uint64_t id);

  /// Open arena frames (for tests and introspection).
  size_t open_arenas() const { return arenas_.size(); }

  /// Buffers allocated since the innermost open frame (0 when none open).
  int64_t arena_live_buffers() const {
    return arenas_.empty() ? 0
                           : live_buffers_ - arenas_.back().live_checkpoint;
  }

  /// Registers `observer` for alloc/free events (null to unregister). The
  /// observer must outlive all allocations made while it is registered.
  void set_observer(AllocationObserver* observer) { observer_ = observer; }

  uint64_t gpu_used() const { return gpu_used_; }
  uint64_t gpu_capacity() const { return hw_.gpu_mem.capacity; }
  uint64_t gpu_free() const { return gpu_capacity() - gpu_used_; }
  uint64_t cpu_used() const { return cpu_used_; }
  uint64_t cpu_capacity() const { return hw_.cpu_mem.capacity; }

  uint64_t page_bytes() const { return hw_.tlb.page_bytes; }

 private:
  util::StatusOr<Buffer> AllocateImpl(uint64_t bytes, Placement placement);

  /// One open arena frame.
  struct ArenaFrame {
    uint64_t id = 0;
    /// Bump-pointer checkpoint to rewind to on a clean close.
    uint64_t sim_addr_checkpoint = 0;
    /// live_buffers_ at open time; a clean close requires equality.
    int64_t live_checkpoint = 0;
  };

  /// Rejects an arena close: notifies the observer and returns the status
  /// without touching allocator state.
  util::Status ArenaViolation(uint64_t id, std::string message);

  sim::HwSpec hw_;
  uint64_t gpu_used_ = 0;
  uint64_t cpu_used_ = 0;
  int64_t live_buffers_ = 0;
  /// Next simulated virtual address handed out (bump pointer, never
  /// reused); starts away from 0 so null-ish addresses stay invalid.
  uint64_t next_sim_addr_ = 1ULL << 40;
  AllocationObserver* observer_ = nullptr;
  /// Open arena frames, innermost last (LIFO).
  std::vector<ArenaFrame> arenas_;
  /// Source of arena ids; monotonically increasing so a stale id can never
  /// collide with a live frame.
  uint64_t next_arena_id_ = 1;
  /// Ids of frames already closed cleanly, for double-release diagnosis.
  std::vector<uint64_t> closed_arena_ids_;
};

}  // namespace triton::mem

#endif  // TRITON_MEM_ALLOCATOR_H_
