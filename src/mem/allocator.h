// Capacity-tracking allocator for simulated GPU and CPU memory.
//
// GPU memory is the scarce resource the paper scales against: the allocator
// enforces the (scaled) 16 GiB on-board capacity and returns OutOfMemory
// when a GPU allocation would exceed it, which is what triggers spilling in
// the Triton join. CPU memory is checked against the (much larger) socket
// capacity.

#ifndef TRITON_MEM_ALLOCATOR_H_
#define TRITON_MEM_ALLOCATOR_H_

#include <cstdint>

#include "mem/buffer.h"
#include "sim/hw_spec.h"
#include "util/status.h"

namespace triton::mem {

/// Receives allocation lifecycle events. The DeviceSanitizer registers one
/// to maintain its live-allocation shadow map; the interface lives here so
/// mem stays independent of the sanitizer layer.
class AllocationObserver {
 public:
  virtual ~AllocationObserver() = default;
  /// Called after `buffer` was successfully allocated.
  virtual void OnAlloc(const Buffer& buffer) = 0;
  /// Called before `buffer`'s storage is released.
  virtual void OnFree(const Buffer& buffer) = 0;
};

/// Allocates simulated-placement buffers and tracks pool usage.
class Allocator {
 public:
  explicit Allocator(const sim::HwSpec& hw);
  ~Allocator();

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  /// Allocates `bytes` entirely in GPU memory. Fails with OutOfMemory when
  /// the GPU capacity would be exceeded.
  util::StatusOr<Buffer> AllocateGpu(uint64_t bytes);

  /// Allocates `bytes` in pageable CPU memory (2 MiB simulated huge pages).
  util::StatusOr<Buffer> AllocateCpu(uint64_t bytes);

  /// Allocates `bytes` with `gpu_bytes` of it placed in GPU memory, the
  /// rest in CPU memory, interleaved at page granularity in proportion to
  /// the two sizes (Section 5.3). gpu_bytes == 0 degenerates to AllocateCpu
  /// and gpu_bytes >= bytes to AllocateGpu.
  util::StatusOr<Buffer> AllocateInterleaved(uint64_t bytes,
                                             uint64_t gpu_bytes);

  /// Frees a buffer explicitly (also happens on Buffer destruction).
  void Free(Buffer& buffer);

  /// Registers `observer` for alloc/free events (null to unregister). The
  /// observer must outlive all allocations made while it is registered.
  void set_observer(AllocationObserver* observer) { observer_ = observer; }

  uint64_t gpu_used() const { return gpu_used_; }
  uint64_t gpu_capacity() const { return hw_.gpu_mem.capacity; }
  uint64_t gpu_free() const { return gpu_capacity() - gpu_used_; }
  uint64_t cpu_used() const { return cpu_used_; }
  uint64_t cpu_capacity() const { return hw_.cpu_mem.capacity; }

  uint64_t page_bytes() const { return hw_.tlb.page_bytes; }

 private:
  util::StatusOr<Buffer> AllocateImpl(uint64_t bytes, Placement placement);

  sim::HwSpec hw_;
  uint64_t gpu_used_ = 0;
  uint64_t cpu_used_ = 0;
  int64_t live_buffers_ = 0;
  /// Next simulated virtual address handed out (bump pointer, never
  /// reused); starts away from 0 so null-ish addresses stay invalid.
  uint64_t next_sim_addr_ = 1ULL << 40;
  AllocationObserver* observer_ = nullptr;
};

}  // namespace triton::mem

#endif  // TRITON_MEM_ALLOCATOR_H_
