#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace triton::util {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void Table::AddRow(std::vector<std::string> cells) {
  CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddNumericRow(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

std::string Table::ToText() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto append_row = [&](std::string& out,
                        const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(widths[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string sep = "+";
  for (size_t w : widths) {
    sep.append(w + 2, '-');
    sep += "+";
  }
  sep += "\n";

  std::string out = sep;
  append_row(out, headers_);
  out += sep;
  for (const auto& row : rows_) append_row(out, row);
  out += sep;
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ",";
      out += row[c];
    }
    out += "\n";
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void Table::Print(const std::string& title) const {
  std::printf("\n%s\n%s", title.c_str(), ToText().c_str());
  std::fflush(stdout);
}

}  // namespace triton::util
