// Streaming JSON writer for the benchmark-reporting layer.
//
// The output is the *canonical* serialization the regression gate
// (tools/bench_regress.py) diffs byte-for-byte against committed baselines,
// so everything about it is deterministic: keys appear in call order,
// numbers use the shortest round-trip representation (std::to_chars, locale
// independent), and the pretty-printing (2-space indent, one value per
// line) never depends on the environment. Non-finite doubles have no JSON
// number representation; they are emitted as the quoted strings "NaN",
// "Infinity" and "-Infinity" to keep the document parseable everywhere.
//
// Usage:
//   util::JsonWriter w;
//   w.BeginObject();
//   w.Key("points");
//   w.BeginArray();
//   ...
//   w.EndArray();
//   w.EndObject();
//   std::string doc = w.str();  // complete document, trailing newline

#ifndef TRITON_UTIL_JSON_H_
#define TRITON_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace triton::util {

/// Builds one JSON document incrementally; CHECK-fails on malformed use
/// (value without key inside an object, str() with open containers, ...).
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes the key for the next value; only valid inside an object.
  void Key(std::string_view name);

  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// The finished document (all containers closed), ending in '\n'.
  const std::string& str();

  /// Escapes `raw` for inclusion in a JSON string literal (no quotes).
  static std::string Escape(std::string_view raw);

  /// Deterministic number formatting: shortest representation that parses
  /// back to the same double (finite input only).
  static std::string FormatDouble(double value);

 private:
  struct Scope {
    bool is_object = false;
    size_t values = 0;
    bool key_pending = false;
  };

  /// Emits the comma/newline/indent before a value (or key) and validates
  /// that a value is legal here.
  void BeforeValue();
  void Indent();
  void Raw(std::string_view text) { out_.append(text); }

  std::string out_;
  std::vector<Scope> stack_;
  bool done_ = false;
};

}  // namespace triton::util

#endif  // TRITON_UTIL_JSON_H_
