// Pseudo-random number generation for workload synthesis and the
// random-access microbenchmarks.
//
// The paper generates its random access pattern with a linear congruential
// generator (Knuth, Seminumerical Algorithms); Lcg64 reproduces that
// approach. A splitmix-based generator is provided for key shuffling where
// statistical quality matters more than the exact paper recipe.

#ifndef TRITON_UTIL_RANDOM_H_
#define TRITON_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace triton::util {

/// 64-bit linear congruential generator (MMIX multiplier/increment).
class Lcg64 {
 public:
  explicit Lcg64(uint64_t seed = 0x853c49e6748fea9bULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_;
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  uint64_t NextBounded(uint64_t bound) {
    // Multiply-shift rejection-free mapping; slight bias is irrelevant for
    // the bound sizes used here (<= 2^40).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next() >> 16) * bound) >> 48);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

/// splitmix64: fast, well-distributed; used to derive independent seeds.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro-quality generator built on splitmix, for shuffles.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : state_(seed) {}

  uint64_t Next() { return SplitMix64(state_); }

  /// Uniform value in [0, bound). bound must be nonzero.
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

/// Fisher-Yates shuffle of `data` in place.
template <typename T>
void Shuffle(std::vector<T>& data, Rng& rng) {
  for (size_t i = data.size(); i > 1; --i) {
    size_t j = rng.NextBounded(i);
    std::swap(data[i - 1], data[j]);
  }
}

}  // namespace triton::util

#endif  // TRITON_UTIL_RANDOM_H_
