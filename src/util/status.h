// Lightweight error-handling primitives used across the library.
//
// Hot paths in this codebase do not throw exceptions; fallible operations
// return Status (or StatusOr<T> for value-producing operations), and callers
// propagate errors explicitly. Programming errors (broken invariants) use the
// CHECK macros from util/logging.h instead.

#ifndef TRITON_UTIL_STATUS_H_
#define TRITON_UTIL_STATUS_H_

#include <cstdlib>
#include <cstdio>
#include <string>
#include <utility>

namespace triton::util {

/// Error category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  /// A bounded resource (admission queue, memory-arbiter budget) is
  /// temporarily full; retrying after capacity is released can succeed.
  /// Distinct from kOutOfMemory, which reports a hard capacity miss inside
  /// the allocator itself.
  kResourceExhausted,
};

/// Returns a human-readable name for a status code ("OK", "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: either OK or a code plus message.
///
/// Statuses are cheap to move and copy (one string). Use the factory
/// functions (Status::OK(), Status::InvalidArgument(...)) to construct.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
///
/// Access the value with value() / operator* only after checking ok();
/// accessing the value of an errored StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, mirrors absl::StatusOr).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from an error status. Must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      std::fprintf(stderr, "StatusOr constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return value_;
  }
  T& value() & {
    CheckOk();
    return value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::fprintf(stderr, "StatusOr value access on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  T value_{};
};

}  // namespace triton::util

/// Propagates a non-OK Status out of the enclosing function.
#define TRITON_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::triton::util::Status status_macro_tmp = (expr);  \
    if (!status_macro_tmp.ok()) return status_macro_tmp; \
  } while (0)

#endif  // TRITON_UTIL_STATUS_H_
