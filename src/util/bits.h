// Bit-twiddling helpers shared by the radix-partitioning and hashing layers.

#ifndef TRITON_UTIL_BITS_H_
#define TRITON_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace triton::util {

/// True if x is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x (x = 0 maps to 1).
constexpr uint64_t NextPowerOfTwo(uint64_t x) {
  return x <= 1 ? 1 : std::bit_ceil(x);
}

/// floor(log2(x)); x must be nonzero.
constexpr uint32_t FloorLog2(uint64_t x) {
  return 63 - static_cast<uint32_t>(std::countl_zero(x));
}

/// ceil(log2(x)); x must be nonzero.
constexpr uint32_t CeilLog2(uint64_t x) {
  return x <= 1 ? 0 : FloorLog2(x - 1) + 1;
}

/// Rounds x up to the next multiple of `align` (a power of two).
constexpr uint64_t AlignUp(uint64_t x, uint64_t align) {
  return (x + align - 1) & ~(align - 1);
}

/// Rounds x down to a multiple of `align` (a power of two).
constexpr uint64_t AlignDown(uint64_t x, uint64_t align) {
  return x & ~(align - 1);
}

/// Extracts `bits` bits of x starting at bit `shift` (LSB order).
constexpr uint64_t ExtractBits(uint64_t x, uint32_t shift, uint32_t bits) {
  return (x >> shift) & ((uint64_t{1} << bits) - 1);
}

/// Ceil division for unsigned integers.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

}  // namespace triton::util

#endif  // TRITON_UTIL_BITS_H_
