// Byte-size constants and human-readable formatting of sizes and rates.

#ifndef TRITON_UTIL_UNITS_H_
#define TRITON_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace triton::util {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

/// 10^9 bytes; interconnect vendor figures (e.g. 75 GB/s) use decimal units.
inline constexpr uint64_t kGB = 1000ull * 1000 * 1000;

/// Formats a byte count as e.g. "1.50 GiB".
std::string FormatBytes(uint64_t bytes);

/// Formats a rate in bytes/second as e.g. "63.5 GiB/s".
std::string FormatBandwidth(double bytes_per_sec);

/// Formats a tuple rate as e.g. "2.25 G Tuples/s".
std::string FormatTupleRate(double tuples_per_sec);

/// Formats seconds as e.g. "12.3 ms".
std::string FormatSeconds(double seconds);

}  // namespace triton::util

#endif  // TRITON_UTIL_UNITS_H_
