// Column-aligned text tables and CSV emission for the benchmark harness.
//
// Each bench binary prints one table per paper figure series, both as an
// aligned human-readable table and (optionally) as CSV for plotting.

#ifndef TRITON_UTIL_TABLE_H_
#define TRITON_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace triton::util {

/// Collects rows of string cells and renders them aligned or as CSV.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each double with the given precision.
  void AddNumericRow(const std::vector<double>& values, int precision = 3);

  size_t num_rows() const { return rows_.size(); }

  /// Renders an aligned, boxed table.
  std::string ToText() const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our cell contents).
  std::string ToCsv() const;

  /// Prints ToText() to stdout, preceded by `title`.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision = 3);

}  // namespace triton::util

#endif  // TRITON_UTIL_TABLE_H_
