#include "util/units.h"

#include <cstdio>

namespace triton::util {

namespace {

std::string FormatWithSuffix(double value, const char* const* suffixes,
                             int num_suffixes, double divisor) {
  int idx = 0;
  while (idx + 1 < num_suffixes && value >= divisor) {
    value /= divisor;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffixes[idx]);
  return buf;
}

}  // namespace

std::string FormatBytes(uint64_t bytes) {
  static const char* const kSuffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  return FormatWithSuffix(static_cast<double>(bytes), kSuffixes, 5, 1024.0);
}

std::string FormatBandwidth(double bytes_per_sec) {
  static const char* const kSuffixes[] = {"B/s", "KiB/s", "MiB/s", "GiB/s",
                                          "TiB/s"};
  return FormatWithSuffix(bytes_per_sec, kSuffixes, 5, 1024.0);
}

std::string FormatTupleRate(double tuples_per_sec) {
  static const char* const kSuffixes[] = {"Tuples/s", "K Tuples/s",
                                          "M Tuples/s", "G Tuples/s"};
  return FormatWithSuffix(tuples_per_sec, kSuffixes, 4, 1000.0);
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  }
  return buf;
}

}  // namespace triton::util
