#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace triton::util {

void JsonWriter::BeginObject() {
  BeforeValue();
  Raw("{");
  stack_.push_back({.is_object = true});
  done_ = false;
}

void JsonWriter::EndObject() {
  CHECK(!stack_.empty() && stack_.back().is_object);
  CHECK(!stack_.back().key_pending);
  const bool empty = stack_.back().values == 0;
  stack_.pop_back();
  if (!empty) {
    Raw("\n");
    Indent();
  }
  Raw("}");
  if (stack_.empty()) done_ = true;
}

void JsonWriter::BeginArray() {
  BeforeValue();
  Raw("[");
  stack_.push_back({.is_object = false});
  done_ = false;
}

void JsonWriter::EndArray() {
  CHECK(!stack_.empty() && !stack_.back().is_object);
  const bool empty = stack_.back().values == 0;
  stack_.pop_back();
  if (!empty) {
    Raw("\n");
    Indent();
  }
  Raw("]");
  if (stack_.empty()) done_ = true;
}

void JsonWriter::Key(std::string_view name) {
  CHECK(!stack_.empty() && stack_.back().is_object);
  CHECK(!stack_.back().key_pending);
  if (stack_.back().values > 0) Raw(",");
  Raw("\n");
  Indent();
  Raw("\"");
  Raw(Escape(name));
  Raw("\": ");
  stack_.back().key_pending = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  Raw("\"");
  Raw(Escape(value));
  Raw("\"");
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  Raw(std::to_string(value));
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  Raw(std::to_string(value));
}

void JsonWriter::Double(double value) {
  if (std::isnan(value)) {
    String("NaN");
    return;
  }
  if (std::isinf(value)) {
    String(value > 0 ? "Infinity" : "-Infinity");
    return;
  }
  BeforeValue();
  Raw(FormatDouble(value));
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  Raw(value ? "true" : "false");
}

void JsonWriter::Null() {
  BeforeValue();
  Raw("null");
}

const std::string& JsonWriter::str() {
  CHECK(done_ && stack_.empty()) << "JSON document not closed";
  if (out_.empty() || out_.back() != '\n') Raw("\n");
  return out_;
}

void JsonWriter::BeforeValue() {
  CHECK(!done_) << "document already complete";
  if (stack_.empty()) {
    done_ = true;  // a root value completes the document
    return;
  }
  Scope& top = stack_.back();
  if (top.is_object) {
    CHECK(top.key_pending) << "value in object without Key()";
    top.key_pending = false;
  } else {
    if (top.values > 0) Raw(",");
    Raw("\n");
    Indent();
  }
  ++top.values;
}

void JsonWriter::Indent() {
  for (size_t i = 0; i < stack_.size(); ++i) Raw("  ");
}

std::string JsonWriter::Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);  // UTF-8 bytes pass through
        }
    }
  }
  return out;
}

std::string JsonWriter::FormatDouble(double value) {
  DCHECK(std::isfinite(value));
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  CHECK(ec == std::errc());
  return std::string(buf, ptr);
}

}  // namespace triton::util
