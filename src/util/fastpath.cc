#include "util/fastpath.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace triton::util {
namespace {

// -1 = undecided, 0 = off, 1 = on.
std::atomic<int> g_fastpath{-1};

bool DisabledByEnv() {
  const char* env = std::getenv("TRITON_FASTPATH");
  if (env == nullptr) return false;
  return std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0 ||
         std::strcmp(env, "off") == 0;
}

}  // namespace

bool FastPathEnabled() {
  int state = g_fastpath.load(std::memory_order_relaxed);
  if (state < 0) {
    state = DisabledByEnv() ? 0 : 1;
    g_fastpath.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void SetFastPathEnabled(bool enabled) {
  g_fastpath.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace triton::util
