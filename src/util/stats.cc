#include "util/stats.h"

namespace triton::util {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace triton::util
