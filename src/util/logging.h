// Minimal logging and invariant-checking macros.
//
// LOG(INFO) << ...;            — leveled logging to stderr.
// CHECK(cond) << "context";    — aborts on violated invariants.
// DCHECK(cond)                 — CHECK compiled out in NDEBUG builds.
//
// These are for programming errors and diagnostics; recoverable errors use
// util::Status.

#ifndef TRITON_UTIL_LOGGING_H_
#define TRITON_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace triton::util {

/// Severity levels for LOG().
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Returns the minimum level that is emitted (default kInfo; override with
/// env TRITON_LOG_LEVEL=0..4).
LogLevel MinLogLevel();

/// Sets the minimum emitted level programmatically (tests use this).
void SetMinLogLevel(LogLevel level);

/// One in-flight log statement; flushes on destruction and aborts for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Converts the ostream& result of a CHECK's log statement to void so it
/// can sit on one arm of a ternary operator (Google logging idiom).
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace triton::util

#define TRITON_LOG_DEBUG ::triton::util::LogLevel::kDebug
#define TRITON_LOG_INFO ::triton::util::LogLevel::kInfo
#define TRITON_LOG_WARNING ::triton::util::LogLevel::kWarning
#define TRITON_LOG_ERROR ::triton::util::LogLevel::kError
#define TRITON_LOG_FATAL ::triton::util::LogLevel::kFatal

#define LOG(severity)                                                  \
  ::triton::util::LogMessage(TRITON_LOG_##severity, __FILE__, __LINE__) \
      .stream()

#define CHECK(cond)                                                       \
  (cond) ? (void)0                                                        \
         : ::triton::util::LogMessageVoidify() &                          \
               ::triton::util::LogMessage(TRITON_LOG_FATAL, __FILE__,     \
                                          __LINE__)                       \
                       .stream()                                          \
                   << "Check failed: " #cond " "

#define CHECK_OP(a, b, op) CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_EQ(a, b) CHECK_OP(a, b, ==)
#define CHECK_NE(a, b) CHECK_OP(a, b, !=)
#define CHECK_LT(a, b) CHECK_OP(a, b, <)
#define CHECK_LE(a, b) CHECK_OP(a, b, <=)
#define CHECK_GT(a, b) CHECK_OP(a, b, >)
#define CHECK_GE(a, b) CHECK_OP(a, b, >=)

#define CHECK_OK(expr)                                \
  do {                                                \
    ::triton::util::Status s_check_ok = (expr);       \
    CHECK(s_check_ok.ok()) << s_check_ok.ToString();  \
  } while (0)

#ifdef NDEBUG
#define DCHECK(cond) \
  while (false) CHECK(cond)
#define DCHECK_EQ(a, b) \
  while (false) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) \
  while (false) CHECK_NE(a, b)
#define DCHECK_LT(a, b) \
  while (false) CHECK_LT(a, b)
#define DCHECK_LE(a, b) \
  while (false) CHECK_LE(a, b)
#define DCHECK_GT(a, b) \
  while (false) CHECK_GT(a, b)
#define DCHECK_GE(a, b) \
  while (false) CHECK_GE(a, b)
#else
#define DCHECK(cond) CHECK(cond)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#endif

#endif  // TRITON_UTIL_LOGGING_H_
