// Small statistics helpers used by the benchmark harness (the paper reports
// mean and standard error over 10 runs).

#ifndef TRITON_UTIL_STATS_H_
#define TRITON_UTIL_STATS_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace triton::util {

/// Accumulates samples and exposes mean / stddev / standard error.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean.
  double stderr_mean() const {
    return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

  /// Standard error relative to the mean (the paper keeps this below 5%).
  double relative_stderr() const {
    return mean_ != 0.0 ? stderr_mean() / std::fabs(mean_) : 0.0;
  }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector (0 for empty input).
double Mean(const std::vector<double>& xs);

/// Geometric mean of a vector of positive values (0 for empty input).
double GeoMean(const std::vector<double>& xs);

}  // namespace triton::util

#endif  // TRITON_UTIL_STATS_H_
