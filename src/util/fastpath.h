// Runtime switch for the simulator's batched ("fast path") hot loops.
//
// The fast path changes how the host computes the simulation — batched
// tuple fetch + partition-index computation, memcpy-style bulk stores, and
// bulk TLB-range translation — but never what is modeled: results,
// PerfCounters, TLB replay sequences and sanitizer diagnostics are
// bit-identical to the per-tuple reference path. The reference path is kept
// as the executable specification; tests/fastpath_test.cc asserts the
// equivalence.
//
// Default is on. Set TRITON_FASTPATH=0 in the environment (or call
// SetFastPathEnabled(false)) to fall back to the per-tuple path.

#ifndef TRITON_UTIL_FASTPATH_H_
#define TRITON_UTIL_FASTPATH_H_

namespace triton::util {

/// True when the batched hot loops are enabled (the default). The first
/// call reads the TRITON_FASTPATH environment variable ("0", "false" or
/// "off" disable); the result is cached afterwards.
bool FastPathEnabled();

/// Programmatic override (tests flip this to compare both paths in one
/// process). Takes precedence over the environment from this point on.
void SetFastPathEnabled(bool enabled);

}  // namespace triton::util

#endif  // TRITON_UTIL_FASTPATH_H_
