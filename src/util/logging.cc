#include "util/logging.h"

#include <cstdlib>

namespace triton::util {

namespace {

LogLevel g_min_level = [] {
  if (const char* env = std::getenv("TRITON_LOG_LEVEL")) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 4) return static_cast<LogLevel>(v);
  }
  return LogLevel::kInfo;
}();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel MinLogLevel() { return g_min_level; }

void SetMinLogLevel(LogLevel level) { g_min_level = level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_min_level || level_ == LogLevel::kFatal) {
    stream_ << "\n";
    std::cerr << stream_.str();
    std::cerr.flush();
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace triton::util
