#include "util/flags.h"

#include <cstdlib>

namespace triton::util {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

std::vector<std::string> Flags::names() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [name, value] : values_) out.push_back(name);
  return out;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value
                             : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<int64_t> Flags::GetIntList(
    const std::string& name, std::vector<int64_t> default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  std::vector<int64_t> out;
  const std::string& s = it->second;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtoll(s.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return out;
}

}  // namespace triton::util
