// Tiny command-line flag parser for the bench and example binaries.
//
// Usage:
//   util::Flags flags(argc, argv);
//   int scale = flags.GetInt("scale", 64);
//   bool csv = flags.GetBool("csv", false);
//
// Accepted syntaxes: --name=value, --name value, --flag (boolean true).

#ifndef TRITON_UTIL_FLAGS_H_
#define TRITON_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace triton::util {

/// Parses argv into a name->value map; unknown positional args are kept in
/// positional().
class Flags {
 public:
  Flags(int argc, char** argv);

  /// True if the flag was present on the command line.
  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Comma-separated integer list, e.g. --sizes=128,512,2048.
  std::vector<int64_t> GetIntList(const std::string& name,
                                  std::vector<int64_t> default_value) const;

  /// Names of every flag present on the command line, sorted.
  std::vector<std::string> names() const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace triton::util

#endif  // TRITON_UTIL_FLAGS_H_
