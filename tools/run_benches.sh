#!/usr/bin/env bash
# Runs every bench binary in the baseline configuration and collects the
# BENCH_<figure>.json reports into one directory.
#
# Usage: tools/run_benches.sh <bench-bin-dir> <out-dir> [threads] [jobs]
#
# The baseline configuration is --scale=256 --quick --runs=1: small enough
# for CI, deterministic by construction (modeled time and counters are
# bit-identical at any --threads setting), so the reports can be compared
# byte for byte against the committed baselines in bench/baselines/.
#
# `threads` (default 2) is forwarded as --threads; `jobs` (default 1) as
# --jobs (concurrent measurement cells, benches that support it). Neither
# may change the JSON bytes — they only trade host wall-clock.
set -euo pipefail

if [[ $# -lt 2 || $# -gt 4 ]]; then
  echo "usage: $0 <bench-bin-dir> <out-dir> [threads] [jobs]" >&2
  exit 2
fi
threads=${3:-2}
jobs=${4:-1}

bin_dir=$(cd "$1" && pwd)
mkdir -p "$2"
out_dir=$(cd "$2" && pwd)

benches=("${bin_dir}"/bench_*)
if [[ ${#benches[@]} -eq 0 || ! -x ${benches[0]} ]]; then
  echo "error: no bench_* binaries in ${bin_dir}" >&2
  exit 1
fi

# Run from the output directory so the default BENCH_<figure>.json paths
# land there. --csv and the non-default --threads exercise the other
# printers and the parallel executor; neither may change the JSON bytes.
cd "${out_dir}"
for bench in "${benches[@]}"; do
  [[ -x ${bench} && ! -d ${bench} ]] || continue
  name=$(basename "${bench}")
  echo "=== ${name}"
  "${bench}" --scale=256 --quick --runs=1 --threads="${threads}" \
    --jobs="${jobs}" --csv --json \
    > "${name}.log" 2>&1 || {
    status=$?
    echo "error: ${name} exited with ${status}; log follows" >&2
    cat "${name}.log" >&2
    exit "${status}"
  }
done

echo "reports in ${out_dir}:"
ls "${out_dir}"/BENCH_*.json
