#!/usr/bin/env bash
# Runs clang-tidy over the simulator sources using the compile database the
# CMake configure step exports (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#
# Exits 0 with a notice when clang-tidy is not installed so that local
# developer machines and minimal containers are not blocked; CI installs
# clang-tidy and gets the real report.
set -u

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (install it" \
       "or rely on the CI clang-tidy job)."
  exit 0
fi

if [ ! -f "$ROOT/$BUILD_DIR/compile_commands.json" ] &&
   [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json under '$BUILD_DIR';" \
       "configure first: cmake -B $BUILD_DIR -S ."
  exit 1
fi

# Resolve the build dir relative to the repo root if needed.
if [ -f "$ROOT/$BUILD_DIR/compile_commands.json" ]; then
  BUILD_DIR="$ROOT/$BUILD_DIR"
fi

cd "$ROOT"
FILES=$(find src -name '*.cc' | sort)
echo "run_clang_tidy: checking $(echo "$FILES" | wc -l) files against" \
     "$BUILD_DIR/compile_commands.json"

STATUS=0
for f in $FILES; do
  clang-tidy -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done
exit $STATUS
