#!/usr/bin/env python3
"""Benchmark regression gate: byte-exact diff + figure shape checks.

Usage:
  tools/bench_regress.py --baselines bench/baselines --fresh <dir> [--update]

The simulator's determinism contract (see DESIGN.md, "Benchmark reporting")
makes every BENCH_<figure>.json bit-identical across reruns and --threads
settings, so the primary gate is a *byte* comparison against the committed
baselines — any counter or modeled-time drift shows up as a unified diff.

On top of that, shape checks assert the paper's headline effects on the
fresh reports (mirroring tests/figures_test.cc): the NPJ collapse once its
hash table leaves GPU memory, the TLB latency plateaus, the Shared
partitioner's IOMMU cliff, and the Triton join's cliff-free cache scaling.
They catch a semantically broken report even when somebody refreshes the
baselines wholesale.

--update copies the fresh reports over the baselines *after* the shape
checks pass, so a refreshed baseline can never encode a flattened figure.
"""

import argparse
import difflib
import json
import math
import os
import shutil
import sys

# Figures every run must produce; a missing report fails the gate.
# "micro" is the simulator-primitive microbenchmark suite (bench/micro/);
# its modeled half is gated exactly like the paper figures.
EXPECTED_FIGURES = [
    "fig01", "fig04", "fig06", "fig07", "fig13", "fig14", "fig15", "fig16",
    "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
    "ablation", "ext_skew", "ext_pcie", "ext_serve", "ext_coproc", "micro",
]

SCHEMA_VERSION = 1

_errors = []


def fail(figure, message):
    _errors.append(f"[{figure}] {message}")


# --- report access helpers -------------------------------------------------


def series(report, name):
    """Points of one series, ordered as emitted (axis order)."""
    return [p for p in report["points"] if p["series"] == name]


def series_names(report):
    seen = []
    for p in report["points"]:
        if p["series"] not in seen:
            seen.append(p["series"])
    return seen


def value(point):
    return point["value"]["mean"]


def at_x(points, x):
    for p in points:
        if p.get("x") == x:
            return p
    return None


# --- generic checks --------------------------------------------------------


def check_generic(figure, report):
    if report.get("schema_version") != SCHEMA_VERSION:
        fail(figure, f"schema_version {report.get('schema_version')!r}, "
                     f"want {SCHEMA_VERSION}")
    if report.get("figure") != figure:
        fail(figure, f"figure field {report.get('figure')!r} does not match "
                     f"file name")
    points = report.get("points", [])
    if not points:
        fail(figure, "no points in report")
    for i, p in enumerate(points):
        if not p.get("series"):
            fail(figure, f"point {i} has no series")
        for stat_key in ("value", "seconds"):
            stat = p.get(stat_key)
            if stat is None:
                continue
            for k in ("mean", "min", "max"):
                v = stat.get(k)
                # Non-finite doubles are serialized as strings ("NaN",
                # "Infinity"); either form is a broken measurement.
                if not isinstance(v, (int, float)) or not math.isfinite(v):
                    fail(figure, f"point {i} ({p['series']}): {stat_key}.{k} "
                                 f"is not finite: {v!r}")
        for k, v in (p.get("extra") or {}).items():
            if not isinstance(v, (int, float)) or not math.isfinite(v):
                fail(figure, f"point {i} ({p['series']}): extra[{k!r}] is "
                             f"not finite: {v!r}")


# --- per-figure shape checks (mirroring tests/figures_test.cc) -------------


def check_fig01(figure, report):
    # The Triton join must beat the collapsed NPJ on the out-of-core
    # workloads (the paper's motivating comparison).
    npj = series(report, "GPU NPJ")
    tri = series(report, "GPU Triton Join")
    if not npj or not tri:
        fail(figure, f"missing series; have {series_names(report)}")
        return
    x = max(p["x"] for p in tri)
    npj_out, tri_out = at_x(npj, x), at_x(tri, x)
    if npj_out and tri_out and value(tri_out) <= 2.0 * value(npj_out):
        fail(figure, f"Triton ({value(tri_out):.3g}) should be >2x NPJ "
                     f"({value(npj_out):.3g}) at {x} MTuples")


def check_fig07(figure, report):
    # Latency plateaus: within each chase series, the mean latency must be
    # non-decreasing as the memory range grows (monotone staircase).
    for name in series_names(report):
        pts = series(report, name)
        for a, b in zip(pts, pts[1:]):
            if value(b) < 0.98 * value(a):
                fail(figure, f"{name}: latency fell from {value(a):.1f} ns "
                             f"(x={a['x']}) to {value(b):.1f} ns "
                             f"(x={b['x']}); expected a monotone staircase")
        # GPU memory misses cost ~1.2-1.5x a hit; CPU-memory page walks
        # cost 4-7x. Require a clear rise without assuming which memory.
        if pts and value(pts[-1]) < 1.15 * value(pts[0]):
            fail(figure, f"{name}: no miss plateau (first {value(pts[0]):.1f}"
                         f" ns, last {value(pts[-1]):.1f} ns)")


def check_fig13(figure, report):
    # NPJ collapse: the perfect-hashing NPJ's in-core throughput must be
    # >3x its largest out-of-core workload (figures_test Figure13).
    npj = series(report, "NPJ-perfect")
    tri = series(report, "Triton-chain")
    if not npj or not tri:
        fail(figure, f"missing series; have {series_names(report)}")
        return
    in_core = value(npj[0])
    out_core = value(npj[-1])
    if in_core <= 3.0 * out_core:
        fail(figure, f"NPJ-perfect in-core ({in_core:.3g}) should be >3x "
                     f"out-of-core ({out_core:.3g})")
    # And the Triton join must not collapse with it.
    if value(tri[-1]) <= 2.0 * out_core:
        fail(figure, f"Triton-chain ({value(tri[-1]):.3g}) should be >2x the "
                     f"collapsed NPJ ({out_core:.3g})")


def check_fig17(figure, report):
    # Hierarchical must beat Standard at every size (paper: 3.6-4x).
    hier = series(report, "Hierarchical")
    std = series(report, "Standard")
    for h, s in zip(hier, std):
        if value(h) <= value(s):
            fail(figure, f"Hierarchical ({value(h):.3g}) should beat "
                         f"Standard ({value(s):.3g}) at x={h['x']}")


def check_fig18(figure, report):
    # Shared's IOMMU-requests-per-tuple cliff past fanout 64, while
    # Hierarchical stays orders of magnitude lower (figures_test Figure18d).
    shared = series(report, "Shared")
    hier = series(report, "Hierarchical")
    if not shared or not hier:
        fail(figure, f"missing series; have {series_names(report)}")
        return

    def iommu(p):
        return p["extra"]["iommu_req_per_tuple"]

    shared_lo, shared_hi = iommu(shared[0]), iommu(shared[-1])
    hier_hi = iommu(hier[-1])
    if shared_hi <= 10.0 * (shared_lo + 1e-9):
        fail(figure, f"Shared IOMMU cliff missing: lo={shared_lo:.3g} "
                     f"hi={shared_hi:.3g}")
    if hier_hi >= shared_hi / 8.0:
        fail(figure, f"Hierarchical IOMMU hi ({hier_hi:.3g}) should be <1/8 "
                     f"of Shared's ({shared_hi:.3g})")


def check_fig19(figure, report):
    # The Triton join scales smoothly with cache size: no cliff, i.e. the
    # best cache point is within 2x of the worst (paper: 1.1-1.4x).
    for name in series_names(report):
        if not name.startswith("Triton/"):
            continue
        vals = [value(p) for p in series(report, name)]
        if max(vals) > 2.0 * min(vals):
            fail(figure, f"{name}: cache cliff (min {min(vals):.3g}, max "
                         f"{max(vals):.3g}); expected smooth scaling")


def check_ext_pcie(figure, report):
    # Fast interconnects are the point: Triton@NVLink must beat
    # Triton@PCIe on every workload.
    nvlink = series(report, "Triton@NVLink")
    pcie = series(report, "Triton@PCIe")
    for a, b in zip(nvlink, pcie):
        if value(a) <= value(b):
            fail(figure, f"NVLink ({value(a):.3g}) should beat PCIe "
                         f"({value(b):.3g}) at x={a['x']}")


def check_ext_serve(figure, report):
    # Total work is fixed while tenants grow, so aggregate throughput must
    # not collapse when probes are batched: batching amortizes the
    # per-dispatch overhead the unbatched series pays per request.
    batched = series(report, "probes-batched")
    unbatched = series(report, "probes-unbatched")
    joins = series(report, "joins")
    if not batched or not unbatched or not joins:
        fail(figure, f"missing series; have {series_names(report)}")
        return
    if value(batched[-1]) < 0.4 * value(batched[0]):
        fail(figure, f"batched probe throughput collapsed as tenants grew: "
                     f"{value(batched[0]):.3g} -> {value(batched[-1]):.3g} "
                     f"(want last >= 0.4x first)")
    if value(batched[-1]) <= 1.5 * value(unbatched[-1]):
        fail(figure, f"batching should win clearly at max tenants: batched "
                     f"{value(batched[-1]):.3g} vs unbatched "
                     f"{value(unbatched[-1]):.3g} (want >1.5x)")
    if value(joins[-1]) < 0.5 * value(joins[0]):
        fail(figure, f"join throughput collapsed under carve contention: "
                     f"{value(joins[0]):.3g} -> {value(joins[-1]):.3g} "
                     f"(want last >= 0.5x first)")


def check_ext_coproc(figure, report):
    # The co-processing scheduler must justify itself: at every size the
    # adaptive hybrid is at least as fast as the best single backend, and
    # each fixed-ratio sweep is unimodal — modeled seconds descend toward
    # the optimum and ascend after it (small tolerance for pair-granularity
    # plateaus).
    def seconds(point):
        return point["seconds"]["mean"]

    cpu = series(report, "cpu-only")
    gpu = series(report, "gpu-only")
    hybrid = series(report, "hybrid-adaptive")
    if not cpu or not gpu or not hybrid:
        fail(figure, f"missing series; have {series_names(report)}")
        return
    for c, g, h in zip(cpu, gpu, hybrid):
        best = min(seconds(c), seconds(g))
        if seconds(h) > best * 1.001:
            fail(figure, f"adaptive hybrid ({seconds(h):.4g}s) slower than "
                         f"best single backend ({best:.4g}s) at "
                         f"x={h['x']}")

    sweeps = [n for n in series_names(report) if n.startswith("sweep@")]
    if not sweeps:
        fail(figure, f"no sweep@ series; have {series_names(report)}")
        return
    tol = 1.005
    for name in sweeps:
        pts = sorted(series(report, name), key=lambda p: p["x"])
        secs = [seconds(p) for p in pts]
        k = secs.index(min(secs))
        for i in range(1, k + 1):
            if secs[i] > secs[i - 1] * tol:
                fail(figure, f"{name}: not descending toward the optimum at "
                             f"x={pts[i]['x']} ({secs[i-1]:.4g} -> "
                             f"{secs[i]:.4g})")
        for i in range(k + 1, len(secs)):
            if secs[i] < secs[i - 1] / tol:
                fail(figure, f"{name}: not ascending past the optimum at "
                             f"x={pts[i]['x']} ({secs[i-1]:.4g} -> "
                             f"{secs[i]:.4g})")


def check_micro(figure, report):
    # The microbench suite embeds its own invariants: the sanitizer shadow
    # round-trips must be violation-free, and the per-tuple and bulk
    # functional-store variants must produce identical buffer checksums
    # (the report-level face of the in-binary bit-identity probe).
    shadow = series(report, "sanitizer-shadow")
    if not shadow or any(value(p) != 0 for p in shadow):
        fail(figure, "sanitizer-shadow reported violations (want 0)")
    per_tuple = series(report, "store-per-tuple")
    bulk = series(report, "store-run")
    if not per_tuple or not bulk:
        fail(figure, f"missing store series; have {series_names(report)}")
        return
    if value(per_tuple[0]) != value(bulk[0]):
        fail(figure, f"store checksums diverge: per-tuple "
                     f"{value(per_tuple[0])!r} vs bulk {value(bulk[0])!r}")


SHAPE_CHECKS = {
    "fig01": check_fig01,
    "fig07": check_fig07,
    "fig13": check_fig13,
    "fig17": check_fig17,
    "fig18": check_fig18,
    "fig19": check_fig19,
    "ext_pcie": check_ext_pcie,
    "ext_serve": check_ext_serve,
    "ext_coproc": check_ext_coproc,
    "micro": check_micro,
}


# --- drivers ---------------------------------------------------------------


def load(path, figure):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(figure, f"cannot load {path}: {e}")
        return None


def byte_diff(figure, baseline_path, fresh_path):
    with open(baseline_path, "rb") as f:
        want = f.read()
    with open(fresh_path, "rb") as f:
        got = f.read()
    if want == got:
        return True
    diff = difflib.unified_diff(
        want.decode("utf-8", "replace").splitlines(keepends=True),
        got.decode("utf-8", "replace").splitlines(keepends=True),
        fromfile=f"baseline/{os.path.basename(baseline_path)}",
        tofile=f"fresh/{os.path.basename(fresh_path)}",
    )
    text = "".join(diff)
    # Large drifts would swamp the log; the head of the diff names the
    # first diverging quantity, which is what matters.
    lines = text.splitlines(keepends=True)
    if len(lines) > 120:
        text = "".join(lines[:120]) + f"... ({len(lines) - 120} more lines)\n"
    fail(figure, "report differs from baseline:\n" + text)
    return False


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines", required=True,
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--fresh", required=True,
                        help="directory of freshly generated BENCH_*.json")
    parser.add_argument("--update", action="store_true",
                        help="refresh the baselines from --fresh after the "
                             "shape checks pass")
    parser.add_argument("--figures", default=None,
                        help="comma-separated subset of figures to gate "
                             "(default: all); e.g. --figures micro or "
                             "--figures fig13,fig18")
    args = parser.parse_args()

    if args.figures is None:
        figures = EXPECTED_FIGURES
    else:
        figures = [f.strip() for f in args.figures.split(",") if f.strip()]
        unknown = [f for f in figures if f not in EXPECTED_FIGURES]
        if unknown:
            print(f"bench_regress: unknown figure(s) {unknown}; expected "
                  f"among {EXPECTED_FIGURES}", file=sys.stderr)
            return 2

    identical = 0
    for figure in figures:
        name = f"BENCH_{figure}.json"
        fresh_path = os.path.join(args.fresh, name)
        if not os.path.exists(fresh_path):
            fail(figure, f"missing fresh report {fresh_path}")
            continue

        report = load(fresh_path, figure)
        if report is None:
            continue
        check_generic(figure, report)
        shape = SHAPE_CHECKS.get(figure)
        if shape:
            shape(figure, report)

        if not args.update:
            baseline_path = os.path.join(args.baselines, name)
            if not os.path.exists(baseline_path):
                fail(figure, f"missing baseline {baseline_path} "
                             f"(run with --update to create it)")
            elif byte_diff(figure, baseline_path, fresh_path):
                identical += 1

    if _errors:
        print(f"bench_regress: {len(_errors)} failure(s)\n", file=sys.stderr)
        for e in _errors:
            print(e, file=sys.stderr)
            print(file=sys.stderr)
        print("If the change in modeled performance is intended, refresh "
              "the baselines:\n  cmake --build build --target "
              "refresh-baselines", file=sys.stderr)
        return 1

    if args.update:
        os.makedirs(args.baselines, exist_ok=True)
        for figure in figures:
            name = f"BENCH_{figure}.json"
            shutil.copyfile(os.path.join(args.fresh, name),
                            os.path.join(args.baselines, name))
        print(f"bench_regress: refreshed {len(figures)} baselines "
              f"in {args.baselines} (shape checks passed)")
    else:
        print(f"bench_regress: {identical}/{len(figures)} reports "
              f"byte-identical to baselines; all shape checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
