// Warehouse query: the workload the paper's introduction motivates — a
// data-warehousing equi-join with group-style aggregation, too large for
// GPU memory.
//
// Simulates:  SELECT SUM(o.total + l.price)
//             FROM   orders o JOIN lineitem l ON o.key = l.order_key
// where `orders` holds primary keys and `lineitem` references them 4:1
// (a TPC-H-like orders/lineitem shape). Runs the same query with the GPU
// no-partitioning join, the CPU radix join and the Triton join, checks all
// three agree, and reports which operator a planner should pick.
//
//   ./warehouse_query [--orders-mtuples=384] [--scale=64]

#include <cstdio>

#include "core/triton_join.h"
#include "data/generator.h"
#include "exec/device.h"
#include "join/cpu_radix_join.h"
#include "join/no_partitioning_join.h"
#include "sim/hw_spec.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

using namespace triton;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int64_t scale = flags.GetInt("scale", 64);
  const double orders_m = flags.GetDouble("orders-mtuples", 384);

  sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(static_cast<double>(scale));
  exec::Device dev(hw);

  const uint64_t orders = static_cast<uint64_t>(
      orders_m * 1024 * 1024 / static_cast<double>(scale));
  const uint64_t lineitems = orders * 4;

  data::WorkloadConfig cfg;
  cfg.r_tuples = orders;     // orders: primary keys + o.total
  cfg.s_tuples = lineitems;  // lineitem: foreign keys + l.price
  auto wl = data::GenerateWorkload(dev.allocator(), cfg);
  if (!wl.ok()) {
    std::fprintf(stderr, "%s\n", wl.status().ToString().c_str());
    return 1;
  }
  std::printf("orders: %llu rows, lineitem: %llu rows (%s total; GPU has "
              "%s)\n\n",
              static_cast<unsigned long long>(orders),
              static_cast<unsigned long long>(lineitems),
              util::FormatBytes((orders + lineitems) * 16).c_str(),
              util::FormatBytes(hw.gpu_mem.capacity).c_str());

  util::Table table({"operator", "SUM(o.total+l.price)", "time", "G Tuples/s"});
  uint64_t reference = 0;
  bool first = true;
  auto run_query = [&](const char* name, auto&& join) {
    auto run = join.Run(dev, wl->r, wl->s);
    if (!run.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, run.status().ToString().c_str());
      return false;
    }
    if (first) {
      reference = run->checksum;
      first = false;
    } else if (run->checksum != reference) {
      std::fprintf(stderr, "%s: WRONG AGGREGATE\n", name);
      return false;
    }
    char sum[32];
    std::snprintf(sum, sizeof(sum), "%llu",
                  static_cast<unsigned long long>(run->checksum));
    table.AddRow({name, sum, util::FormatSeconds(run->elapsed),
                  util::FormatDouble(
                      run->Throughput(orders, lineitems) / 1e9, 3)});
    return true;
  };

  join::NoPartitioningJoin npj({.scheme = join::HashScheme::kPerfect,
                                .result_mode = join::ResultMode::kAggregate});
  join::CpuRadixJoin cpu({.result_mode = join::ResultMode::kAggregate});
  core::TritonJoin triton({.result_mode = join::ResultMode::kAggregate});
  if (!run_query("GPU no-partitioning join", npj)) return 1;
  if (!run_query("CPU radix join (POWER9)", cpu)) return 1;
  if (!run_query("GPU Triton join", triton)) return 1;

  table.Print("Aggregation query: all operators agree on the result");
  std::printf("\nTriton join state: %u+%u radix bits, %.0f%% cached in GPU "
              "memory\n",
              triton.stats().bits1, triton.stats().bits2,
              triton.stats().cached_fraction * 100.0);
  return 0;
}
