// Partition lab: explore the four GPU radix-partitioning algorithms at any
// fanout and inspect the hardware counters that explain their behaviour —
// flush granularity, write coalescing, interconnect overhead and TLB
// pressure (the Section 4 design space).
//
//   ./partition_lab [--fanout=512] [--mtuples=512] [--scale=64]
//                   [--dest=cpu|gpu]

#include <cstdio>

#include "data/generator.h"
#include "exec/device.h"
#include "partition/cpu_swwc.h"
#include "partition/hierarchical.h"
#include "partition/linear.h"
#include "partition/prefix_sum.h"
#include "partition/shared.h"
#include "partition/standard.h"
#include "sim/hw_spec.h"
#include "util/bits.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

using namespace triton;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int64_t scale = flags.GetInt("scale", 64);
  const int64_t fanout = flags.GetInt("fanout", 512);
  const double mtuples = flags.GetDouble("mtuples", 512);
  const bool gpu_dest = flags.GetString("dest", "cpu") == "gpu";

  sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(static_cast<double>(scale));
  const uint64_t n = static_cast<uint64_t>(
      mtuples * 1024 * 1024 / static_cast<double>(scale));
  const uint32_t bits = util::CeilLog2(static_cast<uint64_t>(fanout));

  std::printf("fanout %lld (%u bits), %llu tuples, destination: %s memory\n",
              static_cast<long long>(fanout), bits,
              static_cast<unsigned long long>(n), gpu_dest ? "GPU" : "CPU");
  std::printf("SWWC buffer: %u tuples/partition in the 64 KiB scratchpad\n\n",
              partition::SwwcBufferTuples(hw.gpu.scratchpad_bytes,
                                          1u << bits));

  partition::StandardPartitioner standard;
  partition::LinearPartitioner linear;
  partition::SharedPartitioner shared;
  partition::HierarchicalPartitioner hierarchical;
  struct Entry {
    const char* name;
    partition::GpuPartitioner* p;
  } algos[] = {{"Standard", &standard},
               {"Linear", &linear},
               {"Shared", &shared},
               {"Hierarchical", &hierarchical}};

  util::Table table({"algorithm", "GiB/s", "flushes", "tuples/txn",
                     "link overhead %", "TLB misses", "bottleneck"});
  for (const Entry& algo : algos) {
    exec::Device dev(hw);
    data::WorkloadConfig cfg;
    cfg.r_tuples = n;
    cfg.s_tuples = 1024;
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    if (!wl.ok()) {
      std::fprintf(stderr, "%s\n", wl.status().ToString().c_str());
      return 1;
    }
    partition::ColumnInput input = partition::ColumnInput::Of(wl->r);
    partition::RadixConfig radix{0, bits};
    uint32_t blocks =
        algo.p == &hierarchical
            ? partition::HierarchicalRecommendedBlocks(
                  {}, hw, dev.allocator().gpu_free(), radix.fanout())
            : hw.gpu.num_sms;
    partition::PartitionLayout layout =
        CpuPrefixSum(dev, input, radix, blocks);
    uint64_t bytes = layout.padded_tuples() * sizeof(partition::Tuple);
    auto out = gpu_dest ? dev.allocator().AllocateGpu(bytes)
                        : dev.allocator().AllocateCpu(bytes);
    if (!out.ok()) {
      std::fprintf(stderr, "output: %s\n", out.status().ToString().c_str());
      return 1;
    }
    auto run = algo.p->PartitionColumns(dev, input, layout, *out, {});
    const auto& c = run.record.counters;
    double overhead =
        c.link_write_payload > 0
            ? (static_cast<double>(c.link_write_physical) /
                   static_cast<double>(c.link_write_payload) -
               1.0) * 100.0
            : 0.0;
    table.AddRow({algo.name,
                  util::FormatDouble(static_cast<double>(n) * 16.0 /
                                         run.Elapsed() / util::kGiB,
                                     1),
                  std::to_string(run.flushes),
                  util::FormatDouble(run.TuplesPerWriteTxn(), 2),
                  util::FormatDouble(overhead, 1),
                  std::to_string(c.gpu_tlb_misses),
                  run.record.time.Bottleneck()});
  }
  table.Print("Partitioning algorithms head to head");
  return 0;
}
