// Out-of-core scaling demo: what happens when the join state outgrows GPU
// memory?
//
// Sweeps the relation size across the GPU memory capacity and contrasts the
// no-partitioning join (performance cliff) with the Triton join (graceful
// degradation) — the scenario a GPU-enabled DBMS operator planner faces
// when cardinality estimates are wrong (Section 1, "Robustness").
//
//   ./out_of_core_scaling [--scale=64] [--points=7]

#include <cstdio>

#include "core/triton_join.h"
#include "data/generator.h"
#include "exec/device.h"
#include "join/no_partitioning_join.h"
#include "sim/hw_spec.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

using namespace triton;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int64_t scale = flags.GetInt("scale", 64);
  const int64_t points = flags.GetInt("points", 12);
  sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(static_cast<double>(scale));

  std::printf("GPU memory: %s (scaled); sweeping total join state across "
              "it\n\n",
              util::FormatBytes(hw.gpu_mem.capacity).c_str());

  util::Table table({"state vs GPU mem", "NPJ (G Tuples/s)",
                     "Triton (G Tuples/s)", "Triton cached"});
  for (int64_t i = 1; i <= points; ++i) {
    // Total 16-byte-tuple state from 0.5x to ~6x the GPU capacity.
    double factor = 0.5 * static_cast<double>(i);
    uint64_t total_tuples = static_cast<uint64_t>(
        factor * static_cast<double>(hw.gpu_mem.capacity) / 16.0);
    uint64_t n = total_tuples / 2;

    exec::Device dev(hw);
    data::WorkloadConfig cfg;
    cfg.r_tuples = n;
    cfg.s_tuples = n;
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    if (!wl.ok()) {
      std::fprintf(stderr, "%s\n", wl.status().ToString().c_str());
      return 1;
    }

    join::NoPartitioningJoin npj({.scheme = join::HashScheme::kPerfect,
                                  .result_mode = join::ResultMode::kAggregate});
    core::TritonJoin triton({.result_mode = join::ResultMode::kAggregate});
    auto a = npj.Run(dev, wl->r, wl->s);
    auto b = triton.Run(dev, wl->r, wl->s);
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "join failed\n");
      return 1;
    }
    table.AddRow({util::FormatDouble(factor, 1) + "x",
                  util::FormatDouble(a->Throughput(n, n) / 1e9, 3),
                  util::FormatDouble(b->Throughput(n, n) / 1e9, 3),
                  util::FormatDouble(triton.stats().cached_fraction * 100, 0) +
                      "%"});
  }
  table.Print("Join state scaling across the GPU memory capacity");
  std::printf(
      "\nThe no-partitioning join falls off a cliff once its hash table\n"
      "spills; the Triton join degrades gracefully as its cached fraction\n"
      "shrinks — the paper's robustness argument.\n");
  return 0;
}
