// Quick-start for the serve/ layer: a multi-tenant join service on one
// simulated machine.
//
// Four tenants share the device through the JoinService: each submits a
// full join, an aggregation, and a few small probes against a shared
// resident build side. The admission queue bounds memory pressure, the
// arbiter carves GPU/CPU/scratchpad budgets between in-flight queries, and
// probe requests are coalesced into batched launches. The whole run is
// deterministic: same seeds, same answers and counters at any --threads.
//
//   ./join_service [--tenants=4] [--scale=64] [--seed=1]

#include <cstdio>

#include "serve/join_service.h"
#include "sim/hw_spec.h"
#include "util/flags.h"
#include "util/units.h"

using namespace triton;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int64_t scale = flags.GetInt("scale", 64);
  const uint32_t tenants =
      static_cast<uint32_t>(flags.GetInt("tenants", 4));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  sim::HwSpec hw =
      sim::HwSpec::Ac922NvLink().Scaled(static_cast<double>(scale));

  serve::ServiceConfig config;
  config.max_inflight = 4;
  config.scheduler_seed = seed;
  config.shared_build_tuples = 256 * 1024;
  serve::JoinService service(hw, config);
  if (!service.init_status().ok()) {
    std::fprintf(stderr, "%s\n",
                 service.init_status().ToString().c_str());
    return 1;
  }
  std::printf("machine: GPU %s | shared build: %llu tuples resident\n",
              util::FormatBytes(hw.gpu_mem.capacity).c_str(),
              static_cast<unsigned long long>(config.shared_build_tuples));

  for (uint32_t t = 0; t < tenants; ++t) {
    serve::Request join;
    join.tenant = t;
    join.kind = serve::RequestKind::kJoin;
    join.r_tuples = 50000 + 5000 * t;
    join.s_tuples = 80000 + 8000 * t;
    join.seed = seed * 100 + t;
    // Round-robin the execution backend: GPU Triton join, CPU radix join
    // (reserves no GPU budget, so it co-schedules with GPU queries), and
    // the CPU+GPU co-processing scheduler.
    const exec::Backend backends[] = {exec::Backend::kGpu,
                                      exec::Backend::kCpu,
                                      exec::Backend::kHybrid};
    join.backend = backends[t % 3];

    serve::Request agg;
    agg.tenant = t;
    agg.kind = serve::RequestKind::kAggregate;
    agg.r_tuples = 5000;  // group-key domain
    agg.s_tuples = 60000 + 6000 * t;
    agg.seed = seed * 200 + t;

    serve::Request probe;
    probe.tenant = t;
    probe.kind = serve::RequestKind::kProbe;
    probe.s_tuples = 10000 + 1000 * t;
    probe.seed = seed * 300 + t;

    for (const serve::Request& req : {join, agg, probe, probe}) {
      util::Status st = service.Submit(req);
      if (!st.ok()) {
        // A full queue is an answer, not a crash: the tenant retries
        // after Drain. Here we just report it.
        std::fprintf(stderr, "tenant %u rejected: %s\n", t,
                     st.ToString().c_str());
      }
    }
  }

  util::Status st = service.Drain();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("\n%-8s %10s %8s %10s %14s %12s\n", "tenant", "completed",
              "failed", "rejected", "matches", "seconds");
  for (const serve::TenantReport& r : service.BuildTenantReports()) {
    std::printf("%-8u %10llu %8llu %10llu %14llu %12.6f\n", r.tenant,
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.rejected),
                static_cast<unsigned long long>(r.matches), r.elapsed);
  }
  std::printf("\nservice: %llu dispatches, %.6f modeled seconds busy\n",
              static_cast<unsigned long long>(service.dispatches()),
              service.busy_seconds());
  return 0;
}
