// Quickstart: join two relations with the Triton join and inspect the run.
//
// Builds a PK/FK workload, runs the Triton join on the simulated
// AC922/NVLink machine, validates the result, and prints throughput, the
// per-kernel phase breakdown, cache statistics and interconnect counters.
//
//   ./quickstart [--mtuples=512] [--scale=64] [--ratio=3]

#include <cstdio>

#include "core/triton_join.h"
#include "data/generator.h"
#include "exec/device.h"
#include "join/common.h"
#include "sim/hw_spec.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

using namespace triton;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int64_t scale = flags.GetInt("scale", 64);
  const double mtuples = flags.GetDouble("mtuples", 512);
  const int64_t ratio = flags.GetInt("ratio", 1);

  // 1. Describe the machine: the paper's IBM AC922 (POWER9 + V100 over
  //    NVLink 2.0), with capacities scaled down so the run fits this host.
  sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(static_cast<double>(scale));
  exec::Device dev(hw);
  std::printf("machine : %s (capacities scaled 1/%lld)\n", hw.name.c_str(),
              static_cast<long long>(scale));

  // 2. Generate the paper's workload: R holds shuffled primary keys, S
  //    uniform foreign keys; 16-byte tuples in column layout.
  const uint64_t r_tuples =
      static_cast<uint64_t>(mtuples * 1024 * 1024 / static_cast<double>(scale));
  const uint64_t s_tuples = r_tuples * static_cast<uint64_t>(ratio);
  data::WorkloadConfig cfg;
  cfg.r_tuples = r_tuples;
  cfg.s_tuples = s_tuples;
  auto wl = data::GenerateWorkload(dev.allocator(), cfg);
  if (!wl.ok()) {
    std::fprintf(stderr, "workload: %s\n", wl.status().ToString().c_str());
    return 1;
  }
  std::printf("workload: |R| = %llu, |S| = %llu tuples (%s total)\n",
              static_cast<unsigned long long>(r_tuples),
              static_cast<unsigned long long>(s_tuples),
              util::FormatBytes((r_tuples + s_tuples) * 16).c_str());

  // 3. Run the Triton join.
  core::TritonJoin join;
  auto run = join.Run(dev, wl->r, wl->s);
  if (!run.ok()) {
    std::fprintf(stderr, "join: %s\n", run.status().ToString().c_str());
    return 1;
  }

  // 4. Validate and report.
  if (run->matches != s_tuples) {
    std::fprintf(stderr, "FAIL: expected %llu matches, got %llu\n",
                 static_cast<unsigned long long>(s_tuples),
                 static_cast<unsigned long long>(run->matches));
    return 1;
  }
  std::printf("matches : %llu (validated)\n",
              static_cast<unsigned long long>(run->matches));
  std::printf("elapsed : %s (simulated)\n",
              util::FormatSeconds(run->elapsed).c_str());
  std::printf("speed   : %s\n",
              util::FormatTupleRate(run->Throughput(r_tuples, s_tuples))
                  .c_str());
  std::printf("radix   : %u + %u bits | cached %.0f%% of state, spilled %s\n",
              join.stats().bits1, join.stats().bits2,
              join.stats().cached_fraction * 100.0,
              util::FormatBytes(join.stats().spilled_bytes).c_str());

  util::Table phases({"phase", "time", "bottleneck", "link", "compute"});
  const char* names[] = {"prefix_sum1", "partition1", "prefix_sum2",
                         "partition2", "sched",       "join"};
  for (const char* name : names) {
    double total = 0.0, link = 0.0, comp = 0.0;
    const char* bound = "-";
    for (const auto& ph : run->phases) {
      if (ph.name.find(name) == std::string::npos) continue;
      total += ph.Elapsed();
      link += ph.time.link;
      comp += ph.time.compute;
      bound = ph.time.Bottleneck();
    }
    phases.AddRow({name, util::FormatSeconds(total), bound,
                   util::FormatSeconds(link), util::FormatSeconds(comp)});
  }
  phases.Print("Kernel phases (sums over all launches; join phase overlaps)");

  std::printf(
      "\ninterconnect: read %s (payload %s), write %s | IOMMU req/tuple "
      "%.2e\n",
      util::FormatBytes(run->totals.link_read_physical).c_str(),
      util::FormatBytes(run->totals.link_read_payload).c_str(),
      util::FormatBytes(run->totals.link_write_physical).c_str(),
      run->totals.IommuRequestsPerTuple());
  return 0;
}
