// Quickstart: join two relations with the Triton join and inspect the run.
//
// Builds a PK/FK workload, runs the Triton join on the simulated
// AC922/NVLink machine, validates the result, and prints throughput, the
// per-kernel phase breakdown, cache statistics and interconnect counters.
//
//   ./quickstart [--mtuples=512] [--scale=64] [--ratio=3]
//                [--backend=cpu|gpu|hybrid]
//
// --backend selects the execution engine: the GPU Triton join (default),
// the CPU-only radix join, or the heterogeneous co-processing scheduler
// that splits the join across both processors from its cost-model
// predictions and rebalances adaptively between morsel waves.

#include <cstdio>
#include <string>

#include "core/triton_join.h"
#include "data/generator.h"
#include "exec/backend.h"
#include "exec/device.h"
#include "join/common.h"
#include "join/cpu_radix_join.h"
#include "sched/coprocess_scheduler.h"
#include "sim/hw_spec.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

using namespace triton;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int64_t scale = flags.GetInt("scale", 64);
  const double mtuples = flags.GetDouble("mtuples", 512);
  const int64_t ratio = flags.GetInt("ratio", 1);
  auto backend = exec::ParseBackend(flags.GetString("backend", "gpu"));
  if (!backend.ok()) {
    std::fprintf(stderr, "backend: %s\n",
                 backend.status().ToString().c_str());
    return 1;
  }

  // 1. Describe the machine: the paper's IBM AC922 (POWER9 + V100 over
  //    NVLink 2.0), with capacities scaled down so the run fits this host.
  sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(static_cast<double>(scale));
  exec::Device dev(hw);
  std::printf("machine : %s (capacities scaled 1/%lld)\n", hw.name.c_str(),
              static_cast<long long>(scale));

  // 2. Generate the paper's workload: R holds shuffled primary keys, S
  //    uniform foreign keys; 16-byte tuples in column layout.
  const uint64_t r_tuples =
      static_cast<uint64_t>(mtuples * 1024 * 1024 / static_cast<double>(scale));
  const uint64_t s_tuples = r_tuples * static_cast<uint64_t>(ratio);
  data::WorkloadConfig cfg;
  cfg.r_tuples = r_tuples;
  cfg.s_tuples = s_tuples;
  auto wl = data::GenerateWorkload(dev.allocator(), cfg);
  if (!wl.ok()) {
    std::fprintf(stderr, "workload: %s\n", wl.status().ToString().c_str());
    return 1;
  }
  std::printf("workload: |R| = %llu, |S| = %llu tuples (%s total)\n",
              static_cast<unsigned long long>(r_tuples),
              static_cast<unsigned long long>(s_tuples),
              util::FormatBytes((r_tuples + s_tuples) * 16).c_str());

  // 3. Run the join on the selected backend.
  std::printf("backend : %s\n", exec::BackendName(backend.value()));
  core::TritonJoin join;
  sched::CoProcessScheduler hybrid({.adaptive = true});
  util::StatusOr<join::JoinRun> run = join::JoinRun{};
  switch (backend.value()) {
    case exec::Backend::kCpu: {
      join::CpuRadixJoin cpu_join;
      run = cpu_join.Run(dev, wl->r, wl->s);
      break;
    }
    case exec::Backend::kHybrid:
      run = hybrid.Run(dev, wl->r, wl->s);
      break;
    case exec::Backend::kGpu:
      run = join.Run(dev, wl->r, wl->s);
      break;
  }
  if (!run.ok()) {
    std::fprintf(stderr, "join: %s\n", run.status().ToString().c_str());
    return 1;
  }

  // 4. Validate and report.
  if (run->matches != s_tuples) {
    std::fprintf(stderr, "FAIL: expected %llu matches, got %llu\n",
                 static_cast<unsigned long long>(s_tuples),
                 static_cast<unsigned long long>(run->matches));
    return 1;
  }
  std::printf("matches : %llu (validated)\n",
              static_cast<unsigned long long>(run->matches));
  std::printf("elapsed : %s (simulated)\n",
              util::FormatSeconds(run->elapsed).c_str());
  std::printf("speed   : %s\n",
              util::FormatTupleRate(run->Throughput(r_tuples, s_tuples))
                  .c_str());
  if (backend.value() == exec::Backend::kGpu) {
    std::printf(
        "radix   : %u + %u bits | cached %.0f%% of state, spilled %s\n",
        join.stats().bits1, join.stats().bits2,
        join.stats().cached_fraction * 100.0,
        util::FormatBytes(join.stats().spilled_bytes).c_str());
  } else if (backend.value() == exec::Backend::kHybrid) {
    const sched::CoProcessStats& st = hybrid.stats();
    std::printf(
        "split   : %u cpu + %u gpu pairs (cpu share %.0f%% -> %.0f%%) | "
        "cached %.0f%%, spilled %s\n",
        st.cpu_pairs, st.gpu_pairs, st.initial_cpu_fraction * 100.0,
        st.final_cpu_fraction * 100.0, st.cached_fraction * 100.0,
        util::FormatBytes(st.spilled_bytes).c_str());
  }

  util::Table phases({"phase", "time", "bottleneck", "link", "compute"});
  const char* names[] = {"prefix_sum1", "partition1", "prefix_sum2",
                         "partition2", "sched",       "join"};
  for (const char* name : names) {
    double total = 0.0, link = 0.0, comp = 0.0;
    const char* bound = "-";
    for (const auto& ph : run->phases) {
      if (ph.name.find(name) == std::string::npos) continue;
      total += ph.Elapsed();
      link += ph.time.link;
      comp += ph.time.compute;
      bound = ph.time.Bottleneck();
    }
    phases.AddRow({name, util::FormatSeconds(total), bound,
                   util::FormatSeconds(link), util::FormatSeconds(comp)});
  }
  phases.Print("Kernel phases (sums over all launches; join phase overlaps)");

  std::printf(
      "\ninterconnect: read %s (payload %s), write %s | IOMMU req/tuple "
      "%.2e\n",
      util::FormatBytes(run->totals.link_read_physical).c_str(),
      util::FormatBytes(run->totals.link_read_payload).c_str(),
      util::FormatBytes(run->totals.link_write_physical).c_str(),
      run->totals.IommuRequestsPerTuple());
  return 0;
}
