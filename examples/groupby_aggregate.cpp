// Group-by aggregation with out-of-core state — the *other* stateful
// operator the paper's technique covers (Sections 1 and 2.2).
//
// Simulates:  SELECT key, SUM(value) FROM facts GROUP BY key
// over a fact table larger than GPU memory with a configurable number of
// groups, and validates the result against a host-side reference.
//
//   ./groupby_aggregate [--mtuples=1024] [--groups-mtuples=64] [--scale=64]

#include <cstdio>

#include "core/triton_aggregate.h"
#include "data/generator.h"
#include "exec/device.h"
#include "sim/hw_spec.h"
#include "util/flags.h"
#include "util/units.h"

using namespace triton;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int64_t scale = flags.GetInt("scale", 64);
  const double mtuples = flags.GetDouble("mtuples", 1024);
  const double groups_m = flags.GetDouble("groups-mtuples", 64);

  sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(static_cast<double>(scale));
  exec::Device dev(hw);
  const uint64_t rows = static_cast<uint64_t>(
      mtuples * 1024 * 1024 / static_cast<double>(scale));
  const uint64_t groups = static_cast<uint64_t>(
      groups_m * 1024 * 1024 / static_cast<double>(scale));

  auto rel = data::Relation::AllocateCpu(dev.allocator(), rows);
  if (!rel.ok()) {
    std::fprintf(stderr, "%s\n", rel.status().ToString().c_str());
    return 1;
  }
  data::FillForeignKeys(*rel, groups, 17);
  data::FillPayloads(*rel, 18);
  std::printf("facts: %llu rows over %llu groups (%s; GPU has %s)\n",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(groups),
              util::FormatBytes(rows * 16).c_str(),
              util::FormatBytes(hw.gpu_mem.capacity).c_str());

  core::TritonAggregate agg;
  auto run = agg.Run(dev, *rel);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }

  auto [ref_groups, ref_checksum] = core::ReferenceAggregate(*rel);
  if (run->groups != ref_groups || run->checksum != ref_checksum) {
    std::fprintf(stderr, "FAIL: result mismatch\n");
    return 1;
  }
  std::printf("groups  : %llu (validated against host reference)\n",
              static_cast<unsigned long long>(run->groups));
  std::printf("elapsed : %s -> %s\n",
              util::FormatSeconds(run->elapsed).c_str(),
              util::FormatTupleRate(run->Throughput(rows)).c_str());
  std::printf("link    : read %s, write %s | IOMMU req/tuple %.2e\n",
              util::FormatBytes(run->totals.link_read_physical).c_str(),
              util::FormatBytes(run->totals.link_write_physical).c_str(),
              run->totals.IommuRequestsPerTuple());
  return 0;
}
