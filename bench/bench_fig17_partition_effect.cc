// Figure 17: effect of the first-pass partitioning algorithm on the
// end-to-end radix join, scaling the relations from 128 M to 2048 M tuples.
// Caching is disabled to isolate the partitioning effect (the Triton join
// with no cache is a plain two-pass out-of-core radix join).
//
// Expected shape (paper): Shared is fastest while its flush granularity
// stays at 128 bytes but collapses for large relations (high fanout);
// Hierarchical sustains its throughput across the whole range and
// beats Linear by 1.1-1.9x and Standard by 3.6-4x.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "partition/hierarchical.h"
#include "partition/linear.h"
#include "partition/shared.h"
#include "partition/standard.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "fig17", "Figure 17",
                      "Partitioning algorithm effect on the radix join");
  util::Table table(
      {"MTuples/rel", "Standard", "Linear", "Shared", "Hierarchical"});

  partition::StandardPartitioner standard;
  partition::LinearPartitioner linear;
  partition::SharedPartitioner shared;
  partition::HierarchicalPartitioner hierarchical;
  struct Algo {
    const char* name;
    partition::GpuPartitioner* p;
  } algos[] = {{"Standard", &standard},
               {"Linear", &linear},
               {"Shared", &shared},
               {"Hierarchical", &hierarchical}};

  for (double m : env.SizeSweep()) {
    uint64_t n = env.Tuples(m);
    std::vector<std::string> row = {util::FormatDouble(m, 0)};
    for (const Algo& algo : algos) {
      exec::Device dev(env.hw());
      data::WorkloadConfig cfg;
      cfg.r_tuples = n;
      cfg.s_tuples = n;
      auto wl = data::GenerateWorkload(dev.allocator(), cfg);
      CHECK_OK(wl.status());
      core::TritonJoin join({.result_mode = join::ResultMode::kAggregate,
                             .cache_bytes = 0,
                             .pass1 = algo.p});
      auto run = join.Run(dev, wl->r, wl->s);
      CHECK_OK(run.status());
      CHECK_EQ(run->matches, n);
      bench::Measurement meas;
      meas.AddRun(run->elapsed, run->Throughput(n, n) / 1e9, run->totals);
      env.reporter().Add({.series = algo.name,
                          .axis = "mtuples_per_relation",
                          .x = m,
                          .has_x = true,
                          .unit = "gtuples_per_s",
                          .m = meas});
      row.push_back(util::FormatDouble(meas.value.mean(), 3));
    }
    table.AddRow(row);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  env.Emit(table, "Radix join throughput (G Tuples/s) by 1st-pass algorithm");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
