// Figure 21: varying the build-to-probe ratio from 1:1 to 1:32 while
// keeping the total data volume constant (61 GiB-equivalent per workload
// class).
//
// Expected shape (paper): the no-partitioning join is extremely sensitive —
// shrinking the build side pulls its hash table back inside GPU memory and
// the TLB reach (a 3414x swing for linear probing at 2048 M), plus a ~60%
// speedup from the probe/build asymmetry of GPU random reads vs writes. The
// Triton join stays flat (1.66-1.88 G tuples/s): partitioning the large
// outer relation dominates regardless of the ratio.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "join/no_partitioning_join.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "fig21", "Figure 21",
                      "Build-to-probe ratios at constant data volume");
  util::Table table({"workload", "R:S", "NPJ-perfect", "NPJ-linear",
                     "Triton-chain"});

  for (double m : {128.0, 512.0, 2048.0}) {
    uint64_t total = 2 * env.Tuples(m);
    for (int ratio : {1, 2, 4, 8, 16, 32}) {
      uint64_t r = total / (1 + ratio);
      uint64_t s = total - r;
      auto measure = [&](const char* series, auto&& make_join) {
        exec::Device dev(env.hw());
        data::WorkloadConfig cfg;
        cfg.r_tuples = r;
        cfg.s_tuples = s;
        auto wl = data::GenerateWorkload(dev.allocator(), cfg);
        CHECK_OK(wl.status());
        auto run = make_join().Run(dev, wl->r, wl->s);
        CHECK_OK(run.status());
        bench::Measurement meas;
        meas.AddRun(run->elapsed, run->Throughput(r, s) / 1e9, run->totals);
        env.reporter().Add(
            {.series = std::string(series) + "/" + util::FormatDouble(m, 0) +
                       "M",
             .axis = "ratio",
             .x = static_cast<double>(ratio),
             .has_x = true,
             .label = "1:" + std::to_string(ratio),
             .unit = "gtuples_per_s",
             .m = meas});
        return util::FormatDouble(meas.value.mean(), 3);
      };
      table.AddRow(
          {util::FormatDouble(m, 0) + " M", "1:" + std::to_string(ratio),
           measure("NPJ-perfect",
                   [&] {
                     return join::NoPartitioningJoin(
                         {.scheme = join::HashScheme::kPerfect,
                          .result_mode = join::ResultMode::kAggregate});
                   }),
           measure("NPJ-linear",
                   [&] {
                     return join::NoPartitioningJoin(
                         {.scheme = join::HashScheme::kLinearProbing,
                          .result_mode = join::ResultMode::kAggregate});
                   }),
           measure("Triton", [&] {
             return core::TritonJoin(
                 {.result_mode = join::ResultMode::kAggregate});
           })});
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  env.Emit(table, "Throughput (G Tuples/s) vs build:probe ratio");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
