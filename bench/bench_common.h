// Shared harness for the per-figure benchmark binaries.
//
// Every bench reproduces one figure of the paper: it sweeps the same axis,
// runs the same algorithms, and prints the same series — in paper units.
// Workloads are scaled down by `--scale` (default 64) together with the
// hardware capacities (see sim::HwSpec::Scaled), so axis labels still read
// in *paper-scale* million tuples while the simulation stays laptop-sized.
// Throughput is scale-invariant (both work and time shrink by the same
// factor), so G Tuples/s values are directly comparable to the paper's.
//
// Common flags: --scale=N, --runs=N (repetitions; the paper uses 10),
// --csv (emit CSV after the table), --json[=path] (write the canonical
// machine-readable report, default BENCH_<figure>.json in the working
// directory — see bench/reporter.h), --quick (coarser sweeps), --threads=N
// (host worker threads simulating thread blocks; 0 = TRITON_THREADS env or
// hardware concurrency — results are bit-identical at any setting),
// --jobs=N (independent measurement cells run concurrently on N host
// threads in benches that support it; forces --threads=1 so the cell is
// the unit of parallelism — results are bit-identical at any setting).
// Unknown flags are an error: a typo like --thread=8 would otherwise
// silently run with the default and poison a regression baseline.

#ifndef TRITON_BENCH_BENCH_COMMON_H_
#define TRITON_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <initializer_list>
#include <string>
#include <thread>
#include <vector>

#include "bench/reporter.h"
#include "data/generator.h"
#include "exec/block_executor.h"
#include "exec/device.h"
#include "sim/hw_spec.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace triton::bench {

/// Parsed environment shared by all bench binaries.
///
/// `figure_id` is the short stable identifier used for the report file name
/// ("fig13", "ablation", "ext_skew"); `figure` and `title` are the
/// human-readable heading. Benches with figure-specific flags declare them
/// in `bench_flags` so flag validation can reject typos.
class BenchEnv {
 public:
  BenchEnv(int argc, char** argv, const char* figure_id, const char* figure,
           const char* title,
           std::initializer_list<const char*> bench_flags = {})
      : flags_(argc, argv),
        scale_(flags_.GetInt("scale", 64)),
        runs_(flags_.GetInt("runs", 1)),
        jobs_(flags_.GetInt("jobs", 1)),
        csv_(flags_.GetBool("csv", false)),
        quick_(flags_.GetBool("quick", false)),
        hw_(sim::HwSpec::Ac922NvLink().Scaled(static_cast<double>(scale_))),
        start_(std::chrono::steady_clock::now()) {
    ValidateFlags(bench_flags);
    if (flags_.Has("json")) {
      json_path_ = flags_.GetString("json", "");
      // Bare --json (parsed as boolean true) selects the default path.
      if (json_path_.empty() || json_path_ == "true") {
        json_path_ = std::string("BENCH_") + figure_id + ".json";
      }
    }
    // Cell-level parallelism owns the host threads: the shared block
    // executor must run blocks inline on each cell's thread (its Run is
    // not reentrant), so --jobs > 1 pins it to one thread.
    exec::BlockExecutor::Global().SetThreads(
        jobs_ > 1 ? 1
                  : static_cast<uint32_t>(flags_.GetInt("threads", 0)));
    reporter_.Configure(figure_id, figure, title, hw_.name, scale_, runs_,
                        quick_);
    std::printf("=== %s: %s ===\n", figure, title);
    std::printf("machine: %s | scale 1/%lld | runs %lld | threads %u\n",
                hw_.name.c_str(), static_cast<long long>(scale_),
                static_cast<long long>(runs_),
                exec::BlockExecutor::Global().threads());
  }

  const util::Flags& flags() const { return flags_; }
  int64_t scale() const { return scale_; }
  int64_t runs() const { return runs_; }
  int64_t jobs() const { return jobs_; }
  bool csv() const { return csv_; }
  bool quick() const { return quick_; }
  const sim::HwSpec& hw() const { return hw_; }

  /// The figure's structured report; benches add one Point per series cell.
  Reporter& reporter() { return reporter_; }

  /// Simulated tuple count for a paper-scale size in million tuples.
  uint64_t Tuples(double paper_mtuples) const {
    uint64_t n = static_cast<uint64_t>(paper_mtuples * 1024.0 * 1024.0 /
                                       static_cast<double>(scale_));
    return n < 1024 ? 1024 : n;
  }

  /// The default Figure 13-style sweep of build/probe sizes (paper M
  /// tuples per relation).
  std::vector<double> SizeSweep() const {
    if (quick_) return {128, 512, 2048};
    return {128, 256, 512, 768, 1024, 1536, 2048};
  }

  /// Emits a finished table (and CSV when requested).
  void Emit(const util::Table& table, const std::string& title) const {
    table.Print(title);
    if (csv_) std::printf("\nCSV\n%s", table.ToCsv().c_str());
  }

  /// Final step of every bench Main: writes the JSON report when --json was
  /// given and prints the host wall-clock. Wall-clock and thread count are
  /// *not* part of the JSON — the report carries modeled quantities only,
  /// so reruns (at any --threads) are byte-identical. Returns the process
  /// exit code.
  int Finish() {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::printf("host wall-clock %.2f s (stdout only; not in the report)\n",
                wall);
    if (!json_path_.empty()) {
      util::Status st = reporter_.WriteFile(json_path_);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s (%zu points)\n", json_path_.c_str(),
                  reporter_.points().size());
    }
    return 0;
  }

 private:
  /// Rejects flags (and stray positional arguments) this bench does not
  /// understand, listing what it does.
  void ValidateFlags(std::initializer_list<const char*> bench_flags) {
    std::vector<std::string> known = {"scale",   "runs", "csv", "quick",
                                      "threads", "json", "jobs"};
    for (const char* f : bench_flags) known.push_back(f);
    bool bad = false;
    for (const std::string& name : flags_.names()) {
      bool ok = false;
      for (const std::string& k : known) ok = ok || k == name;
      if (!ok) {
        std::fprintf(stderr, "error: unknown flag --%s\n", name.c_str());
        bad = true;
      }
    }
    for (const std::string& arg : flags_.positional()) {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", arg.c_str());
      bad = true;
    }
    if (bad) {
      std::fprintf(stderr, "known flags:");
      for (const std::string& k : known) {
        std::fprintf(stderr, " --%s", k.c_str());
      }
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
  }

  util::Flags flags_;
  int64_t scale_;
  int64_t runs_;
  int64_t jobs_;
  bool csv_;
  bool quick_;
  sim::HwSpec hw_;
  std::string json_path_;
  Reporter reporter_;
  std::chrono::steady_clock::time_point start_;
};

/// Runs independent measurement cells concurrently on `jobs` host threads
/// (the calling thread participates; jobs <= 1 runs them in order inline).
/// Cells are claimed in index order from an atomic counter. Each cell must
/// be self-contained — build its own Device, generate its own workload,
/// and deposit results into its own pre-allocated slot — and the caller
/// must report the slots in index order after RunCells returns. Modeled
/// quantities are pure functions of each cell's inputs, so the report is
/// byte-identical at any --jobs setting; only host wall-clock changes.
inline void RunCells(int64_t jobs,
                     const std::vector<std::function<void()>>& cells) {
  if (jobs <= 1 || cells.size() <= 1) {
    for (const auto& cell : cells) cell();
    return;
  }
  std::atomic<size_t> next{0};
  auto drain = [&] {
    size_t i;
    while ((i = next.fetch_add(1, std::memory_order_relaxed)) <
           cells.size()) {
      cells[i]();
    }
  };
  std::vector<std::thread> pool;
  const size_t extra =
      std::min<size_t>(static_cast<size_t>(jobs), cells.size()) - 1;
  pool.reserve(extra);
  for (size_t t = 0; t < extra; ++t) pool.emplace_back(drain);
  drain();
  for (auto& th : pool) th.join();
}

/// Runs `fn` (returning simulated seconds) `runs` times on fresh seeds and
/// returns summary statistics.
template <typename Fn>
util::RunningStat Repeat(int64_t runs, Fn&& fn) {
  util::RunningStat stat;
  for (int64_t i = 0; i < runs; ++i) stat.Add(fn(static_cast<uint64_t>(i)));
  return stat;
}

/// Formats a throughput in G tuples/s with 3 digits.
inline std::string GTuples(double tuples_per_sec) {
  return util::FormatDouble(tuples_per_sec / 1e9, 3);
}

}  // namespace triton::bench

#endif  // TRITON_BENCH_BENCH_COMMON_H_
