// Extension experiment (beyond the paper): heterogeneous co-processing.
//
// Figure 16 compares the CPU-only and GPU-only radix joins as two bars.
// This bench turns those bars into a continuous curve: the co-processing
// scheduler splits every join across both processors at partition-pair
// granularity, so the CPU share sweeps 0 (the Triton join) through 1
// (every pair joined on the CPU, the GPU still running the shared pass-1
// front). The adaptive point picks its split from the sim::CostModel
// predictions of both backends and rebalances between morsel waves.
//
// Series (per swept size):
//  - cpu-only:        join::CpuRadixJoin, the paper's CPU baseline.
//  - gpu-only:        core::TritonJoin, the paper's GPU join.
//  - hybrid-adaptive: the co-processing scheduler, cost-model split plus
//                     adaptive rebalancing.
//  - sweep@<size>M:   the hybrid at fixed split ratios 0..1 (axis is the
//                     CPU share), one series per size.
//
// Expected shape (locked by the committed baseline): hybrid-adaptive is at
// least as fast as the best single backend at every size, and each sweep
// curve is unimodal — it descends from ratio 1 to the cost-model optimum
// and ascends again toward pure-GPU only if the GPU was the slower side.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "data/generator.h"
#include "join/common.h"
#include "join/cpu_radix_join.h"
#include "sched/coprocess_scheduler.h"
#include "util/units.h"

namespace triton {
namespace {

struct Cell {
  double seconds = 0.0;
  uint64_t matches = 0;
  uint64_t checksum = 0;
  sim::PerfCounters totals;
  sched::CoProcessStats stats;
};

/// One join on a fresh device. `ratio` < 0 with adaptive=true is the
/// adaptive hybrid; ratio in [0,1] the fixed split; backend "cpu"/"gpu"
/// the single-backend baselines.
Cell RunCell(const sim::HwSpec& hw, uint64_t n, const std::string& backend,
             double ratio, bool adaptive) {
  exec::Device dev(hw);
  data::WorkloadConfig cfg;
  cfg.r_tuples = n;
  cfg.s_tuples = n;
  cfg.seed = 42;
  auto wl = data::GenerateWorkload(dev.allocator(), cfg);
  CHECK_OK(wl.status());

  Cell cell;
  util::StatusOr<join::JoinRun> run = join::JoinRun{};
  if (backend == "cpu") {
    join::CpuRadixJoin cpu({.result_mode = join::ResultMode::kAggregate});
    run = cpu.Run(dev, wl->r, wl->s);
  } else if (backend == "gpu") {
    core::TritonJoin gpu({.result_mode = join::ResultMode::kAggregate});
    run = gpu.Run(dev, wl->r, wl->s);
  } else {
    sched::CoProcessConfig sc;
    sc.result_mode = join::ResultMode::kAggregate;
    sc.split_ratio = ratio;
    sc.adaptive = adaptive;
    sched::CoProcessScheduler hybrid(sc);
    run = hybrid.Run(dev, wl->r, wl->s);
    if (run.ok()) cell.stats = hybrid.stats();
  }
  CHECK_OK(run.status());
  CHECK_EQ(run->matches, n);
  cell.seconds = run->elapsed;
  cell.matches = run->matches;
  cell.checksum = run->checksum;
  cell.totals = run->totals;
  return cell;
}

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "ext_coproc",
                      "Extension: CPU+GPU co-processing",
                      "Fig. 16's two bars as a split-ratio curve");
  const std::vector<double> ratios = {0.0,   0.0625, 0.125, 0.1875, 0.25,
                                      0.375, 0.5,    0.75,  1.0};

  util::Table table({"mtuples", "cpu-only", "gpu-only", "hybrid",
                     "cpu share", "best fixed"});
  for (double size : env.SizeSweep()) {
    const uint64_t n = env.Tuples(size);
    const std::string label = util::FormatDouble(size, 0) + "M";

    Cell cpu = RunCell(env.hw(), n, "cpu", 0.0, false);
    Cell gpu = RunCell(env.hw(), n, "gpu", 0.0, false);
    Cell ada = RunCell(env.hw(), n, "hybrid", -1.0, true);
    // All backends compute the same join.
    CHECK_EQ(cpu.checksum, gpu.checksum);
    CHECK_EQ(ada.checksum, gpu.checksum);

    const double tuples = static_cast<double>(2 * n);
    auto add = [&](const std::string& series, const std::string& axis,
                   double x, const Cell& cell,
                   std::vector<std::pair<std::string, double>> extra = {}) {
      bench::Measurement m;
      m.AddRun(cell.seconds, tuples / cell.seconds / 1e9, cell.totals);
      bench::Point point;
      point.series = series;
      point.axis = axis;
      point.x = x;
      point.has_x = true;
      point.label = label;
      point.unit = "gtuples_per_s";
      point.m = m;
      point.extra = std::move(extra);
      env.reporter().Add(point);
    };
    add("cpu-only", "mtuples_per_relation", size, cpu);
    add("gpu-only", "mtuples_per_relation", size, gpu);
    add("hybrid-adaptive", "mtuples_per_relation", size, ada,
        {{"cpu_share", ada.stats.final_cpu_fraction},
         {"pairs", static_cast<double>(ada.stats.pairs_total)},
         {"cpu_pairs", static_cast<double>(ada.stats.cpu_pairs)}});

    double best_fixed = 0.0;
    double best_fixed_seconds = -1.0;
    for (double ratio : ratios) {
      Cell cell = RunCell(env.hw(), n, "hybrid", ratio, false);
      CHECK_EQ(cell.checksum, gpu.checksum);
      add("sweep@" + label, "cpu_share", ratio, cell,
          {{"cpu_pairs", static_cast<double>(cell.stats.cpu_pairs)}});
      if (best_fixed_seconds < 0.0 || cell.seconds < best_fixed_seconds) {
        best_fixed_seconds = cell.seconds;
        best_fixed = ratio;
      }
      std::printf(".");
      std::fflush(stdout);
    }

    table.AddRow({label, util::FormatSeconds(cpu.seconds),
                  util::FormatSeconds(gpu.seconds),
                  util::FormatSeconds(ada.seconds),
                  util::FormatDouble(ada.stats.final_cpu_fraction, 3),
                  util::FormatDouble(best_fixed, 4)});
  }
  std::printf("\n");
  env.Emit(table, "Join time: single backends vs co-processing split");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
