// Figure 23: performance per Watt of the CPU radix join versus the GPU
// joins (no-partitioning and Triton), perfect hashing, averaged over the
// three workload classes.
//
// Power model (calibrated to the paper's measurements in Section 6.2.11):
// the CPU join is charged its load-minus-idle delta (~130 W; the paper
// subtracts the idle power of both GPUs to simulate a CPU-only system),
// while the GPU joins carry the full system idle power (290 W, the paper's
// point: "the GPU is hosted by a CPU") plus the GPU's load delta and the
// CPU's I/O power for interconnect transfers.
//
// Expected shape (paper): the CPU is the most power-efficient processor at
// 7-9.4 M tuples/s/W; the GPU joins land at roughly 3-5.5 M tuples/s/W.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "join/cpu_radix_join.h"
#include "join/no_partitioning_join.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "fig23", "Figure 23",
                      "Performance per Watt");
  const sim::HwSpec& hw = env.hw();

  const double cpu_watts = hw.cpu.load_watts - 60.0;  // load-idle delta
  const double gpu_watts = hw.system_idle_watts +
                           (hw.gpu.load_watts - hw.gpu.idle_watts) +
                           hw.cpu.io_for_gpu_watts;

  util::Table table({"workload", "CPU radix (M/s/W)", "NPJ (M/s/W)",
                     "Triton (M/s/W)"});

  for (double m : {128.0, 512.0, 2048.0}) {
    uint64_t n = env.Tuples(m);
    exec::Device dev(env.hw());
    data::WorkloadConfig cfg;
    cfg.r_tuples = n;
    cfg.s_tuples = n;
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    CHECK_OK(wl.status());

    join::CpuRadixJoin cpu({.scheme = join::HashScheme::kPerfect});
    join::NoPartitioningJoin npj({.scheme = join::HashScheme::kPerfect});
    core::TritonJoin triton({.scheme = join::HashScheme::kPerfect});
    auto a = cpu.Run(dev, wl->r, wl->s);
    auto b = npj.Run(dev, wl->r, wl->s);
    auto c = triton.Run(dev, wl->r, wl->s);
    CHECK_OK(a.status());
    CHECK_OK(b.status());
    CHECK_OK(c.status());

    auto eff = [&](const char* series, const join::JoinRun& run,
                   double watts) {
      double tp = run.Throughput(n, n);
      bench::Measurement meas;
      meas.AddRun(run.elapsed, tp / 1e6 / watts, run.totals);
      env.reporter().Add({.series = series,
                          .axis = "mtuples_per_relation",
                          .x = m,
                          .has_x = true,
                          .unit = "mtuples_per_s_per_w",
                          .m = meas,
                          .extra = {{"watts", watts}}});
      return util::FormatDouble(tp / 1e6 / watts, 1);
    };
    table.AddRow({util::FormatDouble(m, 0) + " M",
                  eff("CPU radix", *a, cpu_watts),
                  eff("GPU NPJ", *b, gpu_watts),
                  eff("GPU Triton", *c, gpu_watts)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  env.Emit(table, "Power efficiency (M Tuples/s per Watt)");
  std::printf("power model: CPU join %.0f W, GPU joins %.0f W (see header)\n",
              cpu_watts, gpu_watts);
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
