// Figure 1 (introduction): the out-of-core performance cliff, simplified to
// the perfect-hashing variants of Figure 13.
//
// Expected shape: the GPU no-partitioning join leads while its state fits
// GPU memory, hits the GPU-memory and TLB cliffs, and falls below the CPU
// radix join — while the Triton join degrades gracefully and stays on top
// for large relations ("our contribution" region of the figure).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "join/cpu_radix_join.h"
#include "join/no_partitioning_join.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "Figure 1",
                      "Out-of-core state: cliff vs graceful scaling");
  util::Table table(
      {"MTuples/rel", "CPU Radix Join", "GPU NPJ", "GPU Triton Join"});

  for (double m : env.SizeSweep()) {
    uint64_t n = env.Tuples(m);
    auto measure = [&](auto&& make_join) {
      auto stat = bench::Repeat(env.runs(), [&](uint64_t rep) {
        exec::Device dev(env.hw());
        data::WorkloadConfig cfg;
        cfg.r_tuples = n;
        cfg.s_tuples = n;
        cfg.seed = 7 + rep;
        auto wl = data::GenerateWorkload(dev.allocator(), cfg);
        CHECK_OK(wl.status());
        auto run = make_join().Run(dev, wl->r, wl->s);
        CHECK_OK(run.status());
        return run->Throughput(n, n);
      });
      return bench::GTuples(stat.mean());
    };

    table.AddRow(
        {util::FormatDouble(m, 0),
         measure([&] {
           return join::CpuRadixJoin({.scheme = join::HashScheme::kPerfect});
         }),
         measure([&] {
           return join::NoPartitioningJoin(
               {.scheme = join::HashScheme::kPerfect});
         }),
         measure([&] {
           return core::TritonJoin({.scheme = join::HashScheme::kPerfect});
         })});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  env.Emit(table, "Throughput (G Tuples/s): cliff vs graceful degradation");
  return 0;
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
