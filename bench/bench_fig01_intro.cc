// Figure 1 (introduction): the out-of-core performance cliff, simplified to
// the perfect-hashing variants of Figure 13.
//
// Expected shape: the GPU no-partitioning join leads while its state fits
// GPU memory, hits the GPU-memory and TLB cliffs, and falls below the CPU
// radix join — while the Triton join degrades gracefully and stays on top
// for large relations ("our contribution" region of the figure).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "join/cpu_radix_join.h"
#include "join/no_partitioning_join.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "fig01", "Figure 1",
                      "Out-of-core state: cliff vs graceful scaling");
  util::Table table(
      {"MTuples/rel", "CPU Radix Join", "GPU NPJ", "GPU Triton Join"});

  for (double m : env.SizeSweep()) {
    uint64_t n = env.Tuples(m);
    auto measure = [&](const char* series, auto&& make_join) {
      bench::Measurement meas;
      for (int64_t rep = 0; rep < env.runs(); ++rep) {
        exec::Device dev(env.hw());
        data::WorkloadConfig cfg;
        cfg.r_tuples = n;
        cfg.s_tuples = n;
        cfg.seed = 7 + static_cast<uint64_t>(rep);
        auto wl = data::GenerateWorkload(dev.allocator(), cfg);
        CHECK_OK(wl.status());
        auto run = make_join().Run(dev, wl->r, wl->s);
        CHECK_OK(run.status());
        meas.AddRun(run->elapsed, run->Throughput(n, n) / 1e9, run->totals);
      }
      env.reporter().Add({.series = series,
                          .axis = "mtuples_per_relation",
                          .x = m,
                          .has_x = true,
                          .unit = "gtuples_per_s",
                          .m = meas});
      return util::FormatDouble(meas.value.mean(), 3);
    };

    table.AddRow(
        {util::FormatDouble(m, 0),
         measure("CPU Radix Join", [&] {
           return join::CpuRadixJoin({.scheme = join::HashScheme::kPerfect});
         }),
         measure("GPU NPJ", [&] {
           return join::NoPartitioningJoin(
               {.scheme = join::HashScheme::kPerfect});
         }),
         measure("GPU Triton Join", [&] {
           return core::TritonJoin({.scheme = join::HashScheme::kPerfect});
         })});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  env.Emit(table, "Throughput (G Tuples/s): cliff vs graceful degradation");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
