// Microbenchmarks of the simulator's hot primitives (not a paper figure).
//
// Each series exercises one building block of the simulation — bulk TLB
// translation, link packetization, the SIMD radix inner loop, an
// end-to-end partition scatter, the per-tuple vs bulk functional-store
// path, the allocator cycle, and the sanitizer's scratchpad shadow — and
// records two kinds of results:
//
//   * Modeled quantities (simulated latencies, transaction counts,
//     checksums, PerfCounters) go through bench::Reporter into
//     BENCH_micro.json. They are pure functions of the inputs, so the
//     report is byte-identical across reruns, --threads settings and
//     TRITON_FASTPATH modes; CI diffs it against a committed baseline.
//
//   * Host ns/op goes to a stdout table only (never into the JSON) — the
//     CI microbench job uploads the log as an artifact so host-side
//     throughput is tracked without making wall-clock part of the gate.
//
// The store series doubles as an in-binary bit-identity probe: the
// per-tuple and StoreRun variants must produce identical buffer contents
// and identical PerfCounters, which is CHECKed before reporting.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "partition/hierarchical.h"
#include "partition/prefix_sum.h"
#include "partition/shared.h"
#include "sanitizer/sanitizer.h"
#include "sim/packetizer.h"
#include "sim/tlb.h"
#include "util/bits.h"

namespace triton {
namespace {

using bench::BenchEnv;

/// Defeats dead-code elimination in host-timing loops.
volatile uint64_t g_sink = 0;
void Sink(uint64_t v) { g_sink = g_sink + v; }

/// Best-of-`reps` host nanoseconds per operation for fn() performing `ops`
/// operations. Host-only: results never enter the JSON report.
template <typename Fn>
double HostNsPerOp(int64_t reps, uint64_t ops, Fn&& fn) {
  double best = 0.0;
  for (int64_t r = 0; r < (reps < 1 ? 1 : reps); ++r) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    double ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t0)
                    .count() /
                static_cast<double>(ops);
    if (best == 0.0 || ns < best) best = ns;
  }
  return best;
}

/// SplitMix64: deterministic key stream for checksum series.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int Main(int argc, char** argv) {
  BenchEnv env(argc, argv, "micro", "Microbenchmarks",
               "Simulator primitive costs (modeled; host ns/op on stdout)");
  util::Table host({"primitive", "x", "host ns/op"});
  const int64_t reps = env.runs();

  // --- Bulk TLB translation: one TranslateRun per contiguous byte run ---
  // Strides a fixed op count of runs across 4x the (scaled) L2 TLB
  // coverage, so hit/miss mix varies with the run size. Modeled value is
  // the mean per-range latency; counters carry lookups/misses/IOMMU work.
  for (const char* pool : {"cpu", "gpu"}) {
    const sim::PageLocation loc = pool[0] == 'c'
                                      ? sim::PageLocation::kCpuMem
                                      : sim::PageLocation::kGpuMem;
    for (uint64_t size : {uint64_t{64}, uint64_t{4096}, uint64_t{65536},
                          uint64_t{1} << 20, uint64_t{1} << 24}) {
      const uint64_t ops = 4096;
      const uint64_t span = env.hw().tlb.l2_coverage * 4;
      sim::TlbSimulator tlb(env.hw().tlb);
      sim::PerfCounters c{};
      sim::TranslationRunResult total{};
      uint64_t addr = 0;
      for (uint64_t i = 0; i < ops; ++i) {
        sim::TranslationRunResult r = tlb.TranslateRun(addr, size, loc, &c);
        total.accesses += r.accesses;
        total.latency_sum += r.latency_sum;
        addr = (addr + size) % span;
      }
      bench::Measurement meas;
      meas.AddRun(total.latency_sum,
                  total.latency_sum / static_cast<double>(total.accesses) *
                      1e9,
                  c);
      env.reporter().Add(
          {.series = std::string("tlb-run-") + pool,
           .axis = "run_bytes",
           .x = static_cast<double>(size),
           .has_x = true,
           .unit = "ns_per_range",
           .m = meas,
           .extra = {{"ranges", static_cast<double>(total.accesses)}}});
      double ns = HostNsPerOp(reps, ops, [&] {
        sim::TlbSimulator t2(env.hw().tlb);
        sim::PerfCounters c2{};
        uint64_t a = 0;
        uint64_t acc = 0;
        for (uint64_t i = 0; i < ops; ++i) {
          acc += t2.TranslateRun(a, size, loc, &c2).accesses;
          a = (a + size) % span;
        }
        Sink(acc);
      });
      host.AddRow({std::string("tlb-run-") + pool, std::to_string(size),
                   util::FormatDouble(ns, 1)});
    }
  }

  // --- Link packetization: Access() per access size and alignment ---
  for (bool aligned : {true, false}) {
    const char* name = aligned ? "pkt-write-aligned" : "pkt-write-misalign";
    for (uint64_t size : {uint64_t{8}, uint64_t{16}, uint64_t{64},
                          uint64_t{128}, uint64_t{4096}}) {
      sim::Packetizer pkt(env.hw().link);
      const uint64_t addr = aligned ? 0 : 8;
      sim::TxnStats st = pkt.Access(addr, size, /*is_write=*/true);
      bench::Measurement meas;
      meas.AddRun(0.0, static_cast<double>(st.physical));
      env.reporter().Add(
          {.series = name,
           .axis = "access_bytes",
           .x = static_cast<double>(size),
           .has_x = true,
           .unit = "physical_bytes",
           .m = meas,
           .extra = {{"txns", static_cast<double>(st.txns)},
                     {"payload", static_cast<double>(st.payload)}}});
      const uint64_t ops = 1 << 16;
      double ns = HostNsPerOp(reps, ops, [&] {
        uint64_t acc = 0;
        for (uint64_t i = 0; i < ops; ++i) {
          acc += pkt.Access(addr + i * 128, size, true).physical;
        }
        Sink(acc);
      });
      host.AddRow({name, std::to_string(size), util::FormatDouble(ns, 2)});
    }
  }

  // --- SIMD radix inner loop: PartitionsOf over a key batch ---
  // The checksum (sum of partition indices; exact in a double) gates the
  // hash/partition function bit-for-bit. Host table compares the batched
  // loop against the scalar per-tuple PartitionOf it replaces.
  {
    const uint64_t n = 1 << 20;
    std::vector<data::Key> keys(n);
    uint64_t state = 7;
    for (uint64_t i = 0; i < n; ++i) {
      keys[i] = static_cast<data::Key>(SplitMix64(state) >> 1);
    }
    std::vector<uint32_t> pidx(n);
    for (uint32_t bits : {uint32_t{8}, uint32_t{14}}) {
      partition::RadixConfig radix{0, bits};
      radix.PartitionsOf(keys.data(), n, pidx.data());
      double checksum = 0.0;
      for (uint64_t i = 0; i < n; ++i) checksum += pidx[i];
      bench::Measurement meas;
      meas.AddRun(0.0, checksum);
      env.reporter().Add({.series = "radix-partitions-of",
                          .axis = "bits",
                          .x = static_cast<double>(bits),
                          .has_x = true,
                          .unit = "pidx_checksum",
                          .m = meas});
      double batched = HostNsPerOp(reps, n, [&] {
        radix.PartitionsOf(keys.data(), n, pidx.data());
        Sink(pidx[n - 1]);
      });
      double scalar = HostNsPerOp(reps, n, [&] {
        uint64_t acc = 0;
        for (uint64_t i = 0; i < n; ++i) acc += radix.PartitionOf(keys[i]);
        Sink(acc);
      });
      host.AddRow({"radix-batched", std::to_string(bits),
                   util::FormatDouble(batched, 2)});
      host.AddRow({"radix-scalar", std::to_string(bits),
                   util::FormatDouble(scalar, 2)});
    }
  }

  // --- End-to-end partition scatter (histogram + SWWC scatter) ---
  // Exercises the batched partitioner inner loops, BlockTlb::AccessRun and
  // KernelContext::StoreRun together; modeled counters and throughput are
  // the gated quantities.
  {
    const uint64_t n = env.Tuples(128);
    partition::SharedPartitioner shared;
    partition::HierarchicalPartitioner hierarchical;
    struct Algo {
      const char* name;
      partition::GpuPartitioner* p;
    } algos[] = {{"scatter-Shared", &shared},
                 {"scatter-Hierarchical", &hierarchical}};
    for (const Algo& algo : algos) {
      for (int64_t fanout : {int64_t{32}, int64_t{256}}) {
        exec::Device dev(env.hw());
        data::WorkloadConfig cfg;
        cfg.r_tuples = n;
        cfg.s_tuples = 1024;
        auto wl = data::GenerateWorkload(dev.allocator(), cfg);
        CHECK_OK(wl.status());
        partition::ColumnInput input = partition::ColumnInput::Of(wl->r);
        partition::RadixConfig radix{0, util::FloorLog2(fanout)};
        uint32_t blocks =
            algo.p == &hierarchical
                ? partition::HierarchicalRecommendedBlocks(
                      {}, env.hw(), dev.allocator().gpu_free(),
                      radix.fanout())
                : env.hw().gpu.num_sms;
        partition::PartitionLayout layout =
            CpuPrefixSum(dev, input, radix, blocks);
        auto out = dev.allocator().AllocateCpu(layout.padded_tuples() *
                                               sizeof(partition::Tuple));
        CHECK_OK(out.status());
        partition::PartitionRun run =
            algo.p->PartitionColumns(dev, input, layout, *out, {});
        bench::Measurement meas;
        meas.AddRun(run.Elapsed(),
                    static_cast<double>(n) / run.Elapsed() / 1e9,
                    run.record.counters);
        env.reporter().Add(
            {.series = algo.name,
             .axis = "fanout",
             .x = static_cast<double>(fanout),
             .has_x = true,
             .unit = "gtuples_per_s",
             .m = meas,
             .extra = {{"flushes", static_cast<double>(run.flushes)}}});
        double ns = HostNsPerOp(reps, n, [&] {
          partition::PartitionRun r2 =
              algo.p->PartitionColumns(dev, input, layout, *out, {});
          Sink(r2.flushes);
        });
        host.AddRow({algo.name, std::to_string(fanout),
                     util::FormatDouble(ns, 2)});
      }
    }
  }

  // --- Functional store: per-tuple Store vs bulk StoreRun ---
  // Identical accounting (one WriteSeq) and identical functional writes;
  // the CHECKs below are the in-binary bit-identity probe, and both
  // variants' checksums land in the gated report.
  {
    const uint64_t n = 1 << 20;
    std::vector<partition::Tuple> src(n);
    uint64_t state = 11;
    for (uint64_t i = 0; i < n; ++i) {
      src[i].key = static_cast<int64_t>(SplitMix64(state) >> 1);
      src[i].value = static_cast<int64_t>(i);
    }
    auto checksum_of = [&](const mem::Buffer& b) {
      double sum = 0.0;
      const auto* t = reinterpret_cast<const partition::Tuple*>(b.data());
      for (uint64_t i = 0; i < n; ++i) {
        sum += static_cast<double>(t[i].key % 65536);
      }
      return sum;
    };
    struct Variant {
      const char* name;
      bool bulk;
      exec::KernelRecord rec;
      double checksum = 0.0;
    } variants[] = {{"store-per-tuple", false, {}, 0.0},
                    {"store-run", true, {}, 0.0}};
    for (Variant& v : variants) {
      // Fresh Device per variant: the IOTLB survives launches, so a shared
      // device would hand the second variant a warm cache and different
      // counters. Cold-start both so the equality CHECK is meaningful.
      exec::Device dev(env.hw());
      auto buf = dev.allocator().AllocateCpu(n * sizeof(partition::Tuple));
      CHECK_OK(buf.status());
      v.rec = dev.Launch({.name = v.name}, [&](exec::KernelContext& ctx) {
        ctx.WriteSeq(*buf, 0, n * sizeof(partition::Tuple));
        if (v.bulk) {
          ctx.StoreRun(*buf, 0, src.data(), n);
        } else {
          for (uint64_t i = 0; i < n; ++i) ctx.Store(*buf, i, src[i]);
        }
      });
      v.checksum = checksum_of(*buf);
      const uint64_t ops = n;
      double ns = HostNsPerOp(reps, ops, [&] {
        dev.Launch({.name = "timing"}, [&](exec::KernelContext& ctx) {
          ctx.WriteSeq(*buf, 0, n * sizeof(partition::Tuple));
          if (v.bulk) {
            ctx.StoreRun(*buf, 0, src.data(), n);
          } else {
            for (uint64_t i = 0; i < n; ++i) ctx.Store(*buf, i, src[i]);
          }
        });
        Sink(static_cast<uint64_t>(buf->data()[0]));
      });
      host.AddRow({v.name, std::to_string(n), util::FormatDouble(ns, 2)});
    }
    CHECK(variants[0].rec.counters == variants[1].rec.counters);
    CHECK_EQ(variants[0].checksum, variants[1].checksum);
    for (const Variant& v : variants) {
      bench::Measurement meas;
      meas.AddRun(v.rec.Elapsed(), v.checksum, v.rec.counters);
      env.reporter().Add({.series = v.name,
                          .axis = "tuples",
                          .x = static_cast<double>(n),
                          .has_x = true,
                          .unit = "buffer_checksum",
                          .m = meas});
    }
  }

  // --- Allocator allocate/free cycle ---
  // The modeled value is the simulated base address of a probe allocation
  // after the churn — deterministic whether or not the host-side block
  // pool (fast path) is active.
  {
    exec::Device dev(env.hw());
    const uint64_t bytes = 1 << 20;
    const uint64_t cycles = 256;
    for (uint64_t i = 0; i < cycles; ++i) {
      auto b = dev.allocator().AllocateCpu(bytes);
      CHECK_OK(b.status());
      dev.allocator().Free(*b);
    }
    auto probe = dev.allocator().AllocateCpu(bytes);
    CHECK_OK(probe.status());
    bench::Measurement meas;
    meas.AddRun(0.0, static_cast<double>(probe->base_addr()));
    env.reporter().Add({.series = "alloc-cycle",
                        .axis = "bytes",
                        .x = static_cast<double>(bytes),
                        .has_x = true,
                        .unit = "probe_base_addr",
                        .m = meas});
    dev.allocator().Free(*probe);
    double ns = HostNsPerOp(reps, cycles, [&] {
      for (uint64_t i = 0; i < cycles; ++i) {
        auto b = dev.allocator().AllocateCpu(bytes);
        Sink(b->base_addr());
        dev.allocator().Free(*b);
      }
    });
    host.AddRow(
        {"alloc-cycle", std::to_string(bytes), util::FormatDouble(ns, 1)});
  }

  // --- Sanitizer scratchpad shadow: store/load/sync round-trips ---
  {
    const uint64_t cap = env.hw().gpu.scratchpad_bytes;
    const uint64_t slots = cap / 16;
    const uint64_t rounds = 64;
    sanitizer::DeviceSanitizer san;
    uint64_t violations = 0;
    {
      sanitizer::ScratchpadShadow shadow(&san, cap, cap);
      for (uint64_t r = 0; r < rounds; ++r) {
        for (uint64_t s = 0; s < slots; ++s) {
          shadow.Store(s * 16, 16, /*warp=*/static_cast<uint32_t>(s % 32));
        }
        shadow.Load(0, cap, /*warp=*/0);
        shadow.SyncRange(0, cap);
      }
      violations = san.TakeViolations().size();
    }
    bench::Measurement meas;
    meas.AddRun(0.0, static_cast<double>(violations));
    env.reporter().Add({.series = "sanitizer-shadow",
                        .axis = "ops",
                        .x = static_cast<double>(slots * rounds),
                        .has_x = true,
                        .unit = "violations",
                        .m = meas});
    double ns = HostNsPerOp(reps, slots * rounds, [&] {
      sanitizer::DeviceSanitizer s2;
      sanitizer::ScratchpadShadow shadow(&s2, cap, cap);
      for (uint64_t r = 0; r < rounds; ++r) {
        for (uint64_t s = 0; s < slots; ++s) {
          shadow.Store(s * 16, 16, static_cast<uint32_t>(s % 32));
        }
        shadow.Load(0, cap, 0);
        shadow.SyncRange(0, cap);
      }
      Sink(s2.TakeViolations().size());
    });
    host.AddRow({"sanitizer-shadow", std::to_string(slots * rounds),
                 util::FormatDouble(ns, 1)});
  }

  env.Emit(host, "Host-side cost of simulator primitives (ns/op; best of "
                 "--runs; stdout only, never in the JSON report)");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
