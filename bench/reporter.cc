#include "bench/reporter.h"

#include <cstdio>

#include "util/json.h"

namespace triton::bench {
namespace {

/// Serializes a RunningStat as {count, mean, min, max}.
void WriteStat(util::JsonWriter& w, const util::RunningStat& stat) {
  w.BeginObject();
  w.Key("count");
  w.Uint(stat.count());
  w.Key("mean");
  w.Double(stat.mean());
  w.Key("min");
  w.Double(stat.min());
  w.Key("max");
  w.Double(stat.max());
  w.EndObject();
}

/// Serializes all PerfCounters fields in declaration order.
void WriteCounters(util::JsonWriter& w, const sim::PerfCounters& c) {
  w.BeginObject();
  w.Key("gpu_mem_read");
  w.Uint(c.gpu_mem_read);
  w.Key("gpu_mem_write");
  w.Uint(c.gpu_mem_write);
  w.Key("gpu_mem_random_write");
  w.Uint(c.gpu_mem_random_write);
  w.Key("link_read_payload");
  w.Uint(c.link_read_payload);
  w.Key("link_read_physical");
  w.Uint(c.link_read_physical);
  w.Key("link_write_payload");
  w.Uint(c.link_write_payload);
  w.Key("link_write_physical");
  w.Uint(c.link_write_physical);
  w.Key("link_read_txns");
  w.Uint(c.link_read_txns);
  w.Key("link_write_txns");
  w.Uint(c.link_write_txns);
  w.Key("cpu_mem_read");
  w.Uint(c.cpu_mem_read);
  w.Key("cpu_mem_write");
  w.Uint(c.cpu_mem_write);
  w.Key("gpu_tlb_lookups");
  w.Uint(c.gpu_tlb_lookups);
  w.Key("gpu_tlb_misses");
  w.Uint(c.gpu_tlb_misses);
  w.Key("l3_hits");
  w.Uint(c.l3_hits);
  w.Key("iommu_requests");
  w.Uint(c.iommu_requests);
  w.Key("iommu_walks");
  w.Uint(c.iommu_walks);
  w.Key("issue_slots");
  w.Uint(c.issue_slots);
  w.Key("tuples");
  w.Uint(c.tuples);
  w.EndObject();
}

}  // namespace

void Reporter::Configure(std::string figure_id, std::string figure_name,
                         std::string title, std::string machine,
                         int64_t scale, int64_t runs, bool quick) {
  figure_id_ = std::move(figure_id);
  figure_name_ = std::move(figure_name);
  title_ = std::move(title);
  machine_ = std::move(machine);
  scale_ = scale;
  runs_ = runs;
  quick_ = quick;
}

std::string Reporter::ToJson() const {
  util::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(1);
  w.Key("figure");
  w.String(figure_id_);
  w.Key("name");
  w.String(figure_name_);
  w.Key("title");
  w.String(title_);
  w.Key("machine");
  w.String(machine_);
  w.Key("scale");
  w.Int(scale_);
  w.Key("runs");
  w.Int(runs_);
  w.Key("quick");
  w.Bool(quick_);
  w.Key("points");
  w.BeginArray();
  for (const Point& p : points_) {
    w.BeginObject();
    w.Key("series");
    w.String(p.series);
    if (!p.axis.empty()) {
      w.Key("axis");
      w.String(p.axis);
    }
    if (p.has_x) {
      w.Key("x");
      w.Double(p.x);
    }
    if (!p.label.empty()) {
      w.Key("label");
      w.String(p.label);
    }
    if (!p.unit.empty()) {
      w.Key("unit");
      w.String(p.unit);
    }
    if (p.m.value.count() > 0) {
      w.Key("value");
      WriteStat(w, p.m.value);
    }
    if (p.m.seconds.count() > 0) {
      w.Key("seconds");
      WriteStat(w, p.m.seconds);
    }
    if (!p.extra.empty()) {
      w.Key("extra");
      w.BeginObject();
      for (const auto& [name, value] : p.extra) {
        w.Key(name);
        w.Double(value);
      }
      w.EndObject();
    }
    if (p.m.has_counters) {
      w.Key("counters");
      WriteCounters(w, p.m.counters);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

util::Status Reporter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::InvalidArgument("cannot open " + path +
                                         " for writing");
  }
  const std::string doc = ToJson();
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok) {
    return util::Status::Internal("short write to " + path);
  }
  return util::Status::OK();
}

}  // namespace triton::bench
