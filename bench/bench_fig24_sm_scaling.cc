// Figure 24: compute power required for high throughput — the Triton join's
// throughput as a fraction of its maximum while scaling the number of
// streaming multiprocessors, plus the phase breakdown explaining the curve.
//
// Expected shape (paper): ~28 SMs reach 75% of peak for the smaller
// workloads and ~55 SMs reach 95% for all of them. The first partitioning
// pass becomes interconnect bound above ~25 SMs and stops scaling; the
// second pass remains compute bound with diminishing returns. Conclusion:
// the Triton join is interconnect bound — a faster interconnect would help,
// a faster GPU would not.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "fig24", "Figure 24",
                      "Throughput vs streaming multiprocessors");
  std::vector<int64_t> sms_sweep =
      env.quick() ? std::vector<int64_t>{5, 25, 55, 80}
                  : std::vector<int64_t>{5, 10, 20, 25, 40, 55, 80};

  util::Table table({"SMs", "128 M %", "512 M %", "2048 M %"});
  util::Table breakdown({"SMs", "Part1 bound", "Part2 bound",
                         "Part1 ms", "Part2 ms", "Join ms"});

  // Points are emitted after the sweep: the reported value is % of the
  // per-workload peak, which needs the full sweep first.
  struct Cell {
    double elapsed = 0;
    double tp = 0;
    sim::PerfCounters counters;
    std::string label;
    std::vector<std::pair<std::string, double>> extra;
  };
  std::vector<std::vector<double>> tp(3);
  std::vector<std::vector<Cell>> cells(3);
  for (int64_t sms : sms_sweep) {
    std::vector<double> row;
    int wi = 0;
    for (double m : {128.0, 512.0, 2048.0}) {
      uint64_t n = env.Tuples(m);
      exec::Device dev(env.hw());
      data::WorkloadConfig cfg;
      cfg.r_tuples = n;
      cfg.s_tuples = n;
      auto wl = data::GenerateWorkload(dev.allocator(), cfg);
      CHECK_OK(wl.status());
      core::TritonJoin join({.result_mode = join::ResultMode::kAggregate,
                             .sms = static_cast<uint32_t>(sms)});
      auto run = join.Run(dev, wl->r, wl->s);
      CHECK_OK(run.status());
      tp[wi].push_back(run->Throughput(n, n));
      Cell cell;
      cell.elapsed = run->elapsed;
      cell.tp = run->Throughput(n, n);
      cell.counters = run->totals;

      // Breakdown for the 512 M workload, as in the paper.
      if (m == 512.0) {
        const char* p1_bound = "-";
        const char* p2_bound = "-";
        for (const auto& rec : run->phases) {
          if (rec.name.find("partition1") != std::string::npos) {
            p1_bound = rec.time.Bottleneck();
          }
          if (rec.name.find("partition2") != std::string::npos) {
            p2_bound = rec.time.Bottleneck();
          }
        }
        cell.label = std::string(p1_bound) + "/" + p2_bound;
        cell.extra = {{"part1_ms", run->PhaseTime("partition1") * 1e3},
                      {"part2_ms", run->PhaseTime("partition2") * 1e3},
                      {"join_ms", run->PhaseTime("join") * 1e3}};
        breakdown.AddRow(
            {std::to_string(sms), p1_bound, p2_bound,
             util::FormatDouble(run->PhaseTime("partition1") * 1e3, 2),
             util::FormatDouble(run->PhaseTime("partition2") * 1e3, 2),
             util::FormatDouble(run->PhaseTime("join") * 1e3, 2)});
      }
      cells[wi].push_back(std::move(cell));
      ++wi;
    }
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");

  static const char* kWorkloads[] = {"128M", "512M", "2048M"};
  for (size_t i = 0; i < sms_sweep.size(); ++i) {
    std::vector<std::string> row = {std::to_string(sms_sweep[i])};
    for (int w = 0; w < 3; ++w) {
      double peak = *std::max_element(tp[w].begin(), tp[w].end());
      row.push_back(util::FormatDouble(tp[w][i] / peak * 100.0, 1));
      const Cell& cell = cells[w][i];
      bench::Measurement meas;
      meas.AddRun(cell.elapsed, cell.tp / peak * 100.0, cell.counters);
      env.reporter().Add({.series = kWorkloads[w],
                          .axis = "sms",
                          .x = static_cast<double>(sms_sweep[i]),
                          .has_x = true,
                          .label = cell.label,
                          .unit = "pct_of_peak",
                          .m = meas,
                          .extra = cell.extra});
    }
    table.AddRow(row);
  }
  env.Emit(table, "(a) Throughput as % of peak vs SM count");
  env.Emit(breakdown, "(b) Phase behaviour at 512 M tuples");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
