// Figure 18: profiling the state-of-the-art partitioning algorithms with
// hardware counters over a fanout sweep (4..2048), on ~60 GiB of data read
// from and written to CPU memory:
//   (a) partitioning throughput        (b) tuples per write transaction
//   (c) physical transfer volume       (d) IOMMU requests per tuple
//   (e) issue-slot (compute) load      (f) dominant stall resource
//
// Expected shape (paper): Shared and Hierarchical coalesce writes perfectly
// (8 tuples per 128-byte transaction) while Linear coalesces only
// opportunistically and Standard barely at all; Shared's TLB misses explode
// past fanout 64 while Hierarchical's large flushes keep the miss rate
// orders of magnitude lower, sustaining ~38 GiB/s even at fanout 2048.

#include <cstdio>

#include "bench/bench_common.h"
#include "partition/hierarchical.h"
#include "util/bits.h"
#include "partition/linear.h"
#include "partition/prefix_sum.h"
#include "partition/shared.h"
#include "partition/standard.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "fig18", "Figure 18",
                      "Partitioning algorithm profiling vs fanout",
                      {"mtuples", "fanouts"});
  // ~60 GiB at paper scale (~3840 M 16-byte tuples): roughly twice the
  // 32 GiB translation reach, as in the paper.
  uint64_t n = env.Tuples(env.flags().GetDouble("mtuples", 3840));

  partition::StandardPartitioner standard;
  partition::LinearPartitioner linear;
  partition::SharedPartitioner shared;
  partition::HierarchicalPartitioner hierarchical;
  struct Algo {
    const char* name;
    partition::GpuPartitioner* p;
  } algos[] = {{"Standard", &standard},
               {"Linear", &linear},
               {"Shared", &shared},
               {"Hierarchical", &hierarchical}};

  std::vector<int64_t> fanouts =
      env.quick() ? std::vector<int64_t>{4, 64, 256, 2048}
                  : env.flags().GetIntList(
                        "fanouts", {4, 16, 64, 128, 256, 1024, 2048});

  util::Table table({"algorithm", "fanout", "GiB/s", "tuples/txn",
                     "transfer GiB (2x base)", "IOMMU req/tuple",
                     "issue slot %", "stall"});

  for (const Algo& algo : algos) {
    for (int64_t fanout : fanouts) {
      exec::Device dev(env.hw());
      data::WorkloadConfig cfg;
      cfg.r_tuples = n;
      cfg.s_tuples = 1024;
      auto wl = data::GenerateWorkload(dev.allocator(), cfg);
      CHECK_OK(wl.status());
      partition::ColumnInput input = partition::ColumnInput::Of(wl->r);
      partition::RadixConfig radix{0, util::FloorLog2(fanout)};
      // Hierarchical trades occupancy for L2 buffer capacity at high
      // fanouts (a CUDA launch is occupancy-limited by per-block memory).
      uint32_t blocks =
          algo.p == &hierarchical
              ? partition::HierarchicalRecommendedBlocks(
                    {}, env.hw(), dev.allocator().gpu_free(),
                    radix.fanout())
              : env.hw().gpu.num_sms;
      partition::PartitionLayout layout =
          CpuPrefixSum(dev, input, radix, blocks);
      auto out = dev.allocator().AllocateCpu(layout.padded_tuples() *
                                             sizeof(partition::Tuple));
      CHECK_OK(out.status());
      partition::PartitionRun run =
          algo.p->PartitionColumns(dev, input, layout, *out, {});

      const auto& c = run.record.counters;
      double in_bytes = static_cast<double>(n) * 16.0;
      double gibs = in_bytes / run.Elapsed() / util::kGiB;
      // Physical volume in paper-scale GiB; compare against 2x the base
      // relation (read-once + write-once ideal), as in Figure 18(c).
      double transfer = static_cast<double>(c.LinkPhysicalTotal()) *
                        static_cast<double>(env.scale()) / util::kGiB;
      double issue = run.record.time.compute / run.Elapsed() * 100.0;
      char req[32];
      std::snprintf(req, sizeof(req), "%.2e", c.IommuRequestsPerTuple());
      bench::Measurement meas;
      meas.AddRun(run.Elapsed(), gibs, c);
      env.reporter().Add(
          {.series = algo.name,
           .axis = "fanout",
           .x = static_cast<double>(fanout),
           .has_x = true,
           .label = run.record.time.Bottleneck(),
           .unit = "gib_per_s",
           .m = meas,
           .extra = {{"tuples_per_write_txn", run.TuplesPerWriteTxn()},
                     {"transfer_gib", transfer},
                     {"iommu_req_per_tuple", c.IommuRequestsPerTuple()},
                     {"issue_slot_pct", issue}}});
      table.AddRow({algo.name, std::to_string(fanout),
                    util::FormatDouble(gibs, 1),
                    util::FormatDouble(run.TuplesPerWriteTxn(), 2),
                    util::FormatDouble(transfer, 1), req,
                    util::FormatDouble(issue, 1),
                    run.record.time.Bottleneck()});
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  env.Emit(table, "Partitioning profile (60 GiB-equivalent input)");
  std::printf("note: 'transfer GiB' is scaled back to paper units; the "
              "read+write ideal is %.1f GiB\n",
              2.0 * static_cast<double>(n) * 16.0 *
                  static_cast<double>(env.scale()) / util::kGiB);
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
