// Extension experiment (beyond the paper): a concurrent join service.
//
// The paper's join owns the whole GPU for one query. This bench runs the
// serve/ layer instead: N tenants share one simulated machine through the
// JoinService's admission queue, memory arbiter and deterministic
// scheduler. Total work is held fixed while the tenant count grows, so any
// throughput drop is pure service overhead, not extra data.
//
// Series:
//  - probes-batched:   each tenant issues small probes against the shared
//                      resident build; the service coalesces them into one
//                      launch (up to probe_batch_limit), amortizing the
//                      per-dispatch overhead.
//  - probes-unbatched: same trace with batching disabled — every probe
//                      pays its own dispatch overhead.
//  - joins:            one full join per tenant on an arbiter-carved
//                      device (capacity contention, no batching).
//
// Expected shape: unbatched probe throughput decays as the fixed work is
// split into ever more, ever smaller requests; batching keeps aggregate
// throughput roughly flat. The joins series degrades mildly once carves
// shrink (max_inflight > 1) and then stays level.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "serve/join_service.h"

namespace triton {
namespace {

/// Probe requests each tenant submits; fixed so the request count (and the
/// dispatch overhead the unbatched series pays) scales with the tenants.
constexpr uint32_t kProbesPerTenant = 8;

struct ServeRun {
  double busy_seconds = 0.0;
  uint64_t dispatches = 0;
  uint64_t matches = 0;
  uint64_t checksum = 0;
  sim::PerfCounters totals;
};

/// Runs `trace` through a fresh service and folds the outcome stream.
ServeRun RunTrace(const sim::HwSpec& hw, const serve::ServiceConfig& config,
                  const std::vector<serve::Request>& trace) {
  serve::JoinService service(hw, config);
  CHECK_OK(service.init_status());
  for (const serve::Request& req : trace) {
    CHECK_OK(service.Submit(req));
  }
  CHECK_OK(service.Drain());
  ServeRun run;
  run.busy_seconds = service.busy_seconds();
  run.dispatches = service.dispatches();
  for (const serve::RequestOutcome& out : service.outcomes()) {
    CHECK_OK(out.status);
    run.matches += out.matches;
    run.checksum += out.checksum;
    run.totals.Merge(out.counters);
  }
  return run;
}

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "ext_serve", "Extension: join service",
                      "Multi-tenant throughput (fixed total work)",
                      {"mtuples", "build_mtuples"});
  const uint64_t total = env.Tuples(env.flags().GetDouble("mtuples", 256));
  const uint64_t build_n =
      env.Tuples(env.flags().GetDouble("build_mtuples", 32));

  std::vector<uint32_t> tenant_counts = {1, 2, 4, 8};
  if (!env.quick()) {
    tenant_counts.push_back(16);
    tenant_counts.push_back(32);
  }

  util::Table table({"tenants", "batched G/s", "unbatched G/s", "speedup",
                     "joins G/s"});
  for (uint32_t tenants : tenant_counts) {
    // -- Probe series: tenants*kProbesPerTenant requests over `total`
    // tuples, submitted round-robin across tenants.
    const uint32_t requests = tenants * kProbesPerTenant;
    const uint64_t per_request = total / requests;
    std::vector<serve::Request> probe_trace;
    for (uint32_t q = 0; q < kProbesPerTenant; ++q) {
      for (uint32_t t = 0; t < tenants; ++t) {
        serve::Request req;
        req.tenant = t;
        req.kind = serve::RequestKind::kProbe;
        req.s_tuples = per_request;
        req.seed = 1000 + 31ull * t + q;
        probe_trace.push_back(req);
      }
    }
    const uint64_t probe_total = per_request * requests;

    serve::ServiceConfig batched;
    batched.queue_capacity = requests;
    batched.max_inflight = 8;
    batched.probe_batch_limit = 8;
    batched.scheduler_seed = 42;
    batched.shared_build_tuples = build_n;
    serve::ServiceConfig unbatched = batched;
    unbatched.probe_batch_limit = 1;

    ServeRun a = RunTrace(env.hw(), batched, probe_trace);
    ServeRun b = RunTrace(env.hw(), unbatched, probe_trace);
    // Probe keys are drawn from the build's key domain: every probe tuple
    // matches, and batching must not change any functional result.
    CHECK_EQ(a.matches, probe_total);
    CHECK_EQ(b.matches, probe_total);
    CHECK_EQ(a.checksum, b.checksum);

    // -- Join series: one full join per tenant over the same total work.
    std::vector<serve::Request> join_trace;
    const uint64_t join_side = total / (2 * tenants);
    for (uint32_t t = 0; t < tenants; ++t) {
      serve::Request req;
      req.tenant = t;
      req.kind = serve::RequestKind::kJoin;
      req.r_tuples = join_side;
      req.s_tuples = join_side;
      req.seed = 2000 + 7ull * t;
      join_trace.push_back(req);
    }
    serve::ServiceConfig joins;
    joins.queue_capacity = tenants;
    joins.max_inflight = tenants < 4 ? tenants : 4;
    joins.scheduler_seed = 42;
    ServeRun c = RunTrace(env.hw(), joins, join_trace);
    const uint64_t join_total = 2 * join_side * tenants;

    const double tp_a = static_cast<double>(probe_total) / a.busy_seconds;
    const double tp_b = static_cast<double>(probe_total) / b.busy_seconds;
    const double tp_c = static_cast<double>(join_total) / c.busy_seconds;

    bench::Measurement am;
    am.AddRun(a.busy_seconds, tp_a / 1e9, a.totals);
    env.reporter().Add({.series = "probes-batched",
                        .axis = "tenants",
                        .x = static_cast<double>(tenants),
                        .has_x = true,
                        .unit = "gtuples_per_s",
                        .m = am,
                        .extra = {{"dispatches",
                                   static_cast<double>(a.dispatches)}}});
    bench::Measurement bm;
    bm.AddRun(b.busy_seconds, tp_b / 1e9, b.totals);
    env.reporter().Add({.series = "probes-unbatched",
                        .axis = "tenants",
                        .x = static_cast<double>(tenants),
                        .has_x = true,
                        .unit = "gtuples_per_s",
                        .m = bm,
                        .extra = {{"dispatches",
                                   static_cast<double>(b.dispatches)}}});
    bench::Measurement cm;
    cm.AddRun(c.busy_seconds, tp_c / 1e9, c.totals);
    env.reporter().Add({.series = "joins",
                        .axis = "tenants",
                        .x = static_cast<double>(tenants),
                        .has_x = true,
                        .unit = "gtuples_per_s",
                        .m = cm,
                        .extra = {{"dispatches",
                                   static_cast<double>(c.dispatches)}}});
    table.AddRow({std::to_string(tenants), bench::GTuples(tp_a),
                  bench::GTuples(tp_b), util::FormatDouble(tp_a / tp_b, 2),
                  bench::GTuples(tp_c)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  env.Emit(table, "Service throughput vs tenant count (fixed total work)");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
