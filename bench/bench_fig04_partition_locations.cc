// Figure 4: data partitioning throughput of the CPU and the GPU for
// different destination locations — (a) partitions written to GPU memory,
// (b) partitions written back to CPU memory. 512-way partitioning, base
// relation read from CPU memory in both cases.
//
// Expected shape (paper): the GPU is faster in both cases (~63 GiB/s to GPU
// memory, ~55 GiB/s to CPU memory) while the CPU sits near 29 GiB/s and
// cannot saturate the interconnect even when writing straight to the GPU —
// the motivation for the GPU-partitioned strategy.

#include <cstdio>

#include "bench/bench_common.h"
#include "partition/cpu_swwc.h"
#include "partition/hierarchical.h"
#include "partition/prefix_sum.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "fig04", "Figure 4",
                      "Partitioning throughput by processor and destination",
                      {"mtuples", "bits"});
  const uint64_t n = env.Tuples(env.flags().GetDouble("mtuples", 960));
  const uint32_t bits = static_cast<uint32_t>(env.flags().GetInt("bits", 9));

  util::Table table({"partitioner", "destination", "GiB/s"});

  auto run_case = [&](bool gpu_partitioner, bool gpu_dest) {
    const char* series = gpu_partitioner ? "GPU (Hierarchical)" : "CPU (SWWC)";
    const char* dest = gpu_dest ? "GPU memory" : "CPU memory";
    bench::Measurement meas;
    for (int64_t rep = 0; rep < env.runs(); ++rep) {
      exec::Device dev(env.hw());
      data::WorkloadConfig cfg;
      cfg.r_tuples = n;
      cfg.s_tuples = 1024;
      cfg.seed = 3 + static_cast<uint64_t>(rep);
      auto wl = data::GenerateWorkload(dev.allocator(), cfg);
      CHECK_OK(wl.status());
      partition::ColumnInput input = partition::ColumnInput::Of(wl->r);
      partition::RadixConfig radix{0, bits};
      uint32_t blocks = env.hw().gpu.num_sms;
      partition::PartitionLayout layout =
          CpuPrefixSum(dev, input, radix, blocks);
      uint64_t bytes = layout.padded_tuples() * sizeof(partition::Tuple);
      auto out = gpu_dest ? dev.allocator().AllocateGpu(bytes)
                          : dev.allocator().AllocateCpu(bytes);
      CHECK_OK(out.status());
      partition::PartitionRun run;
      if (gpu_partitioner) {
        partition::HierarchicalPartitioner p;
        run = p.PartitionColumns(dev, input, layout, *out, {});
      } else {
        partition::CpuSwwcPartitioner p;
        run = p.PartitionColumns(dev, input, layout, *out, {});
      }
      double in_bytes = static_cast<double>(n) * sizeof(partition::Tuple);
      meas.AddRun(run.Elapsed(),
                  in_bytes / run.Elapsed() / static_cast<double>(util::kGiB),
                  run.record.counters);
    }
    env.reporter().Add({.series = series,
                        .axis = "destination",
                        .label = dest,
                        .unit = "gib_per_s",
                        .m = meas});
    table.AddRow({series, dest, util::FormatDouble(meas.value.mean(), 1)});
  };

  run_case(true, true);
  run_case(true, false);
  run_case(false, true);
  run_case(false, false);

  env.Emit(table, "Partitioning throughput, 512-way, input in CPU memory");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
