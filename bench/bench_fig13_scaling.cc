// Figure 13 (and the simplified Figure 1): end-to-end join throughput while
// scaling the build & probe relations from 128 M to 2048 M tuples each.
//
// Series: CPU radix join on POWER9 and on a Xeon Gold 6126 (bucket chaining
// + perfect hashing), the GPU no-partitioning join (perfect hashing +
// linear probing), and the Triton join (bucket chaining + perfect hashing).
//
// Expected shape (paper): the no-partitioning join wins while its hash
// table fits GPU memory (<= ~640 M tuples), then collapses — catastrophically
// with linear probing (TLB range). The Triton join stays within 85% of the
// in-core GPU baseline and degrades gracefully, beating both CPUs by
// 1.9-2.6x at 2048 M tuples.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "join/cpu_radix_join.h"
#include "join/no_partitioning_join.h"

namespace triton {
namespace {

using bench::BenchEnv;

int Main(int argc, char** argv) {
  BenchEnv env(argc, argv, "fig13", "Figure 13",
               "Scaling the build-side relation (|R| = |S|)");
  sim::CpuSpec xeon = sim::HwSpec::XeonGold6126();

  util::Table table({"MTuples/rel", "CPU-P9-chain", "CPU-P9-perfect",
                     "CPU-Xeon-chain", "NPJ-perfect", "NPJ-linear",
                     "Triton-chain", "Triton-perfect"});

  for (double m : env.SizeSweep()) {
    uint64_t n = env.Tuples(m);
    std::vector<std::string> row = {util::FormatDouble(m, 0)};

    auto throughput = [&](const char* series, auto&& make_join) {
      bench::Measurement meas;
      for (int64_t rep = 0; rep < env.runs(); ++rep) {
        exec::Device dev(env.hw());
        data::WorkloadConfig cfg;
        cfg.r_tuples = n;
        cfg.s_tuples = n;
        cfg.seed = 42 + static_cast<uint64_t>(rep);
        auto wl = data::GenerateWorkload(dev.allocator(), cfg);
        CHECK_OK(wl.status());
        auto run = make_join().Run(dev, wl->r, wl->s);
        CHECK_OK(run.status());
        CHECK_EQ(run->matches, n);
        meas.AddRun(run->elapsed, run->Throughput(n, n) / 1e9, run->totals);
      }
      env.reporter().Add({.series = series,
                          .axis = "mtuples_per_relation",
                          .x = m,
                          .has_x = true,
                          .unit = "gtuples_per_s",
                          .m = meas});
      return util::FormatDouble(meas.value.mean(), 3);
    };

    row.push_back(throughput("CPU-P9-chain", [&] {
      return join::CpuRadixJoin(
          {.scheme = join::HashScheme::kBucketChaining});
    }));
    row.push_back(throughput("CPU-P9-perfect", [&] {
      return join::CpuRadixJoin({.scheme = join::HashScheme::kPerfect});
    }));
    row.push_back(throughput("CPU-Xeon-chain", [&] {
      return join::CpuRadixJoin(
          {.scheme = join::HashScheme::kBucketChaining, .cpu = &xeon});
    }));
    row.push_back(throughput("NPJ-perfect", [&] {
      return join::NoPartitioningJoin({.scheme = join::HashScheme::kPerfect});
    }));
    row.push_back(throughput("NPJ-linear", [&] {
      return join::NoPartitioningJoin(
          {.scheme = join::HashScheme::kLinearProbing});
    }));
    row.push_back(throughput("Triton-chain", [&] {
      return core::TritonJoin({.scheme = join::HashScheme::kBucketChaining});
    }));
    row.push_back(throughput("Triton-perfect", [&] {
      return core::TritonJoin({.scheme = join::HashScheme::kPerfect});
    }));
    table.AddRow(row);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  env.Emit(table, "Join throughput (G Tuples/s) vs relation size");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
