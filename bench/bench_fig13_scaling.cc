// Figure 13 (and the simplified Figure 1): end-to-end join throughput while
// scaling the build & probe relations from 128 M to 2048 M tuples each.
//
// Series: CPU radix join on POWER9 and on a Xeon Gold 6126 (bucket chaining
// + perfect hashing), the GPU no-partitioning join (perfect hashing +
// linear probing), and the Triton join (bucket chaining + perfect hashing).
//
// Expected shape (paper): the no-partitioning join wins while its hash
// table fits GPU memory (<= ~640 M tuples), then collapses — catastrophically
// with linear probing (TLB range). The Triton join stays within 85% of the
// in-core GPU baseline and degrades gracefully, beating both CPUs by
// 1.9-2.6x at 2048 M tuples.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "join/cpu_radix_join.h"
#include "join/no_partitioning_join.h"

namespace triton {
namespace {

using bench::BenchEnv;

/// One join algorithm under test: a name plus a factory-and-run closure.
struct Series {
  const char* name;
  std::function<util::StatusOr<join::JoinRun>(
      exec::Device&, const data::Relation&, const data::Relation&)>
      run;
};

int Main(int argc, char** argv) {
  BenchEnv env(argc, argv, "fig13", "Figure 13",
               "Scaling the build-side relation (|R| = |S|)");
  sim::CpuSpec xeon = sim::HwSpec::XeonGold6126();

  const std::vector<Series> series = {
      {"CPU-P9-chain",
       [](exec::Device& dev, const data::Relation& r, const data::Relation& s) {
         return join::CpuRadixJoin({.scheme = join::HashScheme::kBucketChaining})
             .Run(dev, r, s);
       }},
      {"CPU-P9-perfect",
       [](exec::Device& dev, const data::Relation& r, const data::Relation& s) {
         return join::CpuRadixJoin({.scheme = join::HashScheme::kPerfect})
             .Run(dev, r, s);
       }},
      {"CPU-Xeon-chain",
       [&xeon](exec::Device& dev, const data::Relation& r,
               const data::Relation& s) {
         return join::CpuRadixJoin(
                    {.scheme = join::HashScheme::kBucketChaining, .cpu = &xeon})
             .Run(dev, r, s);
       }},
      {"NPJ-perfect",
       [](exec::Device& dev, const data::Relation& r, const data::Relation& s) {
         return join::NoPartitioningJoin({.scheme = join::HashScheme::kPerfect})
             .Run(dev, r, s);
       }},
      {"NPJ-linear",
       [](exec::Device& dev, const data::Relation& r, const data::Relation& s) {
         return join::NoPartitioningJoin(
                    {.scheme = join::HashScheme::kLinearProbing})
             .Run(dev, r, s);
       }},
      {"Triton-chain",
       [](exec::Device& dev, const data::Relation& r, const data::Relation& s) {
         return core::TritonJoin({.scheme = join::HashScheme::kBucketChaining})
             .Run(dev, r, s);
       }},
      {"Triton-perfect",
       [](exec::Device& dev, const data::Relation& r, const data::Relation& s) {
         return core::TritonJoin({.scheme = join::HashScheme::kPerfect})
             .Run(dev, r, s);
       }},
  };

  // Every (size, series) measurement is a self-contained cell — fresh
  // Device, freshly generated workload — so cells run concurrently under
  // --jobs. Results land in sweep-order slots; reporting below stays in
  // the exact order (and with the exact bytes) of the sequential sweep.
  const std::vector<double> sweep = env.SizeSweep();
  std::vector<bench::Measurement> cell_meas(sweep.size() * series.size());
  std::vector<std::function<void()>> cells;
  cells.reserve(cell_meas.size());
  for (size_t si = 0; si < sweep.size(); ++si) {
    const uint64_t n = env.Tuples(sweep[si]);
    for (size_t a = 0; a < series.size(); ++a) {
      bench::Measurement* meas = &cell_meas[si * series.size() + a];
      const Series* alg = &series[a];
      cells.push_back([meas, alg, n, &env] {
        for (int64_t rep = 0; rep < env.runs(); ++rep) {
          exec::Device dev(env.hw());
          data::WorkloadConfig cfg;
          cfg.r_tuples = n;
          cfg.s_tuples = n;
          cfg.seed = 42 + static_cast<uint64_t>(rep);
          auto wl = data::GenerateWorkload(dev.allocator(), cfg);
          CHECK_OK(wl.status());
          auto run = alg->run(dev, wl->r, wl->s);
          CHECK_OK(run.status());
          CHECK_EQ(run->matches, n);
          meas->AddRun(run->elapsed, run->Throughput(n, n) / 1e9,
                       run->totals);
        }
      });
    }
  }
  bench::RunCells(env.jobs(), cells);

  util::Table table({"MTuples/rel", "CPU-P9-chain", "CPU-P9-perfect",
                     "CPU-Xeon-chain", "NPJ-perfect", "NPJ-linear",
                     "Triton-chain", "Triton-perfect"});
  for (size_t si = 0; si < sweep.size(); ++si) {
    const double m = sweep[si];
    std::vector<std::string> row = {util::FormatDouble(m, 0)};
    for (size_t a = 0; a < series.size(); ++a) {
      const bench::Measurement& meas = cell_meas[si * series.size() + a];
      env.reporter().Add({.series = series[a].name,
                          .axis = "mtuples_per_relation",
                          .x = m,
                          .has_x = true,
                          .unit = "gtuples_per_s",
                          .m = meas});
      row.push_back(util::FormatDouble(meas.value.mean(), 3));
    }
    table.AddRow(row);
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  env.Emit(table, "Join throughput (G Tuples/s) vs relation size");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
