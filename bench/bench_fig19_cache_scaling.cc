// Figure 19: scaling the GPU-memory cache size from 0 to ~15 GiB for the
// no-partitioning join (which caches part of its hash table) and the Triton
// join (which caches part of the partitioned state via the interleaved
// page mapping).
//
// Expected shape (paper): the no-partitioning join gains 4.6-4.8x from a
// fully cached table on the small workloads but nothing at 2048 M (the TLB
// cliff dominates); the Triton join improves smoothly by 1.1-1.4x with no
// sharp cliff — and caching *everything* can be slightly slower than ~80%
// because GPU memory and the interconnect together provide more bandwidth
// than GPU memory alone.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "join/no_partitioning_join.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "fig19", "Figure 19",
                      "Scaling the GPU memory cache size");
  std::vector<double> cache_gib =
      env.quick() ? std::vector<double>{0, 4, 8, 14.9}
                  : std::vector<double>{0, 2, 4, 8, 12, 14.9};

  util::Table npj({"workload", "cache (paper GiB)", "NPJ-perfect G/s",
                   "NPJ-linear G/s"});
  util::Table triton({"workload", "cache (paper GiB)", "Triton G/s",
                      "cached frac"});

  for (double m : {128.0, 512.0, 2048.0}) {
    uint64_t n = env.Tuples(m);
    for (double gib : cache_gib) {
      uint64_t cache = static_cast<uint64_t>(
          gib * static_cast<double>(util::kGiB) /
          static_cast<double>(env.scale()));
      {
        exec::Device dev(env.hw());
        data::WorkloadConfig cfg;
        cfg.r_tuples = n;
        cfg.s_tuples = n;
        auto wl = data::GenerateWorkload(dev.allocator(), cfg);
        CHECK_OK(wl.status());
        join::NoPartitioningJoin perfect(
            {.scheme = join::HashScheme::kPerfect,
             .result_mode = join::ResultMode::kAggregate,
             .cache_bytes = cache});
        join::NoPartitioningJoin linear(
            {.scheme = join::HashScheme::kLinearProbing,
             .result_mode = join::ResultMode::kAggregate,
             .cache_bytes = cache});
        auto p = perfect.Run(dev, wl->r, wl->s);
        auto l = linear.Run(dev, wl->r, wl->s);
        CHECK_OK(p.status());
        CHECK_OK(l.status());
        const std::string workload = util::FormatDouble(m, 0) + "M";
        bench::Measurement pm;
        pm.AddRun(p->elapsed, p->Throughput(n, n) / 1e9, p->totals);
        env.reporter().Add({.series = "NPJ-perfect/" + workload,
                            .axis = "cache_gib",
                            .x = gib,
                            .has_x = true,
                            .unit = "gtuples_per_s",
                            .m = pm});
        bench::Measurement lm;
        lm.AddRun(l->elapsed, l->Throughput(n, n) / 1e9, l->totals);
        env.reporter().Add({.series = "NPJ-linear/" + workload,
                            .axis = "cache_gib",
                            .x = gib,
                            .has_x = true,
                            .unit = "gtuples_per_s",
                            .m = lm});
        npj.AddRow({util::FormatDouble(m, 0) + " M",
                    util::FormatDouble(gib, 1),
                    bench::GTuples(p->Throughput(n, n)),
                    bench::GTuples(l->Throughput(n, n))});
      }
      {
        exec::Device dev(env.hw());
        data::WorkloadConfig cfg;
        cfg.r_tuples = n;
        cfg.s_tuples = n;
        auto wl = data::GenerateWorkload(dev.allocator(), cfg);
        CHECK_OK(wl.status());
        core::TritonJoin join({.result_mode = join::ResultMode::kAggregate,
                               .cache_bytes = cache});
        auto run = join.Run(dev, wl->r, wl->s);
        CHECK_OK(run.status());
        bench::Measurement tm;
        tm.AddRun(run->elapsed, run->Throughput(n, n) / 1e9, run->totals);
        env.reporter().Add(
            {.series = "Triton/" + util::FormatDouble(m, 0) + "M",
             .axis = "cache_gib",
             .x = gib,
             .has_x = true,
             .unit = "gtuples_per_s",
             .m = tm,
             .extra = {{"cached_fraction", join.stats().cached_fraction}}});
        triton.AddRow({util::FormatDouble(m, 0) + " M",
                       util::FormatDouble(gib, 1),
                       bench::GTuples(run->Throughput(n, n)),
                       util::FormatDouble(join.stats().cached_fraction, 2)});
      }
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  env.Emit(npj, "(a) GPU no-partitioning join vs hash-table cache size");
  env.Emit(triton, "(b) GPU Triton join vs state cache size");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
