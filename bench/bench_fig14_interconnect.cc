// Figure 14: interconnect usage of the join algorithms — (a) interconnect
// utilization (achieved bandwidth / theoretical 75 GB/s), (b) GPU TLB
// misses counted as IOMMU translation requests per tuple.
//
// Expected shape (paper): the Triton join's utilization *rises* with the
// data size (less caching, more spilled traffic), the no-partitioning
// join's *drops* once its table goes out of core (25% at 2048 M with
// perfect hashing, 0.4% with linear probing), and linear probing issues
// orders of magnitude more IOMMU requests per tuple while the Triton join
// stays near zero (one request per ~1e5 tuples).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "join/no_partitioning_join.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "fig14", "Figure 14",
                      "Interconnect utilization and IOMMU requests");
  util::Table table({"workload", "algorithm", "link util %",
                     "IOMMU req/tuple"});

  for (double m : {128.0, 512.0, 2048.0}) {
    uint64_t n = env.Tuples(m);
    auto add = [&](const char* name, auto&& make_join) {
      exec::Device dev(env.hw());
      data::WorkloadConfig cfg;
      cfg.r_tuples = n;
      cfg.s_tuples = n;
      auto wl = data::GenerateWorkload(dev.allocator(), cfg);
      CHECK_OK(wl.status());
      auto run = make_join().Run(dev, wl->r, wl->s);
      CHECK_OK(run.status());
      double util = dev.cost_model().LinkUtilization(run->totals,
                                                     run->elapsed);
      char req[32];
      std::snprintf(req, sizeof(req), "%.2e",
                    run->totals.IommuRequestsPerTuple());
      bench::Measurement meas;
      meas.AddRun(run->elapsed, util * 100.0, run->totals);
      env.reporter().Add(
          {.series = name,
           .axis = "mtuples_per_relation",
           .x = m,
           .has_x = true,
           .unit = "link_util_pct",
           .m = meas,
           .extra = {{"iommu_req_per_tuple",
                      run->totals.IommuRequestsPerTuple()}}});
      table.AddRow({util::FormatDouble(m, 0) + " M", name,
                    util::FormatDouble(util * 100.0, 1), req});
    };

    add("NPJ (perfect)", [&] {
      // The paper profiles with a GPU prefix sum for full GPU coverage.
      return join::NoPartitioningJoin({.scheme = join::HashScheme::kPerfect});
    });
    add("NPJ (linear probing)", [&] {
      return join::NoPartitioningJoin(
          {.scheme = join::HashScheme::kLinearProbing});
    });
    add("Triton (bucket chaining)", [&] {
      return core::TritonJoin({.scheme = join::HashScheme::kBucketChaining,
                               .gpu_prefix_sum = true});
    });
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  env.Emit(table, "Interconnect usage of join algorithms");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
