// Figure 15: time breakdown of the Triton join — per-kernel share of the
// total execution time (a) and a bottleneck attribution per kernel (b),
// profiled with a GPU prefix sum so every phase runs on the GPU.
//
// Expected shape (paper): most time goes to the first partitioning pass
// (~44-47%) and its prefix sum (~19-23%); the first pass and both prefix
// sums are interconnect bound, the second pass is compute bound (it runs in
// GPU memory), and spilling inflates the second prefix sum because it
// copies data into GPU memory.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "fig15", "Figure 15",
                      "Time breakdown of the Triton join");
  static const char* kPhases[] = {"prefix_sum1", "partition1", "prefix_sum2",
                                  "partition2",  "sched",      "join"};

  util::Table share({"workload", "PS 1 %", "Part 1 %", "PS 2 %", "Part 2 %",
                     "Sched %", "Join %"});
  util::Table bound({"workload", "phase", "bottleneck", "link %",
                     "compute %"});

  for (double m : {128.0, 512.0, 2048.0}) {
    uint64_t n = env.Tuples(m);
    exec::Device dev(env.hw());
    data::WorkloadConfig cfg;
    cfg.r_tuples = n;
    cfg.s_tuples = n;
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    CHECK_OK(wl.status());
    core::TritonJoin join({.gpu_prefix_sum = true});
    auto run = join.Run(dev, wl->r, wl->s);
    CHECK_OK(run.status());

    double total = 0.0;
    for (const char* ph : kPhases) total += run->PhaseTime(ph);
    std::vector<std::string> row = {util::FormatDouble(m, 0) + " M"};
    for (const char* ph : kPhases) {
      row.push_back(util::FormatDouble(run->PhaseTime(ph) / total * 100, 1));
    }
    share.AddRow(row);

    for (const char* ph : kPhases) {
      double t = 0.0, link = 0.0, comp = 0.0;
      const char* b = "-";
      sim::PerfCounters phase_counters;
      for (const auto& rec : run->phases) {
        if (rec.name.find(ph) == std::string::npos) continue;
        t += rec.Elapsed();
        link += std::max({rec.time.link, rec.time.tlb, rec.time.cpu_mem});
        comp += std::max(rec.time.compute, rec.time.gpu_mem);
        b = rec.time.Bottleneck();
        phase_counters.Merge(rec.counters);
      }
      if (t == 0.0) continue;
      bench::Measurement meas;
      meas.AddRun(t, run->PhaseTime(ph) / total * 100.0, phase_counters);
      env.reporter().Add({.series = ph,
                          .axis = "mtuples_per_relation",
                          .x = m,
                          .has_x = true,
                          .label = b,
                          .unit = "pct_of_total_time",
                          .m = meas,
                          .extra = {{"link_pct", link / t * 100.0},
                                    {"compute_pct", comp / t * 100.0}}});
      bound.AddRow({util::FormatDouble(m, 0) + " M", ph, b,
                    util::FormatDouble(link / t * 100, 0),
                    util::FormatDouble(comp / t * 100, 0)});
    }
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  env.Emit(share, "(a) Kernel share of total time (%)");
  env.Emit(bound, "(b) Bottleneck attribution per kernel");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
