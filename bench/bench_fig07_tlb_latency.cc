// Figure 7: TLB miss latency measured by fine-grained pointer chasing over
// growing memory ranges — (a) in GPU memory, (b) in CPU memory over the
// interconnect.
//
// Expected shape (paper): in GPU memory the L2 TLB covers 8 GiB (hit
// ~152 ns, miss ~227 ns). In CPU memory the L2 TLB again covers 8 GiB (hit
// ~450 ns); a second plateau at ~533 ns ("L3 TLB*") extends to ~32 GiB, and
// beyond that every access walks the page table at ~3186 ns ("Miss*").
// Ranges are expressed in paper-scale GiB; the simulated capacities are
// scaled by the same factor, so the plateau boundaries land at the same
// labels.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/random.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "fig07", "Figure 7",
                      "TLB miss latency vs memory range (pointer chasing)");
  const double scale = static_cast<double>(env.scale());

  auto run_side = [&](bool gpu_mem, const std::vector<double>& ranges_gib,
                      const char* title) {
    const char* side = gpu_mem ? "gpu_mem" : "cpu_mem";
    util::Table table({"range (paper GiB)", "stride 16 MiB", "stride 32 MiB",
                       "stride 64 MiB"});
    for (double gib : ranges_gib) {
      uint64_t range = static_cast<uint64_t>(
          gib * static_cast<double>(util::kGiB) / scale);
      std::vector<std::string> row = {util::FormatDouble(gib, 1)};
      for (double stride_mib : {16.0, 32.0, 64.0}) {
        uint64_t stride = static_cast<uint64_t>(
            stride_mib * static_cast<double>(util::kMiB) / scale);
        if (stride == 0 || stride >= range) {
          row.push_back("-");
          continue;
        }
        exec::Device dev(env.hw());
        auto buf = gpu_mem ? dev.allocator().AllocateGpu(range)
                           : dev.allocator().AllocateCpu(range);
        if (!buf.ok()) {
          row.push_back("OOM");
          continue;
        }
        const uint64_t chases = 50000;
        double latency_sum = 0.0;
        uint64_t count = 0;
        auto rec = dev.Launch(
            {.name = "chase", .sms = 1, .occupancy_warps_per_sm = 1,
             .latency_bound = true},
            [&](exec::KernelContext& ctx) {
              uint64_t pos = 0;
              for (uint64_t i = 0; i < chases; ++i) {
                ctx.ReadRand(*buf, pos, 8);
                pos = (pos + stride) % range;
              }
              latency_sum = ctx.random_latency_sum();
              count = ctx.random_accesses();
            });
        double ns = latency_sum / static_cast<double>(count) * 1e9;
        bench::Measurement meas;
        meas.AddRun(rec.Elapsed(), ns, rec.counters);
        env.reporter().Add(
            {.series = std::string(side) + "/stride" +
                       util::FormatDouble(stride_mib, 0) + "MiB",
             .axis = "range_gib",
             .x = gib,
             .has_x = true,
             .unit = "ns",
             .m = meas});
        row.push_back(util::FormatDouble(ns, 0));
      }
      table.AddRow(row);
    }
    env.Emit(table, title);
  };

  run_side(true, {6.0, 6.5, 7.0, 8.0, 9.0, 9.8, 10.7},
           "(a) GPU memory: latency (ns); L2 TLB covers 8 GiB");
  run_side(false, {1.0, 4.0, 8.0, 9.5, 16.0, 24.0, 32.0, 37.0, 48.0, 64.0,
                   87.5},
           "(b) CPU memory: latency (ns); L3 TLB* to 32 GiB, Miss* beyond");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
