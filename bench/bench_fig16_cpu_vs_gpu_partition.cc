// Figure 16: partitioning data using the CPU vs the GPU — (a) end-to-end
// throughput of the CPU-partitioned radix join (Sioulas-style strategy)
// against the GPU-partitioned Triton join, and (b) the partitioning-phase
// throughput of both processors.
//
// Expected shape (paper): the Triton join is 1.2-1.3x faster end to end
// because the GPU partitions 1.5-1.7x faster than the CPU and the caching
// design lowers transfer volume.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "join/cpu_partitioned_join.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "fig16", "Figure 16",
                      "CPU-partitioned vs GPU-partitioned join");

  util::Table joins({"workload", "CPU-partitioned G/s", "Triton G/s",
                     "speedup"});
  util::Table parts({"workload", "CPU partition GiB/s",
                     "GPU partition GiB/s"});

  for (double m : {128.0, 512.0, 2048.0}) {
    uint64_t n = env.Tuples(m);
    exec::Device dev(env.hw());
    data::WorkloadConfig cfg;
    cfg.r_tuples = n;
    cfg.s_tuples = n;
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    CHECK_OK(wl.status());

    join::CpuPartitionedJoin cpu_join;
    auto cpu_run = cpu_join.Run(dev, wl->r, wl->s);
    CHECK_OK(cpu_run.status());
    core::TritonJoin triton;
    auto gpu_run = triton.Run(dev, wl->r, wl->s);
    CHECK_OK(gpu_run.status());

    double cpu_tp = cpu_run->Throughput(n, n);
    double gpu_tp = gpu_run->Throughput(n, n);
    joins.AddRow({util::FormatDouble(m, 0) + " M", bench::GTuples(cpu_tp),
                  bench::GTuples(gpu_tp),
                  util::FormatDouble(gpu_tp / cpu_tp, 2)});

    // Partitioning-phase throughput: input bytes / partitioning time.
    double in_bytes = 2.0 * static_cast<double>(n) * 16.0;
    double cpu_part = cpu_run->PhaseTime("cpu_partition");
    double gpu_part = gpu_run->PhaseTime("partition1");
    parts.AddRow(
        {util::FormatDouble(m, 0) + " M",
         util::FormatDouble(in_bytes / cpu_part / util::kGiB, 1),
         util::FormatDouble(in_bytes / gpu_part / util::kGiB, 1)});

    bench::Measurement cpu_meas;
    cpu_meas.AddRun(cpu_run->elapsed, cpu_tp / 1e9, cpu_run->totals);
    env.reporter().Add(
        {.series = "CPU-partitioned",
         .axis = "mtuples_per_relation",
         .x = m,
         .has_x = true,
         .unit = "gtuples_per_s",
         .m = cpu_meas,
         .extra = {{"partition_gib_per_s",
                    in_bytes / cpu_part / static_cast<double>(util::kGiB)}}});
    bench::Measurement gpu_meas;
    gpu_meas.AddRun(gpu_run->elapsed, gpu_tp / 1e9, gpu_run->totals);
    env.reporter().Add(
        {.series = "Triton",
         .axis = "mtuples_per_relation",
         .x = m,
         .has_x = true,
         .unit = "gtuples_per_s",
         .m = gpu_meas,
         .extra = {{"partition_gib_per_s",
                    in_bytes / gpu_part / static_cast<double>(util::kGiB)},
                   {"speedup_vs_cpu", gpu_tp / cpu_tp}}});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  env.Emit(joins, "(a) End-to-end join throughput");
  env.Emit(parts, "(b) First-pass partitioning throughput");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
