// Figure 20: computing the prefix sum on the CPU vs on the GPU — (a) the
// effect on the end-to-end Triton join, (b) standalone prefix-sum
// throughput of both processors.
//
// Expected shape (paper): the CPU scans the single key column at up to
// ~130 GiB/s (near its memory bandwidth) while the GPU is capped at the
// unidirectional interconnect bandwidth (~63 GiB/s), so the CPU computes
// the prefix sum 1.6-2.2x faster — but the end-to-end join improves by
// only ~1.1x because the prefix sum is a small share of total time.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "partition/prefix_sum.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "fig20", "Figure 20",
                      "Prefix sum: CPU vs GPU");

  util::Table joins({"workload", "Triton w/ CPU PS (G/s)",
                     "Triton w/ GPU PS (G/s)"});
  util::Table sums({"workload", "CPU prefix sum GiB/s",
                    "GPU prefix sum GiB/s"});

  for (double m : {128.0, 512.0, 2048.0}) {
    uint64_t n = env.Tuples(m);
    exec::Device dev(env.hw());
    data::WorkloadConfig cfg;
    cfg.r_tuples = n;
    cfg.s_tuples = n;
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    CHECK_OK(wl.status());

    core::TritonJoin cpu_ps({.gpu_prefix_sum = false});
    core::TritonJoin gpu_ps({.gpu_prefix_sum = true});
    auto a = cpu_ps.Run(dev, wl->r, wl->s);
    auto b = gpu_ps.Run(dev, wl->r, wl->s);
    CHECK_OK(a.status());
    CHECK_OK(b.status());
    joins.AddRow({util::FormatDouble(m, 0) + " M",
                  bench::GTuples(a->Throughput(n, n)),
                  bench::GTuples(b->Throughput(n, n))});
    bench::Measurement am;
    am.AddRun(a->elapsed, a->Throughput(n, n) / 1e9, a->totals);
    env.reporter().Add({.series = "Triton w/ CPU prefix sum",
                        .axis = "mtuples_per_relation",
                        .x = m,
                        .has_x = true,
                        .unit = "gtuples_per_s",
                        .m = am});
    bench::Measurement bm;
    bm.AddRun(b->elapsed, b->Throughput(n, n) / 1e9, b->totals);
    env.reporter().Add({.series = "Triton w/ GPU prefix sum",
                        .axis = "mtuples_per_relation",
                        .x = m,
                        .has_x = true,
                        .unit = "gtuples_per_s",
                        .m = bm});

    // Standalone prefix sums over the key column of R.
    partition::ColumnInput input = partition::ColumnInput::Of(wl->r);
    partition::RadixConfig radix{0, 9};
    dev.ClearTrace();
    CpuPrefixSum(dev, input, radix, env.hw().gpu.num_sms);
    double t_cpu = dev.trace().back().Elapsed();
    GpuPrefixSum(dev, input, radix, env.hw().gpu.num_sms);
    double t_gpu = dev.trace().back().Elapsed();
    double key_bytes = static_cast<double>(n) * sizeof(data::Key);
    sums.AddRow({util::FormatDouble(m, 0) + " M",
                 util::FormatDouble(key_bytes / t_cpu / util::kGiB, 1),
                 util::FormatDouble(key_bytes / t_gpu / util::kGiB, 1)});
    bench::Measurement cm;
    cm.AddRun(t_cpu, key_bytes / t_cpu / static_cast<double>(util::kGiB));
    env.reporter().Add({.series = "CPU prefix sum",
                        .axis = "mtuples_per_relation",
                        .x = m,
                        .has_x = true,
                        .unit = "gib_per_s",
                        .m = cm});
    bench::Measurement gm;
    gm.AddRun(t_gpu, key_bytes / t_gpu / static_cast<double>(util::kGiB));
    env.reporter().Add({.series = "GPU prefix sum",
                        .axis = "mtuples_per_relation",
                        .x = m,
                        .has_x = true,
                        .unit = "gib_per_s",
                        .m = gm});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  env.Emit(joins, "(a) End-to-end Triton join by prefix-sum processor");
  env.Emit(sums, "(b) Standalone prefix-sum throughput (key column only)");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
