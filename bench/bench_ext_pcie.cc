// Extension experiment: how much of the Triton join's performance comes
// from the *fast* interconnect? Re-runs the Figure 13 comparison on the
// same GPU attached via PCI-e 3.0 x16 instead of NVLink 2.0 (the paper's
// Section 3 argument: higher interconnect bandwidth is necessary for
// GPU-side out-of-core joins; prior work assumed PCI-e and therefore
// partitioned on the CPU).
//
// Expected shape: on PCI-e the out-of-core Triton join drops well below
// the CPU radix join — fast interconnects are what make the
// GPU-partitioned strategy viable.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "join/cpu_radix_join.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "ext_pcie", "Extension: PCI-e",
                      "Triton join over NVLink 2.0 vs PCI-e 3.0");
  sim::HwSpec pcie = sim::HwSpec::Ac922Pcie3().Scaled(
      static_cast<double>(env.scale()));

  util::Table table({"MTuples/rel", "Triton@NVLink", "Triton@PCIe",
                     "CPU radix"});
  for (double m : env.quick() ? std::vector<double>{128, 512, 2048}
                              : std::vector<double>{128, 512, 1024, 2048}) {
    uint64_t n = env.Tuples(m);
    auto measure = [&](const char* series, const sim::HwSpec& hw,
                       bool cpu_join) {
      exec::Device dev(hw);
      data::WorkloadConfig cfg;
      cfg.r_tuples = n;
      cfg.s_tuples = n;
      auto wl = data::GenerateWorkload(dev.allocator(), cfg);
      CHECK_OK(wl.status());
      bench::Measurement meas;
      if (cpu_join) {
        join::CpuRadixJoin join({.result_mode = join::ResultMode::kAggregate});
        auto run = join.Run(dev, wl->r, wl->s);
        CHECK_OK(run.status());
        meas.AddRun(run->elapsed, run->Throughput(n, n) / 1e9, run->totals);
      } else {
        core::TritonJoin join({.result_mode = join::ResultMode::kAggregate});
        auto run = join.Run(dev, wl->r, wl->s);
        CHECK_OK(run.status());
        meas.AddRun(run->elapsed, run->Throughput(n, n) / 1e9, run->totals);
      }
      env.reporter().Add({.series = series,
                          .axis = "mtuples_per_relation",
                          .x = m,
                          .has_x = true,
                          .unit = "gtuples_per_s",
                          .m = meas});
      return util::FormatDouble(meas.value.mean(), 3);
    };
    table.AddRow({util::FormatDouble(m, 0),
                  measure("Triton@NVLink", env.hw(), false),
                  measure("Triton@PCIe", pcie, false),
                  measure("CPU radix", env.hw(), true)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  env.Emit(table, "Interconnect generation vs join throughput (G Tuples/s)");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
