// Extension experiment (beyond the paper): join robustness under skew.
//
// The paper evaluates uniform foreign keys only and leaves skew handling
// open. This bench sweeps Zipf-distributed probe keys and compares the
// Triton join (which absorbs skewed partitions through chunked scratchpad
// builds and per-partition load spreading) against the GPU no-partitioning
// join (whose hot hash-table lines serialize atomics — modelled here only
// through its unchanged memory traffic, so treat its skew-insensitivity as
// optimistic).
//
// Expected shape: the Triton join's throughput degrades mildly with skew
// (oversized hot partitions force chunked builds and repeated probe-side
// streaming) but shows no cliff.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "join/no_partitioning_join.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "ext_skew", "Extension: skew",
                      "Zipf-skewed probe side (theta sweep)", {"mtuples"});
  const uint64_t n = env.Tuples(env.flags().GetDouble("mtuples", 512));

  util::Table table({"zipf theta", "Triton G/s", "NPJ-perfect G/s",
                     "max partition (x mean)"});
  for (double theta : {0.0, 0.25, 0.5, 0.75, 0.9, 1.05}) {
    exec::Device dev(env.hw());
    data::WorkloadConfig cfg;
    cfg.r_tuples = n;
    cfg.s_tuples = n;
    cfg.zipf_theta = theta;
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    CHECK_OK(wl.status());

    core::TritonJoin triton({.result_mode = join::ResultMode::kAggregate});
    auto a = triton.Run(dev, wl->r, wl->s);
    CHECK_OK(a.status());
    CHECK_EQ(a->matches, n);
    join::NoPartitioningJoin npj(
        {.scheme = join::HashScheme::kPerfect,
         .result_mode = join::ResultMode::kAggregate});
    auto b = npj.Run(dev, wl->r, wl->s);
    CHECK_OK(b.status());
    CHECK_EQ(b->checksum, a->checksum);

    // Skew factor of the probe side under the first-pass radix bits.
    partition::RadixConfig radix{0, triton.stats().bits1};
    std::vector<uint64_t> sizes(radix.fanout(), 0);
    for (uint64_t i = 0; i < n; ++i) {
      ++sizes[radix.PartitionOf(wl->s.keys()[i])];
    }
    uint64_t max_size = *std::max_element(sizes.begin(), sizes.end());
    double skew_factor = static_cast<double>(max_size) * radix.fanout() /
                         static_cast<double>(n);

    bench::Measurement am;
    am.AddRun(a->elapsed, a->Throughput(n, n) / 1e9, a->totals);
    env.reporter().Add({.series = "Triton",
                        .axis = "zipf_theta",
                        .x = theta,
                        .has_x = true,
                        .unit = "gtuples_per_s",
                        .m = am,
                        .extra = {{"skew_factor", skew_factor}}});
    bench::Measurement bm;
    bm.AddRun(b->elapsed, b->Throughput(n, n) / 1e9, b->totals);
    env.reporter().Add({.series = "NPJ-perfect",
                        .axis = "zipf_theta",
                        .x = theta,
                        .has_x = true,
                        .unit = "gtuples_per_s",
                        .m = bm});
    table.AddRow({util::FormatDouble(theta, 2),
                  bench::GTuples(a->Throughput(n, n)),
                  bench::GTuples(b->Throughput(n, n)),
                  util::FormatDouble(skew_factor, 2)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  env.Emit(table, "Join throughput under probe-side skew");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
