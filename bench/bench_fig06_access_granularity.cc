// Figure 6: GPU interconnect bandwidth of a random access pattern to CPU
// memory with varying access granularities (a), and with misaligned
// accesses (b).
//
// Expected shape (paper): bandwidth grows linearly with access granularity,
// small reads beat small writes, and both reach the sequential bandwidth at
// 128 bytes (the coalesced transaction size). Misaligning a 512-byte access
// by 16 bytes costs ~20% for reads and ~56% for writes.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/random.h"

namespace triton {
namespace {

/// Runs the random-access kernel at one granularity; returns a Measurement
/// whose value is GiB/s of payload, matching the paper's metric.
bench::Measurement MeasureBandwidth(const sim::HwSpec& hw,
                                    uint64_t granularity, bool is_write,
                                    uint64_t misalign) {
  exec::Device dev(hw);
  // The paper uses a 1 GiB array — an eighth of the 8 GiB TLB coverage, so
  // address translation never interferes with the bandwidth measurement.
  const uint64_t size = hw.tlb.l2_coverage / 8;
  auto buf = dev.allocator().AllocateCpu(size + 1024);
  CHECK_OK(buf.status());

  const uint64_t accesses = 200000;
  util::Lcg64 lcg(granularity * 7 + is_write);
  auto rec = dev.Launch({.name = "random_access"}, [&](exec::KernelContext& ctx) {
    for (uint64_t i = 0; i < accesses; ++i) {
      // Accesses aligned to their own granularity (paper setup), plus an
      // optional fixed misalignment for Figure 6(b).
      uint64_t slots = size / granularity;
      uint64_t off = lcg.NextBounded(slots) * granularity + misalign;
      if (is_write) {
        ctx.WriteRand(*buf, off, granularity);
      } else {
        ctx.ReadRand(*buf, off, granularity);
      }
    }
  });
  double payload = static_cast<double>(accesses * granularity);
  bench::Measurement meas;
  meas.AddRun(rec.Elapsed(),
              payload / rec.Elapsed() / static_cast<double>(util::kGiB),
              rec.counters);
  return meas;
}

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "fig06", "Figure 6",
                      "Interconnect bandwidth vs access granularity");

  auto report = [&](const char* series, const char* axis, double x,
                    const char* label, bench::Measurement meas) {
    env.reporter().Add({.series = series,
                        .axis = axis,
                        .x = x,
                        .has_x = true,
                        .label = label,
                        .unit = "gib_per_s",
                        .m = meas});
    return util::FormatDouble(meas.value.mean(), 1);
  };

  util::Table a({"bytes", "read GiB/s", "write GiB/s"});
  for (uint64_t g : {4, 8, 16, 32, 64, 128, 256, 512}) {
    double x = static_cast<double>(g);
    a.AddRow({std::to_string(g),
              report("read", "granularity_bytes", x, "",
                     MeasureBandwidth(env.hw(), g, false, 0)),
              report("write", "granularity_bytes", x, "",
                     MeasureBandwidth(env.hw(), g, true, 0))});
  }
  env.Emit(a, "(a) Random access granularity (aligned)");

  util::Table b({"alignment", "read GiB/s", "write GiB/s"});
  b.AddRow({"none (512B +16)",
            report("read", "misalign_bytes", 16, "none (512B +16)",
                   MeasureBandwidth(env.hw(), 512, false, 16)),
            report("write", "misalign_bytes", 16, "none (512B +16)",
                   MeasureBandwidth(env.hw(), 512, true, 16))});
  b.AddRow({"cacheline (512B)",
            report("read", "misalign_bytes", 0, "cacheline (512B)",
                   MeasureBandwidth(env.hw(), 512, false, 0)),
            report("write", "misalign_bytes", 0, "cacheline (512B)",
                   MeasureBandwidth(env.hw(), 512, true, 0))});
  env.Emit(b, "(b) Alignment effect on 512-byte accesses");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
