// Machine-readable benchmark reports.
//
// Every bench binary reproduces one paper figure as a set of *series
// points* (one measured configuration on one axis position). The Reporter
// collects those points in structured form next to the human-readable
// tables and serializes them as one canonical JSON document per figure
// (BENCH_<figure>.json, written by BenchEnv::Finish when --json is given).
//
// Determinism contract: the JSON contains only *modeled* quantities —
// simulated seconds, figure-unit metrics derived from them, and the
// PerfCounters record — all of which are bit-identical for any --threads
// setting and across reruns (see DESIGN.md "Execution model"). Volatile
// host observations (wall-clock, worker-thread count) are deliberately
// reported on stdout only, so two runs of the same bench at the same
// scale/runs/quick settings produce byte-identical files. That property is
// what lets tools/bench_regress.py diff reports against the committed
// baselines exactly instead of with noise thresholds.

#ifndef TRITON_BENCH_REPORTER_H_
#define TRITON_BENCH_REPORTER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/perf_counters.h"
#include "util/stats.h"
#include "util/status.h"

namespace triton::bench {

/// One measured cell: modeled seconds and the headline metric across the
/// --runs repetitions, plus the PerfCounters of the first repetition (each
/// repetition reseeds the workload, so rep 0 is the deterministic choice).
struct Measurement {
  util::RunningStat seconds;
  util::RunningStat value;
  sim::PerfCounters counters;
  bool has_counters = false;

  void AddRun(double modeled_seconds, double metric) {
    seconds.Add(modeled_seconds);
    value.Add(metric);
  }
  void AddRun(double modeled_seconds, double metric,
              const sim::PerfCounters& c) {
    if (!has_counters) {
      counters = c;
      has_counters = true;
    }
    AddRun(modeled_seconds, metric);
  }
};

/// One series point of a figure.
struct Point {
  /// Series name: the algorithm or configuration this point belongs to.
  std::string series = {};
  /// Name of the swept axis ("mtuples_per_relation", "fanout", ...).
  std::string axis = {};
  /// Numeric axis position; has_x=false for purely categorical axes.
  double x = 0.0;
  bool has_x = false;
  /// Categorical axis value or annotation ("GPU memory", "compute", ...).
  std::string label = {};
  /// Unit of the headline metric ("gtuples_per_s", "gib_per_s", "ns", ...).
  std::string unit = {};
  Measurement m = {};
  /// Additional named metrics in figure units (insertion order preserved).
  std::vector<std::pair<std::string, double>> extra = {};
};

/// Collects the points of one figure and serializes the canonical report.
class Reporter {
 public:
  /// Sets the figure identity and run metadata (called by BenchEnv).
  void Configure(std::string figure_id, std::string figure_name,
                 std::string title, std::string machine, int64_t scale,
                 int64_t runs, bool quick);

  void Add(Point p) { points_.push_back(std::move(p)); }

  const std::string& figure_id() const { return figure_id_; }
  const std::vector<Point>& points() const { return points_; }

  /// Canonical JSON serialization (see DESIGN.md "Benchmark reporting" for
  /// the schema). Deterministic: byte-identical across reruns and thread
  /// counts.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  util::Status WriteFile(const std::string& path) const;

 private:
  std::string figure_id_;
  std::string figure_name_;
  std::string title_;
  std::string machine_;
  int64_t scale_ = 0;
  int64_t runs_ = 0;
  bool quick_ = false;
  std::vector<Point> points_;
};

}  // namespace triton::bench

#endif  // TRITON_BENCH_REPORTER_H_
