// Ablation study: how much does each design choice of the Triton join
// contribute? Starting from the full configuration, each row disables or
// swaps exactly one ingredient:
//
//   - caching (Section 5.3's interleaved GPU/CPU page mapping)
//   - transfer/compute overlap via concurrent kernels (Section 5.2)
//   - the CPU prefix sum (Section 6.2.8)
//   - the Hierarchical first pass (replaced by Shared / Linear / Standard)
//   - the bucket-chaining scratchpad table (replaced by perfect hashing)
//
// Run on an out-of-core workload (default 1536 M tuples per relation)
// where every mechanism is exercised.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "partition/linear.h"
#include "partition/shared.h"
#include "partition/standard.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "ablation", "Ablation",
                      "Contribution of each Triton join design choice",
                      {"mtuples"});
  const uint64_t n = env.Tuples(env.flags().GetDouble("mtuples", 1536));

  partition::StandardPartitioner standard;
  partition::LinearPartitioner linear;
  partition::SharedPartitioner shared;

  util::Table table({"configuration", "G Tuples/s", "vs full"});
  double full_tp = 0.0;

  auto measure = [&](const char* name, core::TritonJoinConfig cfg) {
    exec::Device dev(env.hw());
    data::WorkloadConfig wcfg;
    wcfg.r_tuples = n;
    wcfg.s_tuples = n;
    auto wl = data::GenerateWorkload(dev.allocator(), wcfg);
    CHECK_OK(wl.status());
    cfg.result_mode = join::ResultMode::kAggregate;
    core::TritonJoin join(cfg);
    auto run = join.Run(dev, wl->r, wl->s);
    CHECK_OK(run.status());
    CHECK_EQ(run->matches, n);
    double tp = run->Throughput(n, n);
    if (full_tp == 0.0) full_tp = tp;
    bench::Measurement meas;
    meas.AddRun(run->elapsed, tp / 1e9, run->totals);
    env.reporter().Add({.series = name,
                        .axis = "configuration",
                        .label = name,
                        .unit = "gtuples_per_s",
                        .m = meas,
                        .extra = {{"vs_full", tp / full_tp}}});
    table.AddRow({name, bench::GTuples(tp),
                  util::FormatDouble(tp / full_tp, 2) + "x"});
    std::printf(".");
    std::fflush(stdout);
  };

  measure("full Triton join", {});
  measure("- GPU cache (all state spilled)", {.cache_bytes = 0});
  measure("- kernel overlap (serial join phase)", {.overlap = false});
  measure("- CPU prefix sum (GPU instead)", {.gpu_prefix_sum = true});
  measure("- Hierarchical pass 1 (Shared)", {.pass1 = &shared});
  measure("- Hierarchical pass 1 (Linear)", {.pass1 = &linear});
  measure("- Hierarchical pass 1 (Standard)", {.pass1 = &standard});
  measure("- bucket chaining (perfect hashing)",
          {.scheme = join::HashScheme::kPerfect});
  std::printf("\n");
  env.Emit(table, "Ablations on an out-of-core workload");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
