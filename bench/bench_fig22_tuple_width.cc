// Figure 22: scaling the number of payload attributes. The first pass
// partitions only the join key, generating row IDs on the fly, so the join
// produces a *join index*; the outer relation's payload attributes are then
// materialized late with one random CPU-memory access per attribute.
//
// Expected shape (paper): constructing the join index (0 payloads) runs at
// the default setup's speed (~2 G tuples/s for 128 M), but late
// materialization of wide out-of-core tuples collapses throughput to tens
// of M tuples/s by 16 attributes — random gathers dominate.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/triton_join.h"
#include "util/random.h"

namespace triton {
namespace {

int Main(int argc, char** argv) {
  bench::BenchEnv env(argc, argv, "fig22", "Figure 22",
                      "Materializing wide tuples (late materialization)");
  util::Table table({"workload", "payload attrs", "G Tuples/s"});

  for (double m : env.quick() ? std::vector<double>{512.0}
                              : std::vector<double>{128.0, 512.0, 2048.0}) {
    uint64_t n = env.Tuples(m);
    for (uint32_t payloads : {0u, 1u, 2u, 4u, 8u, 16u}) {
      // The 2048 M workload stops at 2 payloads in the paper (CPU memory
      // capacity); mirror that limit against the scaled capacity.
      uint64_t payload_bytes = 2ull * n * payloads * sizeof(data::Value);
      if (payload_bytes > env.hw().cpu_mem.capacity / 2) {
        table.AddRow({util::FormatDouble(m, 0) + " M",
                      std::to_string(payloads), "OOM (paper too)"});
        continue;
      }
      exec::Device dev(env.hw());
      data::WorkloadConfig cfg;
      cfg.r_tuples = n;
      cfg.s_tuples = n;
      cfg.payload_cols = std::max(payloads, 1u);
      auto wl = data::GenerateWorkload(dev.allocator(), cfg);
      CHECK_OK(wl.status());

      // Join-index construction: partition the key column only (row ids
      // generated on the fly).
      core::TritonJoin join({.result_mode = join::ResultMode::kMaterialize});
      auto run = join.Run(dev, wl->r, wl->s);
      CHECK_OK(run.status());
      double elapsed = run->elapsed;

      if (payloads > 0) {
        // Late materialization: one random 8-byte gather per payload
        // attribute of the outer relation, per result tuple.
        util::Lcg64 lcg(11);
        auto rec = dev.Launch({.name = "materialize"},
                              [&](exec::KernelContext& ctx) {
          uint64_t gathers = run->matches;
          for (uint64_t i = 0; i < gathers; ++i) {
            uint64_t row = lcg.NextBounded(n);
            for (uint32_t c = 0; c < payloads; ++c) {
              // Random 8-byte gathers over the link. The paper's measured
              // rate (86-88 M tuples/s at 16 attributes) equals the
              // interconnect's random-read bound, i.e. address translation
              // was not the limiter for these gathers — so they are
              // accounted without TLB replay.
              ctx.ReadNoTlb(wl->s.payload_buffer(c % wl->s.payload_cols()),
                            row * sizeof(data::Value), sizeof(data::Value),
                            /*random=*/true);
            }
          }
          ctx.AddTuples(gathers);
        });
        elapsed += rec.Elapsed();
      }
      double tp = static_cast<double>(2 * n) / elapsed;
      bench::Measurement meas;
      meas.AddRun(elapsed, tp / 1e9, run->totals);
      env.reporter().Add({.series = util::FormatDouble(m, 0) + "M",
                          .axis = "payload_attrs",
                          .x = static_cast<double>(payloads),
                          .has_x = true,
                          .unit = "gtuples_per_s",
                          .m = meas});
      table.AddRow({util::FormatDouble(m, 0) + " M", std::to_string(payloads),
                    bench::GTuples(tp)});
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  env.Emit(table, "Join + late materialization vs payload width");
  return env.Finish();
}

}  // namespace
}  // namespace triton

int main(int argc, char** argv) { return triton::Main(argc, argv); }
