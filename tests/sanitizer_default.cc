// Linked into every test binary (tests/CMakeLists.txt): turns the
// DeviceSanitizer on before main() so each existing test doubles as an
// accounting audit. TRITON_SANITIZER=0 in the environment overrides.

#include "sanitizer/sanitizer.h"

namespace {

[[maybe_unused]] const bool kSanitizerDefaultOn = [] {
  triton::sanitizer::SetDefaultEnabled(true);
  return true;
}();

}  // namespace
