#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"
#include "util/units.h"

namespace triton::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::OutOfMemory("16 GiB exceeded");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(s.ToString(), "OutOfMemory: 16 GiB exceeded");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::InvalidArgument("bad"); };
  auto outer = [&]() -> Status {
    TRITON_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::OutOfRange("x");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(BitsTest, PowerOfTwoPredicates) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2048));
  EXPECT_FALSE(IsPowerOfTwo(2049));
}

TEST(BitsTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(0), 1u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(4096), 4096u);
  EXPECT_EQ(NextPowerOfTwo(4097), 8192u);
}

TEST(BitsTest, Logs) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2048), 11u);
  EXPECT_EQ(FloorLog2(4095), 11u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2048), 11u);
  EXPECT_EQ(CeilLog2(2049), 12u);
}

TEST(BitsTest, Alignment) {
  EXPECT_EQ(AlignUp(0, 128), 0u);
  EXPECT_EQ(AlignUp(1, 128), 128u);
  EXPECT_EQ(AlignUp(128, 128), 128u);
  EXPECT_EQ(AlignDown(255, 128), 128u);
}

TEST(BitsTest, ExtractBits) {
  EXPECT_EQ(ExtractBits(0b110101, 0, 3), 0b101u);
  EXPECT_EQ(ExtractBits(0b110101, 3, 3), 0b110u);
}

TEST(RandomTest, LcgBoundedStaysInRange) {
  Lcg64 lcg(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(lcg.NextBounded(100), 100u);
  }
}

TEST(RandomTest, LcgIsRoughlyUniform) {
  Lcg64 lcg(13);
  constexpr int kBuckets = 16;
  int counts[kBuckets] = {};
  constexpr int kDraws = 160000;
  for (int i = 0; i < kDraws; ++i) ++counts[lcg.NextBounded(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RandomTest, ShuffleIsPermutation) {
  std::vector<int> v(1000);
  for (int i = 0; i < 1000; ++i) v[i] = i;
  Rng rng(99);
  Shuffle(v, rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sorted[i], i);
  // Not the identity permutation (overwhelmingly likely).
  bool moved = false;
  for (int i = 0; i < 1000; ++i) moved |= (v[i] != i);
  EXPECT_TRUE(moved);
}

TEST(StatsTest, MeanAndStderr) {
  RunningStat st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.Add(x);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), 2.138, 1e-3);
  EXPECT_NEAR(st.stderr_mean(), 2.138 / std::sqrt(8.0), 1e-3);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(StatsTest, GeoMean) {
  EXPECT_NEAR(GeoMean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_EQ(GeoMean({}), 0.0);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(1536), "1.50 KiB");
  EXPECT_EQ(FormatBytes(16ull * kGiB), "16.00 GiB");
}

TEST(TableTest, AlignedRendering) {
  Table t({"size", "throughput"});
  t.AddRow({"128", "2.25"});
  t.AddRow({"2048", "1.70"});
  std::string text = t.ToText();
  EXPECT_NE(text.find("| size "), std::string::npos);
  EXPECT_NE(text.find("| 2048 "), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, CsvRendering) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(FlagsTest, ParsesAllSyntaxes) {
  const char* argv[] = {"prog",         "--scale=32", "--runs", "5",
                        "positional",   "--csv",      "--frac=0.5",
                        "--list=1,2,3"};
  Flags flags(8, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("scale", 64), 32);
  EXPECT_EQ(flags.GetInt("runs", 1), 5);
  EXPECT_TRUE(flags.GetBool("csv", false));
  EXPECT_FALSE(flags.GetBool("missing", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("frac", 0.0), 0.5);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
  auto list = flags.GetIntList("list", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[2], 3);
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("scale", 64), 64);
  EXPECT_EQ(flags.GetString("name", "x"), "x");
  auto list = flags.GetIntList("sizes", {128, 512});
  EXPECT_EQ(list.size(), 2u);
}

}  // namespace
}  // namespace triton::util
