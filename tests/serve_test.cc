// Service-layer tests: deterministic multi-tenant execution, bounded
// admission, arbiter budgets, and probe batching.
//
// The headline check is the service determinism contract: a fixed
// (scheduler seed, request trace, config) triple must produce bit-identical
// per-tenant results and PerfCounters at --threads 1 and 8 — the serve
// layer extends PR 2's block-ordered reduction guarantee across whole
// concurrent queries.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "data/relation.h"
#include "exec/block_executor.h"
#include "serve/arbiter.h"
#include "serve/join_service.h"
#include "serve/shared_build.h"
#include "sim/hw_spec.h"
#include "sim/perf_counters.h"
#include "util/status.h"
#include "util/units.h"

namespace triton {
namespace {

using serve::JoinService;
using serve::MemoryArbiter;
using serve::Request;
using serve::RequestKind;
using serve::RequestOutcome;
using serve::ResourceRequest;
using serve::ServiceConfig;
using serve::TenantReport;
using util::kMiB;

/// Scoped thread-count override; restores the previous pool size.
class ThreadsGuard {
 public:
  explicit ThreadsGuard(uint32_t threads)
      : prev_(exec::BlockExecutor::Global().threads()) {
    exec::BlockExecutor::Global().SetThreads(threads);
  }
  ~ThreadsGuard() { exec::BlockExecutor::Global().SetThreads(prev_); }

 private:
  uint32_t prev_;
};

/// Field-by-field equality over the full counter record: any drift between
/// thread counts is a determinism bug, not noise.
void ExpectCountersEq(const sim::PerfCounters& a, const sim::PerfCounters& b) {
  EXPECT_EQ(a.gpu_mem_read, b.gpu_mem_read);
  EXPECT_EQ(a.gpu_mem_write, b.gpu_mem_write);
  EXPECT_EQ(a.gpu_mem_random_write, b.gpu_mem_random_write);
  EXPECT_EQ(a.link_read_payload, b.link_read_payload);
  EXPECT_EQ(a.link_read_physical, b.link_read_physical);
  EXPECT_EQ(a.link_write_payload, b.link_write_payload);
  EXPECT_EQ(a.link_write_physical, b.link_write_physical);
  EXPECT_EQ(a.link_read_txns, b.link_read_txns);
  EXPECT_EQ(a.link_write_txns, b.link_write_txns);
  EXPECT_EQ(a.cpu_mem_read, b.cpu_mem_read);
  EXPECT_EQ(a.cpu_mem_write, b.cpu_mem_write);
  EXPECT_EQ(a.gpu_tlb_lookups, b.gpu_tlb_lookups);
  EXPECT_EQ(a.gpu_tlb_misses, b.gpu_tlb_misses);
  EXPECT_EQ(a.l3_hits, b.l3_hits);
  EXPECT_EQ(a.iommu_requests, b.iommu_requests);
  EXPECT_EQ(a.iommu_walks, b.iommu_walks);
  EXPECT_EQ(a.issue_slots, b.issue_slots);
  EXPECT_EQ(a.tuples, b.tuples);
}

sim::HwSpec TestHw() { return sim::HwSpec::Ac922NvLink().Scaled(64); }

/// The 8-tenant mixed trace the determinism test replays: every tenant
/// submits one join, one aggregate and two shared-build probes.
std::vector<Request> MixedTrace(uint32_t tenants) {
  std::vector<Request> trace;
  for (uint32_t t = 0; t < tenants; ++t) {
    Request join;
    join.tenant = t;
    join.kind = RequestKind::kJoin;
    join.r_tuples = 20000 + 1000 * t;
    join.s_tuples = 30000 + 2000 * t;
    join.seed = 100 + t;
    trace.push_back(join);

    Request agg;
    agg.tenant = t;
    agg.kind = RequestKind::kAggregate;
    agg.r_tuples = 4000 + 100 * t;  // group-key domain
    agg.s_tuples = 25000 + 1500 * t;
    agg.seed = 200 + t;
    trace.push_back(agg);

    for (uint32_t p = 0; p < 2; ++p) {
      Request probe;
      probe.tenant = t;
      probe.kind = RequestKind::kProbe;
      probe.s_tuples = 3000 + 500 * t + 100 * p;
      probe.seed = 300 + 10 * t + p;
      trace.push_back(probe);
    }
  }
  return trace;
}

ServiceConfig MixedConfig() {
  ServiceConfig config;
  config.queue_capacity = 64;
  config.max_inflight = 4;
  config.scheduler_seed = 7;
  config.probe_batch_limit = 8;
  config.shared_build_tuples = 64 * 1024;
  return config;
}

struct ServiceRun {
  std::vector<RequestOutcome> outcomes;
  std::vector<TenantReport> reports;
  double busy_seconds = 0.0;
  uint64_t dispatches = 0;
};

ServiceRun RunService(const ServiceConfig& config,
                      const std::vector<Request>& trace, uint32_t threads) {
  ThreadsGuard guard(threads);
  JoinService service(TestHw(), config);
  EXPECT_TRUE(service.init_status().ok()) << service.init_status().ToString();
  for (const Request& r : trace) {
    util::Status st = service.Submit(r);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  util::Status st = service.Drain();
  EXPECT_TRUE(st.ok()) << st.ToString();
  ServiceRun run;
  run.outcomes = service.outcomes();
  run.reports = service.BuildTenantReports();
  run.busy_seconds = service.busy_seconds();
  run.dispatches = service.dispatches();
  return run;
}

// --- The acceptance check: 8 concurrent tenants, threads 1 vs 8 ---

TEST(ServeDeterminismTest, EightTenantsBitIdenticalAcrossThreadCounts) {
  const std::vector<Request> trace = MixedTrace(8);
  const ServiceConfig config = MixedConfig();
  ServiceRun serial = RunService(config, trace, 1);
  ServiceRun parallel = RunService(config, trace, 8);

  ASSERT_EQ(serial.outcomes.size(), trace.size());
  ASSERT_EQ(parallel.outcomes.size(), trace.size());
  for (size_t i = 0; i < serial.outcomes.size(); ++i) {
    const RequestOutcome& a = serial.outcomes[i];
    const RequestOutcome& b = parallel.outcomes[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.tenant, b.tenant);
    EXPECT_TRUE(a.status.ok()) << a.status.ToString();
    EXPECT_EQ(a.status.code(), b.status.code());
    EXPECT_EQ(a.matches, b.matches);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.batch_size, b.batch_size);
    // Modeled time is derived from the counters, so bit-identical too.
    EXPECT_EQ(a.elapsed, b.elapsed);
    ExpectCountersEq(a.counters, b.counters);
  }

  ASSERT_EQ(serial.reports.size(), 8u);
  ASSERT_EQ(parallel.reports.size(), 8u);
  for (size_t t = 0; t < serial.reports.size(); ++t) {
    const TenantReport& a = serial.reports[t];
    const TenantReport& b = parallel.reports[t];
    EXPECT_EQ(a.tenant, static_cast<uint32_t>(t));
    EXPECT_EQ(b.tenant, static_cast<uint32_t>(t));
    EXPECT_EQ(a.completed, 4u);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.matches, b.matches);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.elapsed, b.elapsed);
    ExpectCountersEq(a.counters, b.counters);
  }
  EXPECT_EQ(serial.busy_seconds, parallel.busy_seconds);
  EXPECT_EQ(serial.dispatches, parallel.dispatches);
}

// --- Functional sanity of the mixed trace ---

TEST(ServeServiceTest, JoinOutcomesMatchProbeSideCardinality) {
  ServiceRun run = RunService(MixedConfig(), MixedTrace(2), 2);
  for (const RequestOutcome& out : run.outcomes) {
    ASSERT_TRUE(out.status.ok()) << out.status.ToString();
    if (out.kind == RequestKind::kJoin) {
      // PK/FK join: every probe tuple matches exactly once.
      const Request& req = MixedTrace(2)[out.id - 1];
      EXPECT_EQ(out.matches, req.s_tuples);
    }
    EXPECT_GT(out.matches, 0u);
    EXPECT_GT(out.elapsed, 0.0);
  }
}

// --- Admission control ---

TEST(ServeAdmissionTest, QueueBoundRejectsWithResourceExhausted) {
  ServiceConfig config;
  config.queue_capacity = 3;
  JoinService service(TestHw(), config);

  Request req;
  req.kind = RequestKind::kJoin;
  req.r_tuples = 5000;
  req.s_tuples = 5000;
  for (int i = 0; i < 3; ++i) {
    req.tenant = static_cast<uint32_t>(i);
    req.seed = 10 + static_cast<uint64_t>(i);
    ASSERT_TRUE(service.Submit(req).ok());
  }
  req.tenant = 3;
  util::Status st = service.Submit(req);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kResourceExhausted);

  ASSERT_TRUE(service.Drain().ok());
  std::vector<TenantReport> reports = service.BuildTenantReports();
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports[3].tenant, 3u);
  EXPECT_EQ(reports[3].rejected, 1u);
  EXPECT_EQ(reports[3].completed, 0u);
  for (int t = 0; t < 3; ++t) EXPECT_EQ(reports[t].completed, 1u);
}

TEST(ServeAdmissionTest, MalformedRequestsRejected) {
  JoinService service(TestHw(), ServiceConfig{});
  Request empty;
  empty.kind = RequestKind::kJoin;
  EXPECT_EQ(service.Submit(empty).code(),
            util::StatusCode::kInvalidArgument);
  Request probe;
  probe.kind = RequestKind::kProbe;
  probe.s_tuples = 100;
  // No shared build configured.
  EXPECT_EQ(service.Submit(probe).code(),
            util::StatusCode::kFailedPrecondition);
}

// --- Memory arbiter ---

TEST(ServeArbiterTest, ExhaustionReturnsResourceExhaustedAndRetryWorks) {
  MemoryArbiter arbiter(TestHw());
  const uint64_t gpu = arbiter.gpu_capacity();

  ResourceRequest big;
  big.gpu_bytes = gpu - 1 * kMiB;
  auto first = arbiter.Reserve(big);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(arbiter.gpu_free(), 1 * kMiB);
  EXPECT_EQ(arbiter.active_reservations(), 1u);

  // The tenant's second query does not fit while the first holds budget.
  ResourceRequest small;
  small.gpu_bytes = 2 * kMiB;
  auto denied = arbiter.Reserve(small);
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), util::StatusCode::kResourceExhausted);

  // Retry after release succeeds.
  first->Release();
  EXPECT_EQ(arbiter.gpu_free(), gpu);
  auto retry = arbiter.Reserve(small);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(arbiter.gpu_free(), gpu - 2 * kMiB);
}

TEST(ServeArbiterTest, ScratchpadIsABudgetToo) {
  sim::HwSpec hw = TestHw();
  MemoryArbiter arbiter(hw);
  ResourceRequest half;
  half.scratchpad_bytes = hw.gpu.scratchpad_bytes / 2;
  auto a = arbiter.Reserve(half);
  ASSERT_TRUE(a.ok());
  auto b = arbiter.Reserve(half);
  ASSERT_TRUE(b.ok());
  auto c = arbiter.Reserve(half);
  EXPECT_EQ(c.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(ServeArbiterTest, ReservationReleasesOnDestruction) {
  MemoryArbiter arbiter(TestHw());
  {
    ResourceRequest req;
    req.cpu_bytes = 8 * kMiB;
    auto res = arbiter.Reserve(req);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(arbiter.cpu_free(), arbiter.cpu_capacity() - 8 * kMiB);
  }
  EXPECT_EQ(arbiter.cpu_free(), arbiter.cpu_capacity());
  EXPECT_EQ(arbiter.active_reservations(), 0u);
}

TEST(ServeArbiterTest, CarvedSpecShrinksCapacitiesOnly) {
  sim::HwSpec hw = TestHw();
  MemoryArbiter arbiter(hw);
  ResourceRequest req;
  req.gpu_bytes = 16 * kMiB;
  req.cpu_bytes = 64 * kMiB;
  req.scratchpad_bytes = hw.gpu.scratchpad_bytes / 4;
  auto res = arbiter.Reserve(req);
  ASSERT_TRUE(res.ok());
  sim::HwSpec carved = arbiter.CarvedSpec(*res);
  EXPECT_EQ(carved.gpu_mem.capacity, 16 * kMiB);
  EXPECT_EQ(carved.cpu_mem.capacity, 64 * kMiB);
  EXPECT_EQ(carved.gpu.scratchpad_bytes, hw.gpu.scratchpad_bytes / 4);
  // Physics stays the real machine's.
  EXPECT_EQ(carved.gpu_mem.bandwidth, hw.gpu_mem.bandwidth);
  EXPECT_EQ(carved.link.raw_bandwidth_per_dir, hw.link.raw_bandwidth_per_dir);
  EXPECT_EQ(carved.tlb.page_bytes, hw.tlb.page_bytes);
  EXPECT_EQ(carved.gpu.num_sms, hw.gpu.num_sms);
}

TEST(ServeServiceTest, ImpossibleRequestFailsInsteadOfDeadlocking) {
  ServiceConfig config;
  JoinService service(TestHw(), config);
  Request monster;
  monster.kind = RequestKind::kJoin;
  // Larger than the whole scaled CPU memory: can never be admitted.
  monster.r_tuples = TestHw().cpu_mem.capacity / data::kTupleBytes;
  monster.s_tuples = monster.r_tuples;
  ASSERT_TRUE(service.Submit(monster).ok());
  ASSERT_TRUE(service.Drain().ok());
  ASSERT_EQ(service.outcomes().size(), 1u);
  EXPECT_EQ(service.outcomes()[0].status.code(),
            util::StatusCode::kResourceExhausted);
}

// --- Probe batching ---

TEST(ServeBatchingTest, BatchedProbesMatchUnbatchedExecution) {
  std::vector<Request> trace;
  for (uint32_t t = 0; t < 4; ++t) {
    for (uint32_t p = 0; p < 4; ++p) {
      Request probe;
      probe.tenant = t;
      probe.kind = RequestKind::kProbe;
      probe.s_tuples = 2000 + 300 * t + 50 * p;
      probe.seed = 40 + 10 * t + p;
      trace.push_back(probe);
    }
  }
  ServiceConfig batched = MixedConfig();
  batched.max_inflight = 8;
  batched.probe_batch_limit = 8;
  ServiceConfig unbatched = batched;
  unbatched.probe_batch_limit = 1;

  ServiceRun a = RunService(batched, trace, 2);
  ServiceRun b = RunService(unbatched, trace, 2);
  ASSERT_EQ(a.outcomes.size(), trace.size());
  ASSERT_EQ(b.outcomes.size(), trace.size());

  // Functional results are independent of batch composition...
  auto by_id = [](const std::vector<RequestOutcome>& outs, uint64_t id)
      -> const RequestOutcome& {
    for (const RequestOutcome& o : outs) {
      if (o.id == id) return o;
    }
    ADD_FAILURE() << "missing outcome " << id;
    return outs.front();
  };
  for (size_t i = 1; i <= trace.size(); ++i) {
    const RequestOutcome& batch_out = by_id(a.outcomes, i);
    const RequestOutcome& solo_out = by_id(b.outcomes, i);
    ASSERT_TRUE(batch_out.status.ok()) << batch_out.status.ToString();
    ASSERT_TRUE(solo_out.status.ok()) << solo_out.status.ToString();
    EXPECT_EQ(batch_out.matches, solo_out.matches);
    EXPECT_EQ(batch_out.checksum, solo_out.checksum);
    EXPECT_GT(batch_out.batch_size, 1u);
    EXPECT_EQ(solo_out.batch_size, 1u);
  }
  // ...but batching amortizes the per-dispatch overhead.
  EXPECT_LT(a.dispatches, b.dispatches);
  EXPECT_LT(a.busy_seconds, b.busy_seconds);
}

TEST(ServeBatchingTest, SharedBuildProbesSeeEveryKey) {
  sim::HwSpec hw = TestHw();
  MemoryArbiter arbiter(hw);
  serve::SharedBuild::Config config;
  config.tuples = 4096;
  auto sb = serve::SharedBuild::Create(hw, arbiter, config);
  ASSERT_TRUE(sb.ok()) << sb.status().ToString();

  // Probe keys are drawn from [1, build tuples], so every probe matches.
  std::vector<serve::ProbeSpec> specs = {{1000, 5}, {2000, 6}, {500, 7}};
  auto run = (*sb)->RunBatch(specs);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->results.size(), 3u);
  EXPECT_EQ(run->results[0].matches, 1000u);
  EXPECT_EQ(run->results[1].matches, 2000u);
  EXPECT_EQ(run->results[2].matches, 500u);
  EXPECT_GT(run->elapsed, 0.0);

  // Rerunning the same batch is bit-identical (arena-reset addresses).
  auto rerun = (*sb)->RunBatch(specs);
  ASSERT_TRUE(rerun.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(run->results[i].checksum, rerun->results[i].checksum);
  }
  EXPECT_EQ(run->elapsed, rerun->elapsed);
  ExpectCountersEq(run->counters, rerun->counters);
}

// --- Mixed backends: CPU, GPU and hybrid joins co-resident ---

TEST(ServeBackendTest, MixedBackendTraceBitIdenticalAcrossThreadCounts) {
  std::vector<Request> trace;
  for (uint32_t t = 0; t < 3; ++t) {
    for (exec::Backend backend : {exec::Backend::kGpu, exec::Backend::kCpu,
                                  exec::Backend::kHybrid}) {
      Request join;
      join.tenant = t;
      join.kind = RequestKind::kJoin;
      join.backend = backend;
      join.r_tuples = 60000 + 5000 * t;
      join.s_tuples = 2 * join.r_tuples;
      join.seed = 100 + 10 * t + static_cast<uint64_t>(backend);
      trace.push_back(join);
    }
  }
  ServiceConfig config;
  config.scheduler_seed = 11;
  ServiceRun serial = RunService(config, trace, 1);
  ServiceRun parallel = RunService(config, trace, 8);

  ASSERT_EQ(serial.outcomes.size(), trace.size());
  ASSERT_EQ(parallel.outcomes.size(), trace.size());
  for (size_t i = 0; i < serial.outcomes.size(); ++i) {
    const RequestOutcome& a = serial.outcomes[i];
    const RequestOutcome& b = parallel.outcomes[i];
    EXPECT_TRUE(a.status.ok()) << a.status.ToString();
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.matches, b.matches);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.elapsed, b.elapsed);
    ExpectCountersEq(a.counters, b.counters);
  }
  EXPECT_EQ(serial.busy_seconds, parallel.busy_seconds);

  // All three backends agree on the join result for the same workload.
  std::vector<Request> same;
  for (exec::Backend backend : {exec::Backend::kGpu, exec::Backend::kCpu,
                                exec::Backend::kHybrid}) {
    Request join;
    join.kind = RequestKind::kJoin;
    join.backend = backend;
    join.r_tuples = 50000;
    join.s_tuples = 100000;
    join.seed = 99;
    same.push_back(join);
  }
  ServiceRun agree = RunService(ServiceConfig{}, same, 2);
  ASSERT_EQ(agree.outcomes.size(), 3u);
  for (const RequestOutcome& out : agree.outcomes) {
    EXPECT_TRUE(out.status.ok()) << out.status.ToString();
    EXPECT_EQ(out.matches, agree.outcomes[0].matches);
    EXPECT_EQ(out.checksum, agree.outcomes[0].checksum);
  }
}

TEST(ServeBackendTest, CpuJoinsNeedNoGpuBudget) {
  // On a machine whose GPU budget fits only one carve, CPU-backend joins
  // still co-schedule: they reserve no GPU memory or scratchpad.
  ServiceConfig config;
  config.max_inflight = 4;
  std::vector<Request> trace;
  for (uint32_t i = 0; i < 4; ++i) {
    Request join;
    join.tenant = i;
    join.kind = RequestKind::kJoin;
    join.backend = exec::Backend::kCpu;
    join.r_tuples = 40000;
    join.s_tuples = 80000;
    join.seed = 40 + i;
    trace.push_back(join);
  }
  ServiceRun run = RunService(config, trace, 2);
  ASSERT_EQ(run.outcomes.size(), 4u);
  for (const RequestOutcome& out : run.outcomes) {
    EXPECT_TRUE(out.status.ok()) << out.status.ToString();
    EXPECT_EQ(out.matches, 80000u);
    // The CPU path never touches the GPU: no link or GPU-memory traffic.
    EXPECT_EQ(out.counters.link_read_payload, 0u);
    EXPECT_EQ(out.counters.gpu_mem_read, 0u);
  }
}

}  // namespace
}  // namespace triton
