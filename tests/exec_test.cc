#include <gtest/gtest.h>

#include "exec/device.h"
#include "sim/hw_spec.h"
#include "util/random.h"
#include "util/units.h"

namespace triton::exec {
namespace {

using sim::HwSpec;
using util::kMiB;

class DeviceTest : public ::testing::Test {
 protected:
  HwSpec hw_ = HwSpec::Ac922NvLink().Scaled(64);
  Device dev_{hw_};
};

TEST_F(DeviceTest, SequentialCpuReadCountsLinkTraffic) {
  auto buf = dev_.allocator().AllocateCpu(4 * kMiB);
  ASSERT_TRUE(buf.ok());
  auto rec = dev_.Launch({.name = "scan"}, [&](KernelContext& ctx) {
    ctx.ReadSeq(*buf, 0, 4 * kMiB);
  });
  EXPECT_EQ(rec.counters.link_read_payload, 4 * kMiB);
  // Perfectly coalesced: physical = payload * 144/128.
  EXPECT_EQ(rec.counters.link_read_physical, 4 * kMiB * 144 / 128);
  EXPECT_EQ(rec.counters.gpu_mem_read, 0u);
  dev_.allocator().Free(*buf);
}

TEST_F(DeviceTest, SequentialGpuReadStaysOnBoard) {
  auto buf = dev_.allocator().AllocateGpu(4 * kMiB);
  ASSERT_TRUE(buf.ok());
  auto rec = dev_.Launch({.name = "scan"}, [&](KernelContext& ctx) {
    ctx.ReadSeq(*buf, 0, 4 * kMiB);
  });
  EXPECT_EQ(rec.counters.gpu_mem_read, 4 * kMiB);
  EXPECT_EQ(rec.counters.link_read_payload, 0u);
  EXPECT_EQ(rec.counters.iommu_requests, 0u);
  dev_.allocator().Free(*buf);
}

TEST_F(DeviceTest, InterleavedBufferSplitsTraffic) {
  auto buf = dev_.allocator().AllocateInterleaved(12 * kMiB, 4 * kMiB);
  ASSERT_TRUE(buf.ok());
  auto rec = dev_.Launch({.name = "scan"}, [&](KernelContext& ctx) {
    ctx.ReadSeq(*buf, 0, buf->size());
  });
  // ~1/3 of reads on-board, ~2/3 over the link.
  double gpu_frac = static_cast<double>(rec.counters.gpu_mem_read) /
                    static_cast<double>(buf->size());
  EXPECT_NEAR(gpu_frac, 1.0 / 3.0, 0.05);
  EXPECT_EQ(rec.counters.gpu_mem_read + rec.counters.link_read_payload,
            buf->size());
  dev_.allocator().Free(*buf);
}

TEST_F(DeviceTest, RandomCpuAccessesReplayTlb) {
  // Allocate more than the scaled L3 TLB* reach and touch pages randomly:
  // lookups must miss all GPU-side levels and escalate to the IOMMU.
  uint64_t size = hw_.tlb.iotlb_coverage * 3;
  auto buf = dev_.allocator().AllocateCpu(size);
  ASSERT_TRUE(buf.ok());
  util::Lcg64 lcg(3);
  auto rec = dev_.Launch({.name = "gather"}, [&](KernelContext& ctx) {
    for (int i = 0; i < 20000; ++i) {
      uint64_t off = lcg.NextBounded(size / 16) * 16;
      ctx.ReadRand(*buf, off, 16);
    }
  });
  EXPECT_EQ(rec.counters.gpu_tlb_lookups, 20000u);
  // Working set is 3x the L3* reach: the majority of lookups walk.
  EXPECT_GT(rec.counters.iommu_requests, 10000u);
  dev_.allocator().Free(*buf);
}

TEST_F(DeviceTest, RandomAccessWithinCoverageMostlyHits) {
  uint64_t size = hw_.tlb.l2_coverage / 4;
  auto buf = dev_.allocator().AllocateCpu(size);
  ASSERT_TRUE(buf.ok());
  util::Lcg64 lcg(3);
  auto rec = dev_.Launch({.name = "gather"}, [&](KernelContext& ctx) {
    for (int i = 0; i < 50000; ++i) {
      uint64_t off = lcg.NextBounded(size / 16) * 16;
      ctx.ReadRand(*buf, off, 16);
    }
  });
  // Compulsory misses only: at most one per translation range.
  uint64_t ranges = size / hw_.tlb.l2_entry_range + 2;
  EXPECT_LE(rec.counters.iommu_requests, ranges);
  dev_.allocator().Free(*buf);
}

TEST_F(DeviceTest, TlbFlushedBetweenLaunches) {
  auto buf = dev_.allocator().AllocateCpu(1 * kMiB);
  ASSERT_TRUE(buf.ok());
  auto first = dev_.Launch({.name = "a"}, [&](KernelContext& ctx) {
    ctx.ReadRand(*buf, 0, 16);
  });
  EXPECT_EQ(first.counters.iommu_requests, 1u);
  // Second launch: the GPU L2 TLB is flushed but the L3* layer still holds
  // the range — the lookup misses L2 yet generates no IOMMU request.
  auto second = dev_.Launch({.name = "b"}, [&](KernelContext& ctx) {
    ctx.ReadRand(*buf, 0, 16);
  });
  EXPECT_EQ(second.counters.gpu_tlb_misses, 1u);
  EXPECT_EQ(second.counters.iommu_requests, 0u);
  EXPECT_EQ(second.counters.iommu_walks, 0u);
  dev_.allocator().Free(*buf);
}

TEST_F(DeviceTest, ChargeAndTuplesAccumulate) {
  auto rec = dev_.Launch({.name = "compute"}, [&](KernelContext& ctx) {
    ctx.Charge(1000);
    ctx.AddTuples(32);
  });
  EXPECT_EQ(rec.counters.issue_slots, 1000u);
  EXPECT_EQ(rec.counters.tuples, 32u);
  EXPECT_GT(rec.time.compute, 0.0);
}

TEST_F(DeviceTest, SmsDefaultsToAll) {
  auto rec = dev_.Launch({.name = "k"}, [](KernelContext&) {});
  EXPECT_EQ(rec.sms, hw_.gpu.num_sms);
}

TEST_F(DeviceTest, HalfSmsDoublesComputeTime) {
  auto full = dev_.Launch({.name = "k", .sms = 80},
                          [](KernelContext& ctx) { ctx.Charge(1 << 20); });
  auto half = dev_.Launch({.name = "k", .sms = 40},
                          [](KernelContext& ctx) { ctx.Charge(1 << 20); });
  EXPECT_NEAR(half.time.compute / full.time.compute, 2.0, 1e-9);
}

TEST_F(DeviceTest, TraceAccumulates) {
  dev_.ClearTrace();
  dev_.Launch({.name = "a"}, [](KernelContext& ctx) { ctx.Charge(100); });
  dev_.Launch({.name = "b"}, [](KernelContext& ctx) { ctx.Charge(100); });
  ASSERT_EQ(dev_.trace().size(), 2u);
  EXPECT_EQ(dev_.trace()[0].name, "a");
  EXPECT_EQ(dev_.trace()[1].name, "b");
  EXPECT_GT(dev_.TraceElapsed(), 0.0);
}

TEST_F(DeviceTest, LatencyBoundKernelReportsLatencyTime) {
  auto buf = dev_.allocator().AllocateCpu(1 * kMiB);
  ASSERT_TRUE(buf.ok());
  auto rec = dev_.Launch(
      {.name = "chase", .sms = 1, .occupancy_warps_per_sm = 1,
       .latency_bound = true},
      [&](KernelContext& ctx) {
        for (int i = 0; i < 1000; ++i) ctx.ReadRand(*buf, (i * 64) % kMiB, 8);
      });
  EXPECT_GT(rec.time.latency, 0.0);
  EXPECT_STREQ(rec.time.Bottleneck(), "latency");
  dev_.allocator().Free(*buf);
}

}  // namespace
}  // namespace triton::exec
