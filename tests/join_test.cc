#include <gtest/gtest.h>

#include <memory>

#include "data/generator.h"
#include "exec/device.h"
#include "join/common.h"
#include "join/cpu_partitioned_join.h"
#include "join/cpu_radix_join.h"
#include "join/no_partitioning_join.h"
#include "join/scratch_join.h"
#include "sim/hw_spec.h"
#include "util/units.h"

namespace triton::join {
namespace {

using util::kMiB;

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hw_ = sim::HwSpec::Ac922NvLink().Scaled(64);
    dev_ = std::make_unique<exec::Device>(hw_);
  }

  data::Workload MakeWorkload(uint64_t r, uint64_t s, uint64_t seed = 42) {
    data::WorkloadConfig cfg;
    cfg.r_tuples = r;
    cfg.s_tuples = s;
    cfg.seed = seed;
    auto wl = data::GenerateWorkload(dev_->allocator(), cfg);
    CHECK_OK(wl.status());
    return std::move(wl).value();
  }

  sim::HwSpec hw_;
  std::unique_ptr<exec::Device> dev_;
};

// --- No-partitioning join ---

class NpjSchemeTest : public JoinTest,
                      public ::testing::WithParamInterface<HashScheme> {};

TEST_P(NpjSchemeTest, FindsAllMatchesWithCorrectChecksum) {
  auto wl = MakeWorkload(20000, 60000);
  uint64_t ref = ReferenceChecksum(wl.r, wl.s);
  NoPartitioningJoin npj({.scheme = GetParam()});
  auto run = npj.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->matches, 60000u);
  EXPECT_EQ(run->checksum, ref);
  EXPECT_GT(run->elapsed, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Schemes, NpjSchemeTest,
                         ::testing::Values(HashScheme::kPerfect,
                                           HashScheme::kLinearProbing,
                                           HashScheme::kBucketChaining),
                         [](const auto& info) {
                           return HashSchemeName(info.param);
                         });

TEST_F(JoinTest, NpjTableBytesMatchPaperSizes) {
  // 2048 M tuples: perfect hashing 30.5 GiB, linear probing 64 GiB
  // (Section 6.2.2).
  uint64_t n = 2048ull << 20;
  EXPECT_EQ(NpjTableBytes(HashScheme::kPerfect, n), n * 16);
  EXPECT_EQ(NpjTableBytes(HashScheme::kLinearProbing, n), 2 * n * 16);  // 64 GiB
  double perfect_gib =
      static_cast<double>(NpjTableBytes(HashScheme::kPerfect, n)) /
      static_cast<double>(util::kGiB);
  EXPECT_NEAR(perfect_gib, 32.0, 0.5);
}

TEST_F(JoinTest, NpjInCoreIsFasterThanOutOfCore) {
  // Small table (fits GPU) vs table forced out of GPU memory.
  auto wl = MakeWorkload(50000, 200000);
  NoPartitioningJoin cached({.scheme = HashScheme::kPerfect});
  NoPartitioningJoin spilled(
      {.scheme = HashScheme::kPerfect, .cache_bytes = 0});
  auto fast = cached.Run(*dev_, wl.r, wl.s);
  auto slow = spilled.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast->matches, slow->matches);
  EXPECT_LT(fast->elapsed, slow->elapsed);
}

TEST_F(JoinTest, NpjOutOfCoreLinearProbingCollapses) {
  // The paper's 2048 M proportions: the perfect-hashing table (30.5 GiB)
  // sits just inside the 32 GiB translation reach while linear probing's
  // doubled table (64 GiB) crosses it, so the IOMMU walker pool dominates
  // (Figure 13's 400x gap).
  uint64_t r_tuples =
      hw_.tlb.iotlb_coverage / sizeof(hash::Entry) * 95 / 100;
  auto wl = MakeWorkload(r_tuples, r_tuples);
  NoPartitioningJoin perfect({.scheme = HashScheme::kPerfect,
                              .result_mode = ResultMode::kAggregate});
  NoPartitioningJoin linear({.scheme = HashScheme::kLinearProbing,
                             .result_mode = ResultMode::kAggregate});
  auto p = perfect.Run(*dev_, wl.r, wl.s);
  auto l = linear.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_TRUE(l.ok()) << l.status().ToString();
  EXPECT_EQ(p->matches, l->matches);
  // Linear probing is dramatically slower out of core.
  EXPECT_GT(l->elapsed / p->elapsed, 5.0);
  // And issues far more IOMMU requests per tuple.
  EXPECT_GT(l->totals.IommuRequestsPerTuple(),
            4 * p->totals.IommuRequestsPerTuple());
}

TEST_F(JoinTest, NpjAggregateSkipsResultTraffic) {
  auto wl = MakeWorkload(10000, 30000);
  NoPartitioningJoin mat({.result_mode = ResultMode::kMaterialize});
  NoPartitioningJoin agg({.result_mode = ResultMode::kAggregate});
  auto m = mat.Run(*dev_, wl.r, wl.s);
  auto a = agg.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(m->checksum, a->checksum);
  EXPECT_GT(m->totals.link_write_payload, a->totals.link_write_payload);
}

// --- Scratch joiner ---

TEST_F(JoinTest, ScratchJoinerChunksOversizedBuildSides) {
  // A build range far beyond the scratchpad capacity must still produce
  // exact results via chunked builds.
  auto buf = dev_->allocator().AllocateCpu(40000 * sizeof(hash::Entry));
  ASSERT_TRUE(buf.ok());
  auto* rows = buf->as<partition::Tuple>();
  uint64_t r_n = 20000, s_n = 20000;
  for (uint64_t i = 0; i < r_n; ++i) {
    rows[i] = {static_cast<int64_t>(i + 1), static_cast<int64_t>(i * 7)};
  }
  for (uint64_t j = 0; j < s_n; ++j) {
    rows[r_n + j] = {static_cast<int64_t>(j % r_n + 1),
                     static_cast<int64_t>(j)};
  }
  ScratchJoiner joiner(HashScheme::kBucketChaining,
                       hw_.gpu.scratchpad_bytes);
  ASSERT_LT(joiner.MaxBuildTuples(), r_n);
  uint64_t matches = 0, checksum = 0, cursor = 0;
  dev_->Launch({.name = "join"}, [&](exec::KernelContext& ctx) {
    joiner.JoinRange(ctx, *buf, 0, r_n, r_n, s_n, 0, nullptr, &cursor,
                     &matches, &checksum);
  });
  EXPECT_EQ(matches, s_n);
  uint64_t expect = 0;
  for (uint64_t j = 0; j < s_n; ++j) {
    expect += (j % r_n) * 7 + j;
  }
  EXPECT_EQ(checksum, expect);
  dev_->allocator().Free(*buf);
}

// --- CPU radix join ---

TEST_F(JoinTest, CpuRadixJoinIsExact) {
  auto wl = MakeWorkload(30000, 90000);
  uint64_t ref = ReferenceChecksum(wl.r, wl.s);
  CpuRadixJoin cpu;
  auto run = cpu.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->matches, 90000u);
  EXPECT_EQ(run->checksum, ref);
}

TEST_F(JoinTest, CpuRadixJoinPerfectIsFaster) {
  auto wl = MakeWorkload(40000, 40000);
  CpuRadixJoin chain({.scheme = HashScheme::kBucketChaining});
  CpuRadixJoin perfect({.scheme = HashScheme::kPerfect});
  auto c = chain.Run(*dev_, wl.r, wl.s);
  auto p = perfect.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(c->matches, p->matches);
  // Perfect hashing is 6-16% faster in the paper.
  double speedup = c->elapsed / p->elapsed;
  EXPECT_GT(speedup, 1.0);
  EXPECT_LT(speedup, 1.3);
}

TEST_F(JoinTest, XeonIsSlowerThanPower9OnLargeInputs) {
  // Large |R| forces the Xeon into two-pass partitioning (Figure 13).
  uint64_t n = 4 << 20;
  auto wl = MakeWorkload(n, n);
  sim::CpuSpec xeon = sim::HwSpec::XeonGold6126();
  CpuRadixJoin p9({.result_mode = ResultMode::kAggregate});
  CpuRadixJoin xe({.result_mode = ResultMode::kAggregate, .cpu = &xeon});
  auto a = p9.Run(*dev_, wl.r, wl.s);
  auto b = xe.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->matches, b->matches);
  EXPECT_LT(a->elapsed, b->elapsed);
}

// --- CPU-partitioned GPU join ---

TEST_F(JoinTest, CpuPartitionedJoinIsExact) {
  auto wl = MakeWorkload(50000, 150000, /*seed=*/7);
  uint64_t ref = ReferenceChecksum(wl.r, wl.s);
  CpuPartitionedJoin join;
  auto run = join.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->matches, 150000u);
  EXPECT_EQ(run->checksum, ref);
  EXPECT_GT(run->elapsed, 0.0);
}

TEST_F(JoinTest, CpuPartitionedJoinHandlesOutOfCoreData) {
  // Data exceeding GPU memory: must partition into multiple working sets.
  uint64_t n = hw_.gpu_mem.capacity / sizeof(partition::Tuple);  // 2x GPU
  auto wl = MakeWorkload(n, n);
  CpuPartitionedJoin join({.result_mode = ResultMode::kAggregate});
  auto run = join.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->matches, n);
  // Multiple transfer phases appear in the trace.
  int transfers = 0;
  for (const auto& ph : run->phases) {
    if (ph.name == "transfer") ++transfers;
  }
  EXPECT_GT(transfers, 1);
}

TEST_F(JoinTest, AllJoinsAgreeOnChecksum) {
  auto wl = MakeWorkload(25000, 75000, /*seed=*/99);
  uint64_t ref = ReferenceChecksum(wl.r, wl.s);
  NoPartitioningJoin npj;
  CpuRadixJoin cpu;
  CpuPartitionedJoin cpj;
  auto a = npj.Run(*dev_, wl.r, wl.s);
  auto b = cpu.Run(*dev_, wl.r, wl.s);
  auto c = cpj.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->checksum, ref);
  EXPECT_EQ(b->checksum, ref);
  EXPECT_EQ(c->checksum, ref);
}

TEST_F(JoinTest, ThroughputMetricMatchesPaperDefinition) {
  JoinRun run;
  run.elapsed = 2.0;
  EXPECT_DOUBLE_EQ(run.Throughput(1000, 3000), 2000.0);
}

}  // namespace
}  // namespace triton::join
