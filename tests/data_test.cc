#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "data/generator.h"
#include "data/relation.h"
#include "mem/allocator.h"
#include "sim/hw_spec.h"

namespace triton::data {
namespace {

class DataTest : public ::testing::Test {
 protected:
  sim::HwSpec hw_ = sim::HwSpec::Ac922NvLink().Scaled(64);
  mem::Allocator alloc_{hw_};
};

TEST_F(DataTest, RelationAllocatesColumns) {
  auto rel = Relation::AllocateCpu(alloc_, 1000, 2);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->rows(), 1000u);
  EXPECT_EQ(rel->payload_cols(), 2u);
  EXPECT_EQ(rel->tuple_bytes(), 24u);
  EXPECT_EQ(rel->total_bytes(), 24000u);
}

TEST_F(DataTest, ZeroRowRelationRejected) {
  EXPECT_FALSE(Relation::AllocateCpu(alloc_, 0).ok());
}

TEST_F(DataTest, PrimaryKeysAreDensePermutation) {
  auto rel = Relation::AllocateCpu(alloc_, 4096);
  ASSERT_TRUE(rel.ok());
  FillPrimaryKeys(*rel, 7, /*shuffle=*/true);
  std::vector<Key> keys(rel->keys(), rel->keys() + rel->rows());
  std::sort(keys.begin(), keys.end());
  for (uint64_t i = 0; i < rel->rows(); ++i) {
    EXPECT_EQ(keys[i], static_cast<Key>(i + 1));
  }
}

TEST_F(DataTest, ShuffleActuallyShuffles) {
  auto rel = Relation::AllocateCpu(alloc_, 4096);
  ASSERT_TRUE(rel.ok());
  FillPrimaryKeys(*rel, 7, /*shuffle=*/true);
  uint64_t in_place = 0;
  for (uint64_t i = 0; i < rel->rows(); ++i) {
    if (rel->keys()[i] == static_cast<Key>(i + 1)) ++in_place;
  }
  EXPECT_LT(in_place, 32u);  // expected ~1 fixed point
}

TEST_F(DataTest, ForeignKeysInDomain) {
  auto rel = Relation::AllocateCpu(alloc_, 100000);
  ASSERT_TRUE(rel.ok());
  FillForeignKeys(*rel, 512, 9);
  std::set<Key> seen;
  for (uint64_t i = 0; i < rel->rows(); ++i) {
    Key k = rel->keys()[i];
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 512);
    seen.insert(k);
  }
  // Uniform draw of 100k values over 512: every value appears.
  EXPECT_EQ(seen.size(), 512u);
}

TEST_F(DataTest, ForeignKeysRoughlyUniform) {
  auto rel = Relation::AllocateCpu(alloc_, 256000);
  ASSERT_TRUE(rel.ok());
  FillForeignKeys(*rel, 256, 11);
  std::vector<int> counts(257, 0);
  for (uint64_t i = 0; i < rel->rows(); ++i) ++counts[rel->keys()[i]];
  for (int k = 1; k <= 256; ++k) {
    EXPECT_NEAR(counts[k], 1000, 200) << "key " << k;
  }
}

TEST_F(DataTest, WorkloadJoinCardinalityIsProbeSize) {
  WorkloadConfig cfg;
  cfg.r_tuples = 2000;
  cfg.s_tuples = 6000;
  auto wl = GenerateWorkload(alloc_, cfg);
  ASSERT_TRUE(wl.ok());
  EXPECT_EQ(wl->expected_join_cardinality, 6000u);
  // Ground truth against brute force.
  EXPECT_EQ(ReferenceJoinCardinality(wl->r, wl->s), 6000u);
}

TEST_F(DataTest, WorkloadIsDeterministicPerSeed) {
  WorkloadConfig cfg;
  cfg.r_tuples = 512;
  cfg.s_tuples = 512;
  cfg.seed = 123;
  auto a = GenerateWorkload(alloc_, cfg);
  auto b = GenerateWorkload(alloc_, cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (uint64_t i = 0; i < 512; ++i) {
    EXPECT_EQ(a->r.keys()[i], b->r.keys()[i]);
    EXPECT_EQ(a->s.keys()[i], b->s.keys()[i]);
  }
  cfg.seed = 124;
  auto c = GenerateWorkload(alloc_, cfg);
  ASSERT_TRUE(c.ok());
  bool differs = false;
  for (uint64_t i = 0; i < 512; ++i) differs |= (a->s.keys()[i] != c->s.keys()[i]);
  EXPECT_TRUE(differs);
}

TEST_F(DataTest, WidePayloadWorkload) {
  WorkloadConfig cfg;
  cfg.r_tuples = 100;
  cfg.s_tuples = 100;
  cfg.payload_cols = 16;
  auto wl = GenerateWorkload(alloc_, cfg);
  ASSERT_TRUE(wl.ok());
  EXPECT_EQ(wl->r.payload_cols(), 16u);
  EXPECT_EQ(wl->r.tuple_bytes(), 8u + 16u * 8u);
  // Payload columns are filled with distinct pseudo-random data.
  EXPECT_NE(wl->r.payload(0)[0], wl->r.payload(1)[0]);
}

TEST_F(DataTest, ZipfKeysStayInDomainAndMatchEverything) {
  WorkloadConfig cfg;
  cfg.r_tuples = 1000;
  cfg.s_tuples = 50000;
  cfg.zipf_theta = 0.9;
  auto wl = GenerateWorkload(alloc_, cfg);
  ASSERT_TRUE(wl.ok());
  for (uint64_t i = 0; i < wl->s.rows(); ++i) {
    ASSERT_GE(wl->s.keys()[i], 1);
    ASSERT_LE(wl->s.keys()[i], 1000);
  }
  // PK/FK property is preserved: every probe tuple matches exactly once.
  EXPECT_EQ(ReferenceJoinCardinality(wl->r, wl->s), 50000u);
}

TEST_F(DataTest, ZipfSkewConcentratesMass) {
  auto uniform = Relation::AllocateCpu(alloc_, 100000);
  auto skewed = Relation::AllocateCpu(alloc_, 100000);
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(skewed.ok());
  FillForeignKeys(*uniform, 10000, 3);
  FillForeignKeysZipf(*skewed, 10000, 0.99, 3);
  auto top_key_count = [](const Relation& rel) {
    std::map<Key, uint64_t> counts;
    for (uint64_t i = 0; i < rel.rows(); ++i) ++counts[rel.keys()[i]];
    uint64_t top = 0;
    for (const auto& [k, c] : counts) top = std::max(top, c);
    return top;
  };
  // The hottest skewed key carries far more probes than any uniform key.
  EXPECT_GT(top_key_count(*skewed), 10 * top_key_count(*uniform));
}

TEST_F(DataTest, ZipfThetaZeroIsUniform) {
  auto a = Relation::AllocateCpu(alloc_, 5000);
  auto b = Relation::AllocateCpu(alloc_, 5000);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  FillForeignKeys(*a, 128, 5);
  FillForeignKeysZipf(*b, 128, 0.0, 5);
  for (uint64_t i = 0; i < 5000; ++i) EXPECT_EQ(a->keys()[i], b->keys()[i]);
}

TEST_F(DataTest, InvalidConfigRejected) {
  WorkloadConfig cfg;
  cfg.r_tuples = 0;
  cfg.s_tuples = 10;
  EXPECT_FALSE(GenerateWorkload(alloc_, cfg).ok());
}

}  // namespace
}  // namespace triton::data
