#include <gtest/gtest.h>

#include <memory>

#include "core/triton_aggregate.h"
#include "partition/input.h"
#include "data/generator.h"
#include "exec/device.h"
#include "sim/hw_spec.h"

namespace triton::core {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hw_ = sim::HwSpec::Ac922NvLink().Scaled(64);
    dev_ = std::make_unique<exec::Device>(hw_);
  }

  /// Relation with `rows` tuples whose keys repeat over `domain` groups.
  data::Relation MakeGrouped(uint64_t rows, uint64_t domain, uint64_t seed) {
    auto rel = data::Relation::AllocateCpu(dev_->allocator(), rows);
    CHECK_OK(rel.status());
    data::FillForeignKeys(*rel, domain, seed);
    data::FillPayloads(*rel, seed + 1);
    return std::move(rel).value();
  }

  sim::HwSpec hw_;
  std::unique_ptr<exec::Device> dev_;
};

TEST_F(AggregateTest, MatchesReferenceGroupsAndSums) {
  data::Relation rel = MakeGrouped(100000, 3000, 5);
  auto [ref_groups, ref_checksum] = ReferenceAggregate(rel);
  EXPECT_EQ(ref_groups, 3000u);  // every group drawn at this density
  TritonAggregate agg;
  auto run = agg.Run(*dev_, rel);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->groups, ref_groups);
  EXPECT_EQ(run->checksum, ref_checksum);
  EXPECT_GT(run->elapsed, 0.0);
}

TEST_F(AggregateTest, DistinctCountingMatchesReference) {
  data::Relation rel = MakeGrouped(50000, 777, 9);
  TritonAggregate agg({.distinct_only = true});
  auto run = agg.Run(*dev_, rel);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->groups, 777u);
}

TEST_F(AggregateTest, AllKeysUniqueDegeneratesToDeduplication) {
  auto rel = data::Relation::AllocateCpu(dev_->allocator(), 40000);
  ASSERT_TRUE(rel.ok());
  data::FillPrimaryKeys(*rel, 3, true);
  data::FillPayloads(*rel, 4);
  auto [ref_groups, ref_checksum] = ReferenceAggregate(*rel);
  EXPECT_EQ(ref_groups, 40000u);
  TritonAggregate agg;
  auto run = agg.Run(*dev_, *rel);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->groups, 40000u);
  EXPECT_EQ(run->checksum, ref_checksum);
}

TEST_F(AggregateTest, OutOfCoreStateStaysExact) {
  uint64_t n = hw_.gpu_mem.capacity / sizeof(partition::Tuple);  // 2x GPU memory
  data::Relation rel = MakeGrouped(n, n / 8, 11);
  auto [ref_groups, ref_checksum] = ReferenceAggregate(rel);
  TritonAggregate agg;
  auto run = agg.Run(*dev_, rel);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->groups, ref_groups);
  EXPECT_EQ(run->checksum, ref_checksum);
  // Out-of-core: interconnect traffic exceeds one pass over the input.
  EXPECT_GT(run->totals.link_read_payload, n * sizeof(partition::Tuple));
}

TEST_F(AggregateTest, SkewedGroupsStayExact) {
  auto rel = data::Relation::AllocateCpu(dev_->allocator(), 80000);
  ASSERT_TRUE(rel.ok());
  data::FillForeignKeysZipf(*rel, 5000, 1.05, 13);
  data::FillPayloads(*rel, 14);
  auto [ref_groups, ref_checksum] = ReferenceAggregate(*rel);
  TritonAggregate agg;
  auto run = agg.Run(*dev_, *rel);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->groups, ref_groups);
  EXPECT_EQ(run->checksum, ref_checksum);
}

TEST_F(AggregateTest, ExplicitBitsRespectedAndExact) {
  data::Relation rel = MakeGrouped(30000, 500, 21);
  auto [ref_groups, ref_checksum] = ReferenceAggregate(rel);
  TritonAggregate agg({.bits1 = 3, .bits2 = 5});
  auto run = agg.Run(*dev_, rel);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->groups, ref_groups);
  EXPECT_EQ(run->checksum, ref_checksum);
}

}  // namespace
}  // namespace triton::core
