// Co-processing scheduler tests: backend-oracle equality at the split
// extremes, bit-identical results and counters at any thread count, the
// seeded-deterministic adaptive trajectory, the bounded staging-queue
// pipeline model, and the cost-model calibration that pins the split
// predictors to the engines they predict.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/triton_join.h"
#include "data/generator.h"
#include "exec/backend.h"
#include "exec/block_executor.h"
#include "exec/device.h"
#include "join/common.h"
#include "join/cpu_radix_join.h"
#include "sched/coprocess_scheduler.h"
#include "sched/predict.h"
#include "sim/hw_spec.h"

namespace triton::sched {
namespace {

/// Scoped thread-count override; restores the previous pool size.
class ThreadsGuard {
 public:
  explicit ThreadsGuard(uint32_t threads)
      : prev_(exec::BlockExecutor::Global().threads()) {
    exec::BlockExecutor::Global().SetThreads(threads);
  }
  ~ThreadsGuard() { exec::BlockExecutor::Global().SetThreads(prev_); }

 private:
  uint32_t prev_;
};

class CoProcessTest : public ::testing::Test {
 protected:
  void SetUp() override { hw_ = sim::HwSpec::Ac922NvLink().Scaled(64); }

  data::Workload MakeWorkload(exec::Device& dev, uint64_t r, uint64_t s,
                              uint64_t seed = 42) {
    data::WorkloadConfig cfg;
    cfg.r_tuples = r;
    cfg.s_tuples = s;
    cfg.seed = seed;
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    CHECK_OK(wl.status());
    return std::move(wl).value();
  }

  sim::HwSpec hw_;
};

TEST_F(CoProcessTest, ParseBackendRoundTrips) {
  for (exec::Backend b : {exec::Backend::kCpu, exec::Backend::kGpu,
                          exec::Backend::kHybrid}) {
    auto parsed = exec::ParseBackend(exec::BackendName(b));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), b);
  }
  EXPECT_FALSE(exec::ParseBackend("tpu").ok());
}

TEST_F(CoProcessTest, AllGpuSplitMatchesOracle) {
  exec::Device dev(hw_);
  auto wl = MakeWorkload(dev, 200000, 200000);
  uint64_t ref = join::ReferenceChecksum(wl.r, wl.s);
  CoProcessScheduler hybrid({.split_ratio = 0.0});
  auto run = hybrid.Run(dev, wl.r, wl.s);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->matches, 200000u);
  EXPECT_EQ(run->checksum, ref);
  EXPECT_EQ(hybrid.stats().cpu_pairs, 0u);
  EXPECT_EQ(hybrid.stats().gpu_pairs, hybrid.stats().pairs_total);
}

TEST_F(CoProcessTest, AllCpuSplitMatchesOracle) {
  exec::Device dev(hw_);
  auto wl = MakeWorkload(dev, 200000, 200000);
  exec::Device cpu_dev(hw_);
  auto cpu_wl = MakeWorkload(cpu_dev, 200000, 200000);
  join::CpuRadixJoin cpu({.result_mode = join::ResultMode::kAggregate});
  auto oracle = cpu.Run(cpu_dev, cpu_wl.r, cpu_wl.s);
  ASSERT_TRUE(oracle.ok());

  CoProcessScheduler hybrid({.split_ratio = 1.0});
  auto run = hybrid.Run(dev, wl.r, wl.s);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->matches, oracle->matches);
  EXPECT_EQ(run->checksum, oracle->checksum);
  EXPECT_EQ(hybrid.stats().gpu_pairs, 0u);
  EXPECT_EQ(hybrid.stats().cpu_pairs, hybrid.stats().pairs_total);
}

TEST_F(CoProcessTest, MidSplitMatchesOracleAndUsesBothBackends) {
  exec::Device dev(hw_);
  auto wl = MakeWorkload(dev, 300000, 300000);
  uint64_t ref = join::ReferenceChecksum(wl.r, wl.s);
  CoProcessScheduler hybrid({.split_ratio = 0.5});
  auto run = hybrid.Run(dev, wl.r, wl.s);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->matches, 300000u);
  EXPECT_EQ(run->checksum, ref);
  EXPECT_GT(hybrid.stats().cpu_pairs, 0u);
  EXPECT_GT(hybrid.stats().gpu_pairs, 0u);
  // Pair granularity limits precision; the realized share must track the
  // requested one.
  EXPECT_NEAR(hybrid.stats().final_cpu_fraction, 0.5, 0.15);
}

TEST_F(CoProcessTest, MaterializeAgreesWithAggregate) {
  for (join::ResultMode mode : {join::ResultMode::kAggregate,
                                join::ResultMode::kMaterialize}) {
    exec::Device dev(hw_);
    auto wl = MakeWorkload(dev, 150000, 150000);
    CoProcessConfig cfg;
    cfg.result_mode = mode;
    cfg.split_ratio = 0.4;
    CoProcessScheduler hybrid(cfg);
    auto run = hybrid.Run(dev, wl.r, wl.s);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->matches, 150000u);
    EXPECT_EQ(run->checksum, join::ReferenceChecksum(wl.r, wl.s));
  }
}

TEST_F(CoProcessTest, OutOfCorePairsStageThroughBoundedQueue) {
  // State twice the (scaled) GPU memory: pass-1 output spills, so GPU
  // pairs must stream through the staging queue.
  uint64_t n = hw_.gpu_mem.capacity / sizeof(partition::Tuple);
  exec::Device dev(hw_);
  auto wl = MakeWorkload(dev, n, n, /*seed=*/5);
  CoProcessConfig cfg;
  cfg.result_mode = join::ResultMode::kAggregate;
  cfg.split_ratio = 0.3;
  cfg.staging_depth = 3;
  CoProcessScheduler hybrid(cfg);
  auto run = hybrid.Run(dev, wl.r, wl.s);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->matches, n);
  EXPECT_GT(hybrid.stats().spilled_bytes, 0u);
  EXPECT_LT(hybrid.stats().cached_fraction, 1.0);
  EXPECT_GT(run->totals.link_read_payload, 0u);
}

TEST_F(CoProcessTest, BitIdenticalAcrossThreadCounts) {
  struct Observed {
    join::JoinRun run;
    CoProcessStats stats;
  };
  auto observe = [&](uint32_t threads) {
    ThreadsGuard guard(threads);
    exec::Device dev(hw_);
    auto wl = MakeWorkload(dev, 250000, 250000);
    CoProcessConfig cfg;
    cfg.adaptive = true;
    cfg.wave_pairs = 8;
    CoProcessScheduler hybrid(cfg);
    auto run = hybrid.Run(dev, wl.r, wl.s);
    CHECK_OK(run.status());
    return Observed{std::move(run).value(), hybrid.stats()};
  };
  Observed base = observe(1);
  for (uint32_t threads : {2u, 8u}) {
    Observed got = observe(threads);
    EXPECT_EQ(got.run.matches, base.run.matches) << threads;
    EXPECT_EQ(got.run.checksum, base.run.checksum) << threads;
    // Modeled time and every counter must be bit-identical, not just close:
    // the PR 2/PR 4 determinism contract extends to the scheduler.
    EXPECT_EQ(got.run.elapsed, base.run.elapsed) << threads;
    EXPECT_TRUE(got.run.totals == base.run.totals) << threads;
    EXPECT_EQ(got.stats.cpu_pairs, base.stats.cpu_pairs) << threads;
    EXPECT_EQ(got.stats.initial_cpu_fraction, base.stats.initial_cpu_fraction);
    EXPECT_EQ(got.stats.final_cpu_fraction, base.stats.final_cpu_fraction);
    ASSERT_EQ(got.stats.waves.size(), base.stats.waves.size());
    for (size_t w = 0; w < base.stats.waves.size(); ++w) {
      EXPECT_EQ(got.stats.waves[w].cpu_pairs, base.stats.waves[w].cpu_pairs);
      EXPECT_EQ(got.stats.waves[w].target_cpu_fraction,
                base.stats.waves[w].target_cpu_fraction);
      EXPECT_EQ(got.stats.waves[w].cpu_seconds,
                base.stats.waves[w].cpu_seconds);
      EXPECT_EQ(got.stats.waves[w].gpu_seconds,
                base.stats.waves[w].gpu_seconds);
    }
  }
}

TEST_F(CoProcessTest, AdaptiveTrajectoryIsSeededDeterministic) {
  auto observe = [&](uint64_t seed) {
    exec::Device dev(hw_);
    auto wl = MakeWorkload(dev, 250000, 250000);
    CoProcessConfig cfg;
    cfg.adaptive = true;
    cfg.wave_pairs = 8;
    cfg.seed = seed;
    CoProcessScheduler hybrid(cfg);
    auto run = hybrid.Run(dev, wl.r, wl.s);
    CHECK_OK(run.status());
    return std::make_pair(std::move(run).value(), hybrid.stats());
  };
  auto [run_a, stats_a] = observe(123);
  auto [run_b, stats_b] = observe(123);
  EXPECT_EQ(run_a.checksum, run_b.checksum);
  EXPECT_EQ(run_a.elapsed, run_b.elapsed);
  ASSERT_EQ(stats_a.waves.size(), stats_b.waves.size());
  for (size_t w = 0; w < stats_a.waves.size(); ++w) {
    EXPECT_EQ(stats_a.waves[w].target_cpu_fraction,
              stats_b.waves[w].target_cpu_fraction);
  }
  // Adaptive rebalancing actually moves the share between waves.
  ASSERT_GT(stats_a.waves.size(), 1u);
  EXPECT_NE(stats_a.waves.front().target_cpu_fraction,
            stats_a.waves.back().target_cpu_fraction);
}

TEST_F(CoProcessTest, DeriveBitsKeepsMorselGranularityAndPairBudget) {
  for (uint64_t n : {100000ull, 1000000ull, 10000000ull}) {
    uint32_t b1 = 0, b2 = 0;
    CoProcessScheduler::DeriveBits(hw_, n, n, &b1, &b2);
    EXPECT_GE(b1, CoProcessScheduler::kMinPairBits) << n;
    EXPECT_GE(b2, 1u) << n;
    // A pair (with the pipeline's double buffering) fits the GPU budget.
    uint64_t pair_bytes = (2 * n * sizeof(partition::Tuple)) >> b1;
    EXPECT_LE(pair_bytes * 4, hw_.gpu_mem.capacity / 2) << n;
    // Same total refinement depth as the Triton join: refined partitions
    // stay ~1024 tuples, so per-pair scheduling cost is comparable.
    uint32_t t1 = 0, t2 = 0;
    core::TritonJoin::DeriveBits(hw_, n, n, &t1, &t2);
    EXPECT_GE(b1 + b2 + 1, t1 + t2) << n;
    EXPECT_LE(b1 + b2, t1 + t2 + 1) << n;
  }
}

// --- Bounded staging-queue pipeline model ---

TEST(BoundedPipelineTest, EmptyAndSinglePair) {
  EXPECT_EQ(BoundedPipelineSeconds({}, {}, 2), 0.0);
  EXPECT_DOUBLE_EQ(BoundedPipelineSeconds({2.0}, {3.0}, 2), 5.0);
}

TEST(BoundedPipelineTest, DepthOneSerializesSlotReuse) {
  // With a single slot, pair 1's copy-in waits for pair 0's compute.
  EXPECT_DOUBLE_EQ(BoundedPipelineSeconds({1.0, 1.0}, {1.0, 1.0}, 1), 4.0);
  // With two slots the copy-in overlaps pair 0's compute.
  EXPECT_DOUBLE_EQ(BoundedPipelineSeconds({1.0, 1.0}, {1.0, 1.0}, 2), 3.0);
}

TEST(BoundedPipelineTest, DeepQueueConvergesToLaneMax) {
  // Long balanced pipeline: elapsed approaches max(sum bw, sum compute)
  // plus the fill bubble of one stage.
  std::vector<double> bw(64, 1.0), comp(64, 2.0);
  double t = BoundedPipelineSeconds(bw, comp, 4);
  EXPECT_GE(t, 128.0);
  EXPECT_LE(t, 128.0 + 1.0 + 1e-9);
}

// --- Cost-model calibration: predictions vs counters-derived runs ---

TEST_F(CoProcessTest, CpuPredictorTracksCpuRadixJoin) {
  exec::Device dev(hw_);
  auto wl = MakeWorkload(dev, 400000, 400000);
  join::CpuRadixJoin cpu({.result_mode = join::ResultMode::kAggregate});
  auto run = cpu.Run(dev, wl.r, wl.s);
  ASSERT_TRUE(run.ok());
  double pred = PredictCpuRadixSeconds(hw_, 400000, 400000);
  EXPECT_NEAR(pred, run->elapsed, 0.02 * run->elapsed);
}

TEST_F(CoProcessTest, TritonPredictorTracksTritonJoin) {
  // In-core and out-of-core anchor points.
  for (uint64_t n : {uint64_t{400000},
                     hw_.gpu_mem.capacity / sizeof(partition::Tuple)}) {
    exec::Device dev(hw_);
    auto wl = MakeWorkload(dev, n, n);
    core::TritonJoin gpu({.result_mode = join::ResultMode::kAggregate});
    auto run = gpu.Run(dev, wl.r, wl.s);
    ASSERT_TRUE(run.ok());
    double pred = PredictTritonSeconds(hw_, n, n);
    EXPECT_NEAR(pred, run->elapsed, 0.10 * run->elapsed) << n;
  }
}

}  // namespace
}  // namespace triton::sched
