// DeviceSanitizer tests: negative tests plant one specific bug each and
// assert the exact violation code; clean runs check that the instrumented
// partitioners stay quiet across the fanout range of Figure 18.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "data/generator.h"
#include "exec/device.h"
#include "partition/hierarchical.h"
#include "partition/input.h"
#include "partition/layout.h"
#include "partition/prefix_sum.h"
#include "partition/shared.h"
#include "sanitizer/sanitizer.h"
#include "sim/hw_spec.h"

namespace triton::sanitizer {
namespace {

using partition::ColumnInput;
using partition::PartitionLayout;
using partition::PartitionRun;
using partition::RadixConfig;
using partition::Tuple;

class SanitizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hw_ = sim::HwSpec::Ac922NvLink().Scaled(64);
    dev_ = std::make_unique<exec::Device>(hw_, /*sanitize=*/true);
    ASSERT_NE(dev_->sanitizer(), nullptr);
  }

  /// Takes all violations and asserts there is exactly one, of `code`.
  Violation TakeSingle(ViolationCode code) {
    std::vector<Violation> vs = dev_->sanitizer()->TakeViolations();
    EXPECT_EQ(vs.size(), 1u) << "expected exactly one violation";
    if (vs.empty()) return Violation{};
    EXPECT_EQ(vs.front().code, code) << vs.front().message;
    return vs.front();
  }

  sim::HwSpec hw_;
  std::unique_ptr<exec::Device> dev_;
};

// --- Enablement ---

TEST(SanitizerEnablementTest, EnvVariableOverridesDefault) {
  // tests/sanitizer_default.cc turned the default on.
  EXPECT_TRUE(DefaultEnabled());
  ASSERT_EQ(setenv("TRITON_SANITIZER", "0", 1), 0);
  EXPECT_FALSE(DefaultEnabled());
  sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(64);
  exec::Device off(hw);
  EXPECT_EQ(off.sanitizer(), nullptr);
  ASSERT_EQ(setenv("TRITON_SANITIZER", "1", 1), 0);
  exec::Device on(hw);
  EXPECT_NE(on.sanitizer(), nullptr);
  ASSERT_EQ(unsetenv("TRITON_SANITIZER"), 0);
  EXPECT_TRUE(DefaultEnabled());
}

// --- Negative: accounted traffic out of bounds (the OOB flush) ---

TEST_F(SanitizerTest, FlushPastAllocationExtentIsReported) {
  auto buf = dev_->allocator().AllocateCpu(1000);
  ASSERT_TRUE(buf.ok());
  dev_->Launch({.name = "part1"}, [&](exec::KernelContext& ctx) {
    ctx.SetSanitizerBlock(12);
    ctx.SetSanitizerFlushSite(/*warp=*/3, /*partition=*/907);
    // A flush whose cursor overran its partition extent: the last 8 bytes
    // are inside the allocation, the following 40 are not.
    ctx.WriteNoTlb(*buf, buf->size() - 8, 48, /*random=*/true);
    ctx.AddTuples(1);
    ctx.Charge(1);
  });
  Violation v = TakeSingle(ViolationCode::kAccountedOutOfBounds);
  EXPECT_NE(v.message.find("kernel part1"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("block 12"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("warp 3"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("partition 907"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("flush wrote 40 B past extent"), std::string::npos)
      << v.message;
}

TEST_F(SanitizerTest, AccountedTrafficOutsideAnyAllocationIsReported) {
  dev_->Launch({.name = "stray"}, [&](exec::KernelContext&) {
    // No allocation lives at address 0x1000.
    dev_->sanitizer()->RecordAccounted(0x1000, 64, /*is_write=*/true);
  });
  Violation v = TakeSingle(ViolationCode::kAccountedOutOfBounds);
  EXPECT_NE(v.message.find("hits no live allocation"), std::string::npos)
      << v.message;
}

// --- Negative: functional store with no accounted traffic ---

TEST_F(SanitizerTest, UnaccountedStoreIsReported) {
  auto buf = dev_->allocator().AllocateCpu(4096);
  ASSERT_TRUE(buf.ok());
  dev_->Launch({.name = "leaky"}, [&](exec::KernelContext& ctx) {
    // Functional write through the checked API, but the kernel "forgets"
    // to account the corresponding traffic.
    ctx.Store<uint64_t>(*buf, 0, 42);
    ctx.AddTuples(1);
    ctx.Charge(1);
  });
  Violation v = TakeSingle(ViolationCode::kUnaccountedWrite);
  EXPECT_NE(v.message.find("have no accounted traffic"), std::string::npos)
      << v.message;
}

TEST_F(SanitizerTest, AccountedStoreIsClean) {
  auto buf = dev_->allocator().AllocateCpu(4096);
  ASSERT_TRUE(buf.ok());
  dev_->Launch({.name = "clean"}, [&](exec::KernelContext& ctx) {
    ctx.Store<uint64_t>(*buf, 1, 42);
    ctx.WriteSeq(*buf, 0, 64);
    ctx.AddTuples(1);
    ctx.Charge(1);
  });
  EXPECT_TRUE(dev_->sanitizer()->CheckOk().ok());
}

// --- Negative: scratchpad memcheck ---

TEST_F(SanitizerTest, ScratchpadUseBeforeInitIsReported) {
  ScratchpadShadow shadow(dev_->sanitizer(), 1024, hw_.gpu.scratchpad_bytes);
  shadow.Store(0, 16, /*warp=*/0);
  shadow.Load(64, 16, /*warp=*/0);  // never written
  Violation v = TakeSingle(ViolationCode::kScratchpadUseBeforeInit);
  EXPECT_NE(v.message.find("read before any warp initialized it"),
            std::string::npos)
      << v.message;
}

TEST_F(SanitizerTest, ScratchpadStoreOutOfBoundsIsReported) {
  ScratchpadShadow shadow(dev_->sanitizer(), 1024, hw_.gpu.scratchpad_bytes);
  shadow.Store(1016, 16, /*warp=*/2);  // 8 B past the arena
  Violation v = TakeSingle(ViolationCode::kScratchpadOutOfBounds);
  EXPECT_NE(v.message.find("overruns the 1024 B arena by 8 B"),
            std::string::npos)
      << v.message;
}

TEST_F(SanitizerTest, OversubscribedArenaIsReported) {
  ScratchpadShadow shadow(dev_->sanitizer(), hw_.gpu.scratchpad_bytes + 16,
                          hw_.gpu.scratchpad_bytes);
  Violation v = TakeSingle(ViolationCode::kScratchpadOutOfBounds);
  EXPECT_NE(v.message.find("exceeds the"), std::string::npos) << v.message;
}

// --- Negative: warp racecheck ---

TEST_F(SanitizerTest, CrossWarpRaceIsReported) {
  ScratchpadShadow shadow(dev_->sanitizer(), 1024, hw_.gpu.scratchpad_bytes);
  shadow.Store(128, 8, /*warp=*/1);
  shadow.Store(128, 8, /*warp=*/5);  // same word, no sync in between
  Violation v = TakeSingle(ViolationCode::kScratchpadRace);
  EXPECT_EQ(v.warp, 5u);
  EXPECT_NE(v.message.find("warps 1 and 5"), std::string::npos) << v.message;
}

TEST_F(SanitizerTest, SyncRangeClearsTheRaceWindow) {
  ScratchpadShadow shadow(dev_->sanitizer(), 1024, hw_.gpu.scratchpad_bytes);
  shadow.Store(128, 8, /*warp=*/1);
  shadow.SyncRange(128, 8);
  shadow.Store(128, 8, /*warp=*/5);  // now an ordinary handover
  EXPECT_TRUE(dev_->sanitizer()->CheckOk().ok());
}

// --- Negative: SWWC lock protocol ---

TEST_F(SanitizerTest, FlushByNonHolderIsReported) {
  ScratchpadShadow shadow(dev_->sanitizer(), 1024, hw_.gpu.scratchpad_bytes);
  shadow.AcquireLock(/*lock=*/7, /*warp=*/2);
  shadow.NoteFlush(/*lock=*/7, /*warp=*/4);  // warp 4 does not hold lock 7
  shadow.ReleaseLock(/*lock=*/7, /*warp=*/2);
  Violation v = TakeSingle(ViolationCode::kLockProtocol);
  EXPECT_NE(v.message.find("flushed by a warp that does not hold"),
            std::string::npos)
      << v.message;
}

TEST_F(SanitizerTest, DoubleAcquireIsReported) {
  ScratchpadShadow shadow(dev_->sanitizer(), 1024, hw_.gpu.scratchpad_bytes);
  shadow.AcquireLock(3, /*warp=*/1);
  shadow.AcquireLock(3, /*warp=*/1);
  shadow.ReleaseLock(3, /*warp=*/1);
  Violation v = TakeSingle(ViolationCode::kLockProtocol);
  EXPECT_NE(v.message.find("re-acquired"), std::string::npos) << v.message;
}

// --- Negative: launch counter lint ---

TEST_F(SanitizerTest, TupleCountMismatchIsReported) {
  dev_->Launch({.name = "short"}, [&](exec::KernelContext& ctx) {
    ctx.ExpectTuples(100, sizeof(Tuple));
    ctx.AddTuples(50);  // dropped half the input
    ctx.Charge(1);
  });
  std::vector<Violation> vs = dev_->sanitizer()->TakeViolations();
  ASSERT_FALSE(vs.empty());
  EXPECT_EQ(vs.front().code, ViolationCode::kCounterInvariant);
  EXPECT_NE(vs.front().message.find("processed 50 tuples, expected 100"),
            std::string::npos)
      << vs.front().message;
}

TEST_F(SanitizerTest, ZeroIssueSlotsIsReported) {
  dev_->Launch({.name = "freebie"}, [&](exec::KernelContext& ctx) {
    ctx.ExpectTuples(10, 0);
    ctx.AddTuples(10);  // work with no compute charged
  });
  Violation v = TakeSingle(ViolationCode::kCounterInvariant);
  EXPECT_NE(v.message.find("zero issue slots"), std::string::npos)
      << v.message;
}

// --- Clean runs: the instrumented partitioners across the fanout range ---

class CleanRunTest : public ::testing::TestWithParam<uint32_t> {};

PartitionRun PartitionCleanly(partition::GpuPartitioner& algo,
                              uint32_t bits, uint64_t n) {
  sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(64);
  exec::Device dev(hw, /*sanitize=*/true);
  data::WorkloadConfig cfg;
  cfg.r_tuples = n;
  cfg.s_tuples = n;
  auto wl = data::GenerateWorkload(dev.allocator(), cfg);
  CHECK_OK(wl.status());
  ColumnInput input = ColumnInput::Of(wl->r);
  RadixConfig radix{0, bits};
  PartitionLayout layout = partition::CpuPrefixSum(dev, input, radix, 8);
  auto out = dev.allocator().AllocateCpu(layout.padded_tuples() *
                                         sizeof(Tuple));
  CHECK_OK(out.status());
  PartitionRun run = algo.PartitionColumns(dev, input, layout, *out, {});
  // Consume findings before teardown (Device CHECK-fails on leftovers) so
  // a violation surfaces as a test failure with its message instead.
  std::vector<Violation> vs = dev.sanitizer()->TakeViolations();
  EXPECT_TRUE(vs.empty()) << vs.size() << " violation(s), first: "
                          << vs.front().message;
  return run;
}

TEST_P(CleanRunTest, SharedGpuStaysQuiet) {
  partition::SharedPartitioner shared;
  PartitionCleanly(shared, GetParam(), 100000);
}

TEST_P(CleanRunTest, HierarchicalGpuStaysQuiet) {
  partition::HierarchicalPartitioner hierarchical;
  PartitionCleanly(hierarchical, GetParam(), 100000);
}

// Fanouts 4, 512, 2048: bits 2 / 9 / 11 (the Figure 18 sweep endpoints and
// the knee where SwwcBufferTuples drops to 2 tuples per buffer).
INSTANTIATE_TEST_SUITE_P(Fanouts, CleanRunTest,
                         ::testing::Values(2u, 9u, 11u),
                         [](const auto& info) {
                           return "fanout" +
                                  std::to_string(1u << info.param);
                         });

// --- Figure 18b regression: tuples per write transaction ---

TEST(Figure18bRegression, SharedTuplesPerTransactionAtLowFanout) {
  // Fanout 4: 1024-tuple buffers flush as full 128 B transactions carrying
  // 8 tuples each; only per-slice tail flushes fall short.
  partition::SharedPartitioner shared;
  PartitionRun run = PartitionCleanly(shared, /*bits=*/2, 100000);
  EXPECT_GE(run.TuplesPerWriteTxn(), 7.0) << run.TuplesPerWriteTxn();
  EXPECT_LE(run.TuplesPerWriteTxn(), 8.05) << run.TuplesPerWriteTxn();
}

TEST(Figure18bRegression, SharedTuplesPerTransactionAtFanout2048) {
  // Fanout 2048: SwwcBufferTuples caps the buffer at 2 tuples (32 B), so
  // every flush underfills the 128 B transaction — the write-combining
  // collapse of Figure 18b.
  partition::SharedPartitioner shared;
  PartitionRun run = PartitionCleanly(shared, /*bits=*/11, 100000);
  EXPECT_GE(run.TuplesPerWriteTxn(), 1.4) << run.TuplesPerWriteTxn();
  EXPECT_LE(run.TuplesPerWriteTxn(), 2.05) << run.TuplesPerWriteTxn();
}

}  // namespace
}  // namespace triton::sanitizer
