// Tests for the benchmark-reporting layer: the canonical JSON writer and
// the Reporter's determinism contract. The round-trip test is the
// load-bearing one — it re-measures the same join at 1 and 8 worker
// threads and demands *byte-identical* serialized reports, which is the
// property tools/bench_regress.py builds its exact baseline diff on.

#include <gtest/gtest.h>

#include <charconv>
#include <cmath>
#include <limits>
#include <string>

#include "bench/reporter.h"
#include "core/triton_join.h"
#include "data/generator.h"
#include "exec/block_executor.h"
#include "exec/device.h"
#include "sim/hw_spec.h"
#include "util/json.h"

namespace triton {
namespace {

using util::JsonWriter;

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter w;
  w.BeginObject();
  w.EndObject();
  EXPECT_EQ(w.str(), "{}\n");

  JsonWriter a;
  a.BeginArray();
  a.EndArray();
  EXPECT_EQ(a.str(), "[]\n");
}

TEST(JsonWriterTest, NestedStructureAndIndentation) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("fig");
  w.Key("points");
  w.BeginArray();
  w.BeginObject();
  w.Key("x");
  w.Int(1);
  w.EndObject();
  w.EndArray();
  w.Key("empty");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"name\": \"fig\",\n"
            "  \"points\": [\n"
            "    {\n"
            "      \"x\": 1\n"
            "    }\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}\n");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::Escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::Escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonWriter::Escape("\b\f\r"), "\\b\\f\\r");
  EXPECT_EQ(JsonWriter::Escape(std::string_view("\x01\x1f", 2)),
            "\\u0001\\u001f");
  // Non-ASCII UTF-8 passes through untouched.
  EXPECT_EQ(JsonWriter::Escape("µs"), "µs");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeStrings) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(-std::numeric_limits<double>::infinity());
  w.Double(1.5);
  w.EndArray();
  EXPECT_EQ(w.str(),
            "[\n"
            "  \"NaN\",\n"
            "  \"Infinity\",\n"
            "  \"-Infinity\",\n"
            "  1.5\n"
            "]\n");
}

TEST(JsonWriterTest, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.0, -2.5, 0.1, 1e300, 5e-324,
                   0.30000000000000004, 1234567890.123}) {
    std::string s = JsonWriter::FormatDouble(v);
    double parsed = 0.0;
    auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), parsed);
    ASSERT_EQ(ec, std::errc()) << s;
    ASSERT_EQ(ptr, s.data() + s.size()) << s;
    EXPECT_EQ(parsed, v) << s;
  }
  // Shortest form: no trailing zeros from fixed-width printf formats.
  EXPECT_EQ(JsonWriter::FormatDouble(0.1), "0.1");
}

TEST(JsonWriterTest, IntegerWidths) {
  JsonWriter w;
  w.BeginArray();
  w.Int(-9223372036854775807LL - 1);
  w.Uint(18446744073709551615ULL);
  w.EndArray();
  EXPECT_EQ(w.str(),
            "[\n"
            "  -9223372036854775808,\n"
            "  18446744073709551615\n"
            "]\n");
}

// --- Reporter determinism round trip ---

/// Scoped worker-pool override; restores the previous size.
class ThreadsGuard {
 public:
  explicit ThreadsGuard(uint32_t threads)
      : prev_(exec::BlockExecutor::Global().threads()) {
    exec::BlockExecutor::Global().SetThreads(threads);
  }
  ~ThreadsGuard() { exec::BlockExecutor::Global().SetThreads(prev_); }

 private:
  uint32_t prev_;
};

/// Measures a small Triton join and serializes it exactly as a bench
/// binary would.
std::string ReportAt(uint32_t threads) {
  ThreadsGuard guard(threads);
  bench::Reporter reporter;
  reporter.Configure("test_fig", "Test figure", "Round trip", "test machine",
                     /*scale=*/2048, /*runs=*/2, /*quick=*/true);
  const sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(2048);
  const uint64_t n = 128 * 1024;
  bench::Measurement meas;
  for (int rep = 0; rep < 2; ++rep) {
    exec::Device dev(hw);
    data::WorkloadConfig cfg;
    cfg.r_tuples = n;
    cfg.s_tuples = n;
    cfg.seed = 42 + static_cast<uint64_t>(rep);
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    CHECK_OK(wl.status());
    core::TritonJoin join({.result_mode = join::ResultMode::kAggregate});
    auto run = join.Run(dev, wl->r, wl->s);
    CHECK_OK(run.status());
    CHECK_EQ(run->matches, n);
    meas.AddRun(run->elapsed, run->Throughput(n, n) / 1e9, run->totals);
  }
  reporter.Add({.series = "Triton",
                .axis = "mtuples_per_relation",
                .x = 128.0,
                .has_x = true,
                .unit = "gtuples_per_s",
                .m = meas,
                .extra = {{"checksum_ok", 1.0}}});
  return reporter.ToJson();
}

TEST(ReporterRoundTripTest, ByteIdenticalAcrossThreadCounts) {
  std::string serial = ReportAt(1);
  std::string parallel = ReportAt(8);
  EXPECT_EQ(serial, parallel)
      << "the report serialization must not depend on the worker pool";
  // And across reruns at the same thread count.
  EXPECT_EQ(parallel, ReportAt(8));
}

TEST(ReporterRoundTripTest, ReportContainsModeledQuantitiesOnly) {
  std::string report = ReportAt(2);
  // Spot-check the schema: identity, the point, its counters...
  EXPECT_NE(report.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(report.find("\"figure\": \"test_fig\""), std::string::npos);
  EXPECT_NE(report.find("\"series\": \"Triton\""), std::string::npos);
  EXPECT_NE(report.find("\"gpu_mem_read\""), std::string::npos);
  EXPECT_NE(report.find("\"checksum_ok\": 1"), std::string::npos);
  // ...and the absence of volatile host observations (stdout only).
  EXPECT_EQ(report.find("wall"), std::string::npos);
  EXPECT_EQ(report.find("threads"), std::string::npos);
}

}  // namespace
}  // namespace triton
