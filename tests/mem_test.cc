#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exec/device.h"
#include "mem/allocator.h"
#include "mem/buffer.h"
#include "sanitizer/sanitizer.h"
#include "sim/hw_spec.h"
#include "util/units.h"

namespace triton::mem {
namespace {

using sim::HwSpec;
using sim::PageLocation;
using util::kKiB;
using util::kMiB;

class AllocatorTest : public ::testing::Test {
 protected:
  // Scale 64: GPU capacity 256 MiB, page 32 KiB.
  HwSpec hw_ = HwSpec::Ac922NvLink().Scaled(64);
  Allocator alloc_{hw_};
};

TEST_F(AllocatorTest, GpuAllocationTracksUsage) {
  auto buf = alloc_.AllocateGpu(1 * kMiB);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(alloc_.gpu_used(), 1 * kMiB);
  EXPECT_TRUE(buf->valid());
  EXPECT_EQ(buf->size(), 1 * kMiB);
  EXPECT_EQ(buf->GpuBytes(), 1 * kMiB);
  alloc_.Free(*buf);
  EXPECT_EQ(alloc_.gpu_used(), 0u);
}

TEST_F(AllocatorTest, GpuCapacityEnforced) {
  auto big = alloc_.AllocateGpu(alloc_.gpu_capacity() + 1);
  EXPECT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), util::StatusCode::kOutOfMemory);

  auto exact = alloc_.AllocateGpu(alloc_.gpu_capacity());
  ASSERT_TRUE(exact.ok());
  auto one_more = alloc_.AllocateGpu(1);
  EXPECT_FALSE(one_more.ok());
  alloc_.Free(*exact);
}

TEST_F(AllocatorTest, CpuAllocationDoesNotTouchGpuBudget) {
  auto buf = alloc_.AllocateCpu(8 * kMiB);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(alloc_.gpu_used(), 0u);
  EXPECT_GE(alloc_.cpu_used(), 8 * kMiB);
  EXPECT_EQ(buf->GpuBytes(), 0u);
  alloc_.Free(*buf);
}

TEST_F(AllocatorTest, ZeroByteAllocationRejected) {
  EXPECT_FALSE(alloc_.AllocateGpu(0).ok());
}

TEST_F(AllocatorTest, BufferIsPageAligned) {
  auto buf = alloc_.AllocateCpu(100);
  ASSERT_TRUE(buf.ok());
  uint64_t align = std::min<uint64_t>(hw_.tlb.page_bytes, 1 * kMiB);
  EXPECT_EQ(buf->base_addr() % align, 0u);
  alloc_.Free(*buf);
}

TEST_F(AllocatorTest, MoveTransfersOwnership) {
  auto buf = alloc_.AllocateGpu(1 * kMiB);
  ASSERT_TRUE(buf.ok());
  Buffer moved = std::move(*buf);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(buf->valid());
  EXPECT_EQ(alloc_.gpu_used(), 1 * kMiB);
  alloc_.Free(moved);
  EXPECT_EQ(alloc_.gpu_used(), 0u);
}

TEST_F(AllocatorTest, DestructionFreesAutomatically) {
  {
    auto buf = alloc_.AllocateGpu(2 * kMiB);
    ASSERT_TRUE(buf.ok());
    EXPECT_EQ(alloc_.gpu_used(), 2 * kMiB);
  }
  EXPECT_EQ(alloc_.gpu_used(), 0u);
}

TEST_F(AllocatorTest, UniformBuffersReportUniformLocation) {
  auto gpu = alloc_.AllocateGpu(4 * kMiB);
  auto cpu = alloc_.AllocateCpu(4 * kMiB);
  ASSERT_TRUE(gpu.ok());
  ASSERT_TRUE(cpu.ok());
  for (uint64_t off = 0; off < 4 * kMiB; off += 512 * kKiB) {
    EXPECT_EQ(gpu->LocationOf(off), PageLocation::kGpuMem);
    EXPECT_EQ(cpu->LocationOf(off), PageLocation::kCpuMem);
  }
  alloc_.Free(*gpu);
  alloc_.Free(*cpu);
}

TEST_F(AllocatorTest, InterleavedSplitsByRequestedFraction) {
  // One third GPU: pattern should be ~1 GPU page per 2 CPU pages.
  uint64_t total = 12 * kMiB;
  auto buf = alloc_.AllocateInterleaved(total, total / 3);
  ASSERT_TRUE(buf.ok());
  double frac = static_cast<double>(buf->GpuBytes()) / buf->size();
  EXPECT_NEAR(frac, 1.0 / 3.0, 0.05);
  EXPECT_EQ(alloc_.gpu_used(), buf->GpuBytes());

  // Pages of both kinds are spread through the array, not clustered: check
  // that both locations appear in every quarter of the buffer.
  uint64_t quarter = buf->size() / 4;
  for (int q = 0; q < 4; ++q) {
    bool saw_gpu = false, saw_cpu = false;
    for (uint64_t off = q * quarter; off < (q + 1) * quarter;
         off += buf->page_bytes()) {
      if (buf->LocationOf(off) == PageLocation::kGpuMem) saw_gpu = true;
      else saw_cpu = true;
    }
    EXPECT_TRUE(saw_gpu) << "quarter " << q;
    EXPECT_TRUE(saw_cpu) << "quarter " << q;
  }
  alloc_.Free(*buf);
}

TEST_F(AllocatorTest, InterleavedDegeneratesToUniform) {
  auto all_cpu = alloc_.AllocateInterleaved(4 * kMiB, 0);
  ASSERT_TRUE(all_cpu.ok());
  EXPECT_EQ(all_cpu->GpuBytes(), 0u);
  auto all_gpu = alloc_.AllocateInterleaved(4 * kMiB, 4 * kMiB);
  ASSERT_TRUE(all_gpu.ok());
  EXPECT_EQ(all_gpu->GpuBytes(), 4 * kMiB);
  alloc_.Free(*all_cpu);
  alloc_.Free(*all_gpu);
}

TEST_F(AllocatorTest, InterleavedGpuPortionCountsAgainstCapacity) {
  uint64_t cap = alloc_.gpu_capacity();
  // Asking for more GPU bytes than capacity within an interleaved buffer
  // must fail.
  auto too_big = alloc_.AllocateInterleaved(4 * cap, 2 * cap);
  EXPECT_FALSE(too_big.ok());
}

// --- Query arenas: checkpoint/rewind of the simulated address space ---

TEST_F(AllocatorTest, ArenaRewindRestoresSimulatedAddresses) {
  const uint64_t arena1 = alloc_.BeginArena();
  auto a = alloc_.AllocateCpu(1 * kMiB);
  ASSERT_TRUE(a.ok());
  const uint64_t addr1 = a->base_addr();
  alloc_.Free(*a);
  ASSERT_TRUE(alloc_.EndArena(arena1).ok());

  // A second arena generation replays the exact same simulated addresses:
  // that is what makes per-query TLB physics history-independent.
  const uint64_t arena2 = alloc_.BeginArena();
  auto b = alloc_.AllocateCpu(1 * kMiB);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->base_addr(), addr1);
  alloc_.Free(*b);
  ASSERT_TRUE(alloc_.EndArena(arena2).ok());
  EXPECT_EQ(alloc_.open_arenas(), 0u);
}

TEST_F(AllocatorTest, ArenaDoubleReleaseFailsInsteadOfCorrupting) {
  const uint64_t arena = alloc_.BeginArena();
  ASSERT_TRUE(alloc_.EndArena(arena).ok());

  // The bump pointer was already rewound once; a second release must not
  // silently rewind it again under whoever allocated since.
  auto since = alloc_.AllocateCpu(1 * kMiB);
  ASSERT_TRUE(since.ok());
  const uint64_t addr_before = since->base_addr();

  util::Status again = alloc_.EndArena(arena);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), util::StatusCode::kFailedPrecondition);

  auto after = alloc_.AllocateCpu(1 * kMiB);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->base_addr(), addr_before);  // pointer untouched
  alloc_.Free(*since);
  alloc_.Free(*after);
}

TEST_F(AllocatorTest, ArenaWithLiveBuffersRefusesToClose) {
  const uint64_t arena = alloc_.BeginArena();
  auto live = alloc_.AllocateCpu(1 * kMiB);
  ASSERT_TRUE(live.ok());

  // Rewinding under a live buffer would hand its addresses to the next
  // allocation — the use-after-release this API exists to prevent.
  util::Status st = alloc_.EndArena(arena);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(alloc_.open_arenas(), 1u);

  alloc_.Free(*live);
  EXPECT_TRUE(alloc_.EndArena(arena).ok());
}

TEST_F(AllocatorTest, ArenaOutOfOrderReleaseFails) {
  const uint64_t outer = alloc_.BeginArena();
  const uint64_t inner = alloc_.BeginArena();
  util::Status st = alloc_.EndArena(outer);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(alloc_.EndArena(inner).ok());
  EXPECT_TRUE(alloc_.EndArena(outer).ok());
}

TEST_F(AllocatorTest, ArenaUnknownIdFails) {
  EXPECT_EQ(alloc_.EndArena(12345).code(),
            util::StatusCode::kFailedPrecondition);
}

// The sanitizer is the allocator's observer inside a Device: arena misuse
// must surface as a DeviceSanitizer diagnostic, not just a status.
TEST(ArenaSanitizerTest, ViolationsAreReportedToTheSanitizer) {
  sim::HwSpec hw = HwSpec::Ac922NvLink().Scaled(64);
  exec::Device dev(hw, /*sanitize=*/true);
  ASSERT_NE(dev.sanitizer(), nullptr);
  Allocator& alloc = dev.allocator();

  // Live buffer at close → kArenaLiveness naming the arena.
  const uint64_t arena = alloc.BeginArena();
  auto live = alloc.AllocateCpu(64 * kKiB);
  ASSERT_TRUE(live.ok());
  EXPECT_FALSE(alloc.EndArena(arena).ok());
  {
    std::vector<sanitizer::Violation> vs = dev.sanitizer()->TakeViolations();
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs.front().code, sanitizer::ViolationCode::kArenaLiveness)
        << vs.front().message;
  }

  // Clean close after the free → no violation.
  alloc.Free(*live);
  EXPECT_TRUE(alloc.EndArena(arena).ok());
  EXPECT_TRUE(dev.sanitizer()->TakeViolations().empty());

  // Double release → kArenaLiveness again.
  EXPECT_FALSE(alloc.EndArena(arena).ok());
  {
    std::vector<sanitizer::Violation> vs = dev.sanitizer()->TakeViolations();
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs.front().code, sanitizer::ViolationCode::kArenaLiveness)
        << vs.front().message;
  }
}

TEST(PlacementTest, LocationPattern) {
  Placement p{1, 2};  // 1 GPU page then 2 CPU pages per group
  EXPECT_EQ(p.LocationOfPage(0), PageLocation::kGpuMem);
  EXPECT_EQ(p.LocationOfPage(1), PageLocation::kCpuMem);
  EXPECT_EQ(p.LocationOfPage(2), PageLocation::kCpuMem);
  EXPECT_EQ(p.LocationOfPage(3), PageLocation::kGpuMem);
  EXPECT_NEAR(p.GpuFraction(), 1.0 / 3.0, 1e-12);
}

TEST(PlacementTest, DataIsWritableAcrossWholeBuffer) {
  sim::HwSpec hw = HwSpec::Ac922NvLink().Scaled(64);
  Allocator alloc(hw);
  auto buf = alloc.AllocateInterleaved(8 * kMiB, 2 * kMiB);
  ASSERT_TRUE(buf.ok());
  // Functional memory is contiguous host memory regardless of placement.
  uint64_t* p = buf->as<uint64_t>();
  uint64_t n = buf->size() / sizeof(uint64_t);
  for (uint64_t i = 0; i < n; i += 997) p[i] = i;
  for (uint64_t i = 0; i < n; i += 997) EXPECT_EQ(p[i], i);
  alloc.Free(*buf);
}

}  // namespace
}  // namespace triton::mem
