// Fast-path equivalence: the batched hot loops (util/fastpath.h) change
// how the host computes the simulation, never what is modeled. These tests
// run the same workload through the per-tuple reference path
// (SetFastPathEnabled(false) — the TRITON_FASTPATH=0 fallback) and the
// batched path, at 1 and 8 host worker threads, and assert bit-identical
// functional output, PerfCounters, modeled time and sanitizer diagnostics.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/triton_join.h"
#include "data/generator.h"
#include "exec/block_executor.h"
#include "exec/device.h"
#include "join/cpu_radix_join.h"
#include "partition/hierarchical.h"
#include "partition/input.h"
#include "partition/prefix_sum.h"
#include "partition/shared.h"
#include "sanitizer/sanitizer.h"
#include "sim/hw_spec.h"
#include "util/bits.h"
#include "util/fastpath.h"

namespace triton {
namespace {

/// Everything the fast path must not change about one run.
struct Outcome {
  std::vector<uint8_t> bytes;          // functional output buffer contents
  sim::PerfCounters counters;          // modeled hardware counters
  uint64_t aux = 0;                    // flushes / matches
  uint64_t checksum = 0;               // join result checksum
  double elapsed = 0.0;                // modeled seconds (exact compare)
  std::vector<std::string> diags;      // sanitizer messages, in order
};

void ExpectSameOutcome(const Outcome& a, const Outcome& b,
                       const char* what) {
  EXPECT_EQ(a.bytes, b.bytes) << what << ": functional output differs";
  EXPECT_TRUE(a.counters == b.counters) << what << ": counters differ";
  EXPECT_EQ(a.aux, b.aux) << what;
  EXPECT_EQ(a.checksum, b.checksum) << what;
  EXPECT_EQ(a.elapsed, b.elapsed) << what << ": modeled time differs";
  EXPECT_EQ(a.diags, b.diags) << what << ": sanitizer diagnostics differ";
}

std::vector<std::string> DrainDiags(exec::Device& dev) {
  std::vector<std::string> out;
  if (dev.sanitizer() == nullptr) return out;
  for (const sanitizer::Violation& v : dev.sanitizer()->TakeViolations()) {
    out.push_back(v.message);
  }
  return out;
}

class FastPathTest : public ::testing::Test {
 protected:
  void SetUp() override { hw_ = sim::HwSpec::Ac922NvLink().Scaled(64); }

  void TearDown() override {
    // Restore process defaults for any sibling code in this binary.
    util::SetFastPathEnabled(true);
    exec::BlockExecutor::Global().SetThreads(0);
  }

  /// Runs one GPU partitioner end-to-end with the given mode and thread
  /// count; the sanitizer is on (tests/sanitizer_default.cc).
  Outcome RunPartition(partition::GpuPartitioner& p, bool hierarchical,
                       uint32_t fanout, bool fast, uint32_t threads) {
    util::SetFastPathEnabled(fast);
    exec::BlockExecutor::Global().SetThreads(threads);
    exec::Device dev(hw_);
    data::WorkloadConfig cfg;
    cfg.r_tuples = 96 * 1024;
    cfg.s_tuples = 1024;
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    CHECK_OK(wl.status());
    partition::ColumnInput input = partition::ColumnInput::Of(wl->r);
    partition::RadixConfig radix{0, util::FloorLog2(fanout)};
    uint32_t blocks =
        hierarchical ? partition::HierarchicalRecommendedBlocks(
                           {}, hw_, dev.allocator().gpu_free(), fanout)
                     : hw_.gpu.num_sms;
    partition::PartitionLayout layout =
        CpuPrefixSum(dev, input, radix, blocks);
    auto out = dev.allocator().AllocateCpu(layout.padded_tuples() *
                                           sizeof(partition::Tuple));
    CHECK_OK(out.status());
    partition::PartitionRun run =
        p.PartitionColumns(dev, input, layout, *out, {});
    Outcome o;
    // Snapshot the partitioned slices only: the padding gaps between
    // slices are never written (host allocations are not zeroed, and the
    // fast path's block pool recycles storage), so their contents are
    // outside the result contract.
    const auto* rows = out->as<partition::Tuple>();
    for (uint32_t part = 0; part < layout.fanout(); ++part) {
      layout.ForEachSlice(part, [&](uint64_t begin, uint64_t count) {
        const auto* b = reinterpret_cast<const uint8_t*>(rows + begin);
        o.bytes.insert(o.bytes.end(), b,
                       b + count * sizeof(partition::Tuple));
      });
    }
    o.counters = run.record.counters;
    o.aux = run.flushes;
    o.elapsed = run.Elapsed();
    o.diags = DrainDiags(dev);
    EXPECT_TRUE(o.diags.empty()) << o.diags.front();
    return o;
  }

  /// Runs a full join (Triton or CPU radix) and snapshots its result.
  template <typename JoinFn>
  Outcome RunJoin(JoinFn&& join, bool fast, uint32_t threads) {
    util::SetFastPathEnabled(fast);
    exec::BlockExecutor::Global().SetThreads(threads);
    exec::Device dev(hw_);
    data::WorkloadConfig cfg;
    cfg.r_tuples = 64 * 1024;
    cfg.s_tuples = 64 * 1024;
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    CHECK_OK(wl.status());
    auto run = join(dev, wl->r, wl->s);
    CHECK_OK(run.status());
    Outcome o;
    o.counters = run->totals;
    o.aux = run->matches;
    o.checksum = run->checksum;
    o.elapsed = run->elapsed;
    o.diags = DrainDiags(dev);
    EXPECT_TRUE(o.diags.empty()) << o.diags.front();
    return o;
  }

  /// Cross-product comparison: the per-tuple path at 1 thread is the
  /// reference; the batched path and every thread count must match it.
  template <typename RunFn>
  void ExpectModeAndThreadInvariant(RunFn&& run, const char* what) {
    const Outcome ref = run(/*fast=*/false, /*threads=*/1);
    ExpectSameOutcome(ref, run(false, 8), (std::string(what) + " slow@8").c_str());
    ExpectSameOutcome(ref, run(true, 1), (std::string(what) + " fast@1").c_str());
    ExpectSameOutcome(ref, run(true, 8), (std::string(what) + " fast@8").c_str());
  }

  sim::HwSpec hw_;
};

TEST_F(FastPathTest, SharedPartitionerBitIdentical) {
  partition::SharedPartitioner shared;
  ExpectModeAndThreadInvariant(
      [&](bool fast, uint32_t threads) {
        return RunPartition(shared, /*hierarchical=*/false, /*fanout=*/64,
                            fast, threads);
      },
      "Shared");
}

TEST_F(FastPathTest, HierarchicalPartitionerBitIdentical) {
  partition::HierarchicalPartitioner hier;
  ExpectModeAndThreadInvariant(
      [&](bool fast, uint32_t threads) {
        return RunPartition(hier, /*hierarchical=*/true, /*fanout=*/128,
                            fast, threads);
      },
      "Hierarchical");
}

TEST_F(FastPathTest, TritonJoinBitIdentical) {
  ExpectModeAndThreadInvariant(
      [&](bool fast, uint32_t threads) {
        return RunJoin(
            [](exec::Device& dev, const data::Relation& r,
               const data::Relation& s) {
              return core::TritonJoin(
                         {.scheme = join::HashScheme::kBucketChaining})
                  .Run(dev, r, s);
            },
            fast, threads);
      },
      "TritonJoin");
}

TEST_F(FastPathTest, CpuRadixJoinBitIdentical) {
  ExpectModeAndThreadInvariant(
      [&](bool fast, uint32_t threads) {
        return RunJoin(
            [](exec::Device& dev, const data::Relation& r,
               const data::Relation& s) {
              return join::CpuRadixJoin(
                         {.scheme = join::HashScheme::kBucketChaining})
                  .Run(dev, r, s);
            },
            fast, threads);
      },
      "CpuRadixJoin");
}

// Negative case: a kernel whose accounted flush overruns its allocation
// extent mid-run, with the functional stores issued the way each mode's
// partitioner inner loop issues them (bulk StoreRun vs per-tuple Store).
// The sanitizer must report the same violation, with the same provenance
// and message, in both modes and at both thread counts.
TEST_F(FastPathTest, MidRunOutOfBoundsStoreCaughtIdenticallyInBothModes) {
  auto run = [&](bool fast, uint32_t threads) {
    util::SetFastPathEnabled(fast);
    exec::BlockExecutor::Global().SetThreads(threads);
    exec::Device dev(hw_);
    auto buf = dev.allocator().AllocateCpu(1024);
    CHECK_OK(buf.status());
    const uint64_t tuples[2] = {7, 11};
    dev.Launch({.name = "oob"}, [&](exec::KernelContext& ctx) {
      ctx.SetSanitizerBlock(3);
      ctx.SetSanitizerFlushSite(/*warp=*/2, /*partition=*/5);
      // In-bounds functional stores, issued as the active mode would.
      if (util::FastPathEnabled()) {
        ctx.StoreRun(*buf, 0, tuples, 2);
      } else {
        ctx.Store(*buf, 0, tuples[0]);
        ctx.Store(*buf, 1, tuples[1]);
      }
      // Accounted flush that covers the stores but runs 24 B past the
      // extent — the cursor-overrun shape AccountFlush would produce.
      ctx.WriteNoTlb(*buf, buf->size() - 16, 40, /*random=*/true);
      ctx.WriteNoTlb(*buf, 0, 16, /*random=*/true);
      ctx.AddTuples(2);
      ctx.Charge(2);
    });
    Outcome o;
    o.bytes.assign(buf->data(), buf->data() + 16);
    o.diags = DrainDiags(dev);
    return o;
  };
  const Outcome ref = run(false, 1);
  ASSERT_EQ(ref.diags.size(), 1u);
  EXPECT_NE(ref.diags[0].find("past extent"), std::string::npos)
      << ref.diags[0];
  ExpectSameOutcome(ref, run(false, 8), "oob slow@8");
  ExpectSameOutcome(ref, run(true, 1), "oob fast@1");
  ExpectSameOutcome(ref, run(true, 8), "oob fast@8");
}

}  // namespace
}  // namespace triton
