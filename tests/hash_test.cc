#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "hash/bucket_chain_table.h"
#include "hash/hash_fn.h"
#include "hash/linear_table.h"
#include "hash/perfect_table.h"
#include "util/random.h"

namespace triton::hash {
namespace {

TEST(HashFnTest, MultiplyShiftMixesHighBits) {
  // Successive keys must not map to successive top bits.
  std::vector<int> buckets(64, 0);
  for (uint64_t k = 1; k <= 64000; ++k) {
    ++buckets[HashBits(MultiplyShift(k), 0, 6)];
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(buckets[b], 1000, 300) << "bucket " << b;
  }
}

TEST(HashFnTest, DisjointBitRangesAreIndependent) {
  // Fix a first-pass partition and check second-pass bits still spread.
  std::vector<int> buckets(16, 0);
  int kept = 0;
  for (uint64_t k = 1; k <= 400000; ++k) {
    uint64_t h = MultiplyShift(k);
    if (HashBits(h, 0, 4) != 3) continue;  // one first-pass partition
    ++kept;
    ++buckets[HashBits(h, 4, 4)];
  }
  ASSERT_GT(kept, 10000);
  for (int b = 0; b < 16; ++b) {
    EXPECT_NEAR(buckets[b], kept / 16.0, kept / 16.0 * 0.25) << b;
  }
}

TEST(HashFnTest, RadixPartitionInRange) {
  for (uint64_t k = 1; k < 1000; ++k) {
    EXPECT_LT(RadixPartition(k, 0, 9), 512u);
    EXPECT_LT(RadixPartition(k, 9, 6), 64u);
  }
}

TEST(HashFnTest, ZeroBitsIsZero) {
  EXPECT_EQ(HashBits(MultiplyShift(77), 0, 0), 0u);
}

TEST(PerfectTableTest, InsertProbeRoundTrip) {
  std::vector<Entry> storage(1000);
  PerfectTable t(storage.data(), 1000);
  for (int64_t k = 1; k <= 1000; ++k) t.Insert(k, k * 10);
  for (int64_t k = 1; k <= 1000; ++k) {
    int64_t v = 0;
    ASSERT_TRUE(t.Probe(k, &v));
    EXPECT_EQ(v, k * 10);
  }
}

TEST(PerfectTableTest, OutOfDomainProbeMisses) {
  std::vector<Entry> storage(10);
  PerfectTable t(storage.data(), 10);
  t.Insert(5, 50);
  int64_t v = 0;
  EXPECT_FALSE(t.Probe(11, &v));
  EXPECT_FALSE(t.Probe(0, &v));
  EXPECT_FALSE(t.Probe(4, &v));  // empty slot
}

TEST(PerfectTableTest, StorageBytesIs16PerKey) {
  EXPECT_EQ(PerfectTable::StorageBytes(2048), 2048u * 16u);
}

TEST(LinearTableTest, CapacityIsPowerOfTwoAtHalfLoad) {
  EXPECT_EQ(LinearTable::CapacityFor(1000), 2048u);
  EXPECT_EQ(LinearTable::CapacityFor(1024), 2048u);
  EXPECT_EQ(LinearTable::CapacityFor(1025), 4096u);
}

TEST(LinearTableTest, InsertProbeRoundTrip) {
  uint64_t cap = LinearTable::CapacityFor(5000);
  std::vector<Entry> storage(cap);
  LinearTable t(storage.data(), cap);
  util::Rng rng(5);
  std::map<int64_t, int64_t> ref;
  while (ref.size() < 5000) {
    int64_t k = static_cast<int64_t>(rng.NextBounded(1 << 30)) + 1;
    if (ref.count(k)) continue;
    ref[k] = k * 3;
    t.Insert(k, k * 3);
  }
  for (const auto& [k, v] : ref) {
    int64_t got = 0;
    bool found = false;
    t.Probe(k, &got, &found);
    ASSERT_TRUE(found) << k;
    EXPECT_EQ(got, v);
  }
  // Missing keys report not-found.
  int64_t got = 0;
  bool found = true;
  t.Probe(-7, &got, &found);
  EXPECT_FALSE(found);
}

TEST(LinearTableTest, ProbeTouchesAtLeastOneSlot) {
  uint64_t cap = LinearTable::CapacityFor(100);
  std::vector<Entry> storage(cap);
  LinearTable t(storage.data(), cap);
  for (int64_t k = 1; k <= 100; ++k) t.Insert(k, k);
  uint64_t total_touches = 0;
  for (int64_t k = 1; k <= 100; ++k) {
    int64_t v;
    bool found;
    total_touches += t.Probe(k, &v, &found);
    EXPECT_TRUE(found);
  }
  EXPECT_GE(total_touches, 100u);
  // At 50% load, average probe chains stay short.
  EXPECT_LT(total_touches, 300u);
}

TEST(BucketChainTableTest, InsertProbeRoundTrip) {
  constexpr uint32_t kBuckets = 2048;
  constexpr uint32_t kMax = 4096;
  std::vector<uint32_t> heads(kBuckets, 0);
  std::vector<int64_t> keys(kMax), values(kMax);
  std::vector<uint32_t> next(kMax);
  BucketChainTable t(heads.data(), kBuckets, keys.data(), values.data(),
                     next.data(), kMax);
  for (int64_t k = 1; k <= 4000; ++k) t.Insert(k, k + 7, /*radix_shift=*/0);
  EXPECT_EQ(t.size(), 4000u);
  for (int64_t k = 1; k <= 4000; ++k) {
    int64_t matched = -1;
    t.Probe(k, 0, [&](int64_t v) { matched = v; });
    EXPECT_EQ(matched, k + 7);
  }
  int64_t matched = -1;
  t.Probe(99999, 0, [&](int64_t v) { matched = v; });
  EXPECT_EQ(matched, -1);
}

TEST(BucketChainTableTest, DuplicateKeysAllMatch) {
  constexpr uint32_t kBuckets = 64;
  std::vector<uint32_t> heads(kBuckets, 0);
  std::vector<int64_t> keys(16), values(16);
  std::vector<uint32_t> next(16);
  BucketChainTable t(heads.data(), kBuckets, keys.data(), values.data(),
                     next.data(), 16);
  t.Insert(42, 1, 0);
  t.Insert(42, 2, 0);
  t.Insert(42, 3, 0);
  std::vector<int64_t> matches;
  t.Probe(42, 0, [&](int64_t v) { matches.push_back(v); });
  EXPECT_EQ(matches.size(), 3u);
}

TEST(BucketChainTableTest, ClearResets) {
  constexpr uint32_t kBuckets = 64;
  std::vector<uint32_t> heads(kBuckets, 0);
  std::vector<int64_t> keys(16), values(16);
  std::vector<uint32_t> next(16);
  BucketChainTable t(heads.data(), kBuckets, keys.data(), values.data(),
                     next.data(), 16);
  t.Insert(1, 10, 0);
  t.Clear();
  EXPECT_EQ(t.size(), 0u);
  int64_t matched = -1;
  t.Probe(1, 0, [&](int64_t v) { matched = v; });
  EXPECT_EQ(matched, -1);
}

TEST(BucketChainTableTest, StorageFitsScratchpadWithPartition) {
  // The paper's configuration: 2048-bucket table for a scratchpad-resident
  // partition. With ~2048 tuples per partition the table plus tuple arrays
  // must fit in 64 KiB.
  uint64_t bytes = BucketChainTable::StorageBytes(2048, 2048);
  EXPECT_LE(bytes, 64u * 1024u);
}

TEST(BucketChainTableTest, ChainWalkCountsCollisions) {
  constexpr uint32_t kBuckets = 2;  // force collisions
  std::vector<uint32_t> heads(kBuckets, 0);
  std::vector<int64_t> keys(8), values(8);
  std::vector<uint32_t> next(8);
  BucketChainTable t(heads.data(), kBuckets, keys.data(), values.data(),
                     next.data(), 8);
  for (int64_t k = 1; k <= 8; ++k) t.Insert(k, k, 0);
  uint32_t walked = t.Probe(1, 0, [](int64_t) {});
  EXPECT_GE(walked, 1u);
  EXPECT_LE(walked, 8u);
}

}  // namespace
}  // namespace triton::hash
