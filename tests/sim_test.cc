#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/hw_spec.h"
#include "sim/packetizer.h"
#include "sim/perf_counters.h"
#include "sim/tlb.h"
#include "util/units.h"

namespace triton::sim {
namespace {

using util::kGiB;
using util::kMiB;

// --- HwSpec ---

TEST(HwSpecTest, Ac922PresetMatchesPaperConstants) {
  HwSpec hw = HwSpec::Ac922NvLink();
  EXPECT_EQ(hw.gpu.num_sms, 80u);
  EXPECT_EQ(hw.gpu_mem.capacity, 16 * kGiB);
  EXPECT_DOUBLE_EQ(hw.gpu_mem.bandwidth, 900e9);
  EXPECT_DOUBLE_EQ(hw.link.raw_bandwidth_per_dir, 75e9);
  EXPECT_EQ(hw.tlb.l2_coverage, 8 * kGiB);
  EXPECT_EQ(hw.tlb.l2_entry_range, 32 * kMiB);
  EXPECT_EQ(hw.tlb.num_walkers, 12u);
  EXPECT_NEAR(hw.tlb.cpu_mem_walk_latency, 3186.4e-9, 1e-12);
}

TEST(HwSpecTest, ScaledDividesCapacitiesOnly) {
  HwSpec hw = HwSpec::Ac922NvLink().Scaled(64);
  EXPECT_EQ(hw.gpu_mem.capacity, 16 * kGiB / 64);
  EXPECT_EQ(hw.tlb.l2_coverage, 8 * kGiB / 64);
  EXPECT_EQ(hw.tlb.page_bytes, 2 * kMiB / 64);
  // Bandwidths and latencies unchanged.
  EXPECT_DOUBLE_EQ(hw.gpu_mem.bandwidth, 900e9);
  EXPECT_DOUBLE_EQ(hw.link.raw_bandwidth_per_dir, 75e9);
  EXPECT_NEAR(hw.tlb.cpu_mem_walk_latency, 3186.4e-9, 1e-12);
  EXPECT_DOUBLE_EQ(hw.scale, 64.0);
}

TEST(HwSpecTest, ScaledPreservesCapacityRatios) {
  HwSpec base = HwSpec::Ac922NvLink();
  HwSpec scaled = base.Scaled(32);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(base.tlb.l2_coverage) / base.gpu_mem.capacity,
      static_cast<double>(scaled.tlb.l2_coverage) / scaled.gpu_mem.capacity);
}

TEST(HwSpecTest, PciePresetIsSlower) {
  HwSpec nvlink = HwSpec::Ac922NvLink();
  HwSpec pcie = HwSpec::Ac922Pcie3();
  EXPECT_LT(pcie.link.raw_bandwidth_per_dir,
            nvlink.link.raw_bandwidth_per_dir / 4);
}

// --- Packetizer ---

class PacketizerTest : public ::testing::Test {
 protected:
  InterconnectSpec spec_ = HwSpec::Ac922NvLink().link;
  Packetizer pkt_{spec_};
};

TEST_F(PacketizerTest, AlignedCachelineWriteIsOneTxn) {
  TxnStats s = pkt_.Access(0, 128, /*is_write=*/true);
  EXPECT_EQ(s.txns, 1u);
  EXPECT_EQ(s.payload, 128u);
  // Full cacheline: header only, no byte-enable extension.
  EXPECT_EQ(s.physical, 128u + 16u);
}

TEST_F(PacketizerTest, SmallWriteCarriesByteEnable) {
  TxnStats s = pkt_.Access(0, 16, /*is_write=*/true);
  EXPECT_EQ(s.txns, 1u);
  // Padded to a 32-byte sector + header + byte-enable extension.
  EXPECT_EQ(s.physical, 32u + 16u + 16u);
}

TEST_F(PacketizerTest, SmallReadsBeatSmallWrites) {
  // The paper measures small reads 44-74% faster than small writes
  // (Figure 6a); the byte-enable extension is the difference.
  for (uint64_t size : {4, 8, 16, 32, 64}) {
    TxnStats r = pkt_.Access(0, size, /*is_write=*/false);
    TxnStats w = pkt_.Access(0, size, /*is_write=*/true);
    EXPECT_LT(r.physical, w.physical) << size;
  }
}

TEST_F(PacketizerTest, SmallReadPaddedTo32Bytes) {
  TxnStats s = pkt_.Access(0, 4, /*is_write=*/false);
  EXPECT_EQ(s.txns, 1u);
  EXPECT_EQ(s.payload, 4u);
  EXPECT_EQ(s.physical, 32u + 16u);
}

TEST_F(PacketizerTest, MisalignedAccessSplitsAtCacheline) {
  // A 128-byte access misaligned by 16 bytes touches two cachelines.
  TxnStats s = pkt_.Access(16, 128, /*is_write=*/true);
  EXPECT_EQ(s.txns, 2u);
  EXPECT_EQ(s.payload, 128u);
  // 112-byte piece + 16-byte piece (padded to a 32 B sector), both partial
  // -> byte-enables.
  EXPECT_EQ(s.physical, (112u + 32u) + (32u + 32u));
}

TEST_F(PacketizerTest, PeakEfficiencyMatchesPaperEffectiveBandwidth) {
  // 128 / (128+16) = 88.9% of 75 GB/s = 66.7 GB/s = 62.1 GiB/s — the lower
  // end of the paper's 62-65.7 GiB/s effective bandwidth estimate.
  double eff = pkt_.PeakSmEfficiency();
  double payload_bw = 75e9 * eff;
  EXPECT_NEAR(payload_bw / static_cast<double>(kGiB), 62.1, 0.1);
}

TEST_F(PacketizerTest, DmaReaches256BytePayloads) {
  TxnStats s = pkt_.Dma(1024, /*is_write=*/true);
  EXPECT_EQ(s.txns, 4u);
  EXPECT_EQ(s.physical, 4 * (256u + 16u));
  // 256/(256+16) = 94.1% of 75 GB/s = 65.7 GiB/s — the paper's upper bound.
  double payload_bw = 75e9 * 256.0 / 272.0;
  EXPECT_NEAR(payload_bw / static_cast<double>(kGiB), 65.7, 0.1);
}

TEST_F(PacketizerTest, BulkMatchesPerLineAccounting) {
  // 1 MiB aligned bulk write == 8192 aligned cacheline writes.
  TxnStats bulk = pkt_.Bulk(0, 1 * kMiB, /*is_write=*/true);
  EXPECT_EQ(bulk.txns, 8192u);
  EXPECT_EQ(bulk.physical, 8192u * 144u);
}

TEST_F(PacketizerTest, BulkHandlesRaggedEdges) {
  // Start at 100 (ragged head of 28), 1000 bytes total.
  TxnStats s = pkt_.Bulk(100, 1000, /*is_write=*/false);
  // Head 28B, full lines 128..1024 (7 lines = 896B), tail 76B.
  EXPECT_EQ(s.payload, 1000u);
  EXPECT_EQ(s.txns, 1u + 7u + 1u);
}

TEST_F(PacketizerTest, ZeroSizeIsFree) {
  TxnStats s = pkt_.Bulk(0, 0, true);
  EXPECT_EQ(s.txns, 0u);
  EXPECT_EQ(s.physical, 0u);
}

// Granularity sweep: bandwidth efficiency must grow monotonically with
// access size and reach peak at 128 B (Figure 6a's shape).
TEST_F(PacketizerTest, EfficiencyGrowsWithGranularityUntil128) {
  double prev = 0.0;
  for (uint64_t size : {4, 8, 16, 32, 64, 128}) {
    TxnStats s = pkt_.Access(0, size, /*is_write=*/true);
    double eff = static_cast<double>(s.payload) / s.physical;
    EXPECT_GT(eff, prev);
    prev = eff;
  }
  // 256-byte aligned access = two perfect cacheline transactions; same
  // efficiency as 128.
  TxnStats s256 = pkt_.Access(0, 256, true);
  EXPECT_DOUBLE_EQ(static_cast<double>(s256.payload) / s256.physical,
                   128.0 / 144.0);
}

// --- TranslationCache / TlbSimulator ---

TEST(TranslationCacheTest, HitsAfterInsert) {
  TranslationCache tc(/*coverage=*/64 * kMiB, /*range=*/1 * kMiB);
  EXPECT_FALSE(tc.Access(0));
  EXPECT_TRUE(tc.Access(0));
  EXPECT_TRUE(tc.Access(512 * 1024));  // same 1 MiB range
  EXPECT_FALSE(tc.Access(1 * kMiB));   // next range
}

TEST(TranslationCacheTest, WorkingSetWithinCoverageHits) {
  TranslationCache tc(64 * kMiB, 1 * kMiB, /*ways=*/8);
  // Touch 32 ranges (half the coverage), then re-touch: all hits.
  for (uint64_t r = 0; r < 32; ++r) tc.Access(r * kMiB);
  uint64_t misses_before = tc.misses();
  for (int rep = 0; rep < 4; ++rep) {
    for (uint64_t r = 0; r < 32; ++r) EXPECT_TRUE(tc.Access(r * kMiB));
  }
  EXPECT_EQ(tc.misses(), misses_before);
}

TEST(TranslationCacheTest, WorkingSetBeyondCoverageThrashes) {
  TranslationCache tc(64 * kMiB, 1 * kMiB, /*ways=*/8);
  // Cycle through 4x the coverage: with LRU, nearly every access misses.
  uint64_t lookups = 0;
  for (int rep = 0; rep < 4; ++rep) {
    for (uint64_t r = 0; r < 256; ++r) {
      tc.Access(r * kMiB);
      ++lookups;
    }
  }
  EXPECT_GT(tc.misses(), lookups * 8 / 10);
}

TEST(TranslationCacheTest, FlushInvalidatesEverything) {
  TranslationCache tc(64 * kMiB, 1 * kMiB);
  tc.Access(0);
  tc.Flush();
  EXPECT_FALSE(tc.Access(0));
}

TEST(TlbSimulatorTest, GpuMemoryLatencies) {
  TlbSpec spec = HwSpec::Ac922NvLink().tlb;
  TlbSimulator tlb(spec);
  PerfCounters c;
  auto miss = tlb.Access(0, PageLocation::kGpuMem, &c);
  EXPECT_FALSE(miss.l2_hit);
  EXPECT_DOUBLE_EQ(miss.latency, spec.gpu_mem_miss_latency);
  auto hit = tlb.Access(0, PageLocation::kGpuMem, &c);
  EXPECT_TRUE(hit.l2_hit);
  EXPECT_DOUBLE_EQ(hit.latency, spec.gpu_mem_hit_latency);
  EXPECT_EQ(c.gpu_tlb_lookups, 2u);
  EXPECT_EQ(c.gpu_tlb_misses, 1u);
  EXPECT_EQ(c.iommu_requests, 0u);  // GPU memory never reaches the IOMMU
}

TEST(TlbSimulatorTest, CpuMemoryMissEscalatesToIommu) {
  TlbSpec spec = HwSpec::Ac922NvLink().tlb;
  TlbSimulator tlb(spec);
  PerfCounters c;
  // Cold access: misses L2 and the L3* layer; one IOMMU walk.
  auto first = tlb.Access(0, PageLocation::kCpuMem, &c);
  EXPECT_FALSE(first.l2_hit);
  EXPECT_FALSE(first.iotlb_hit);
  EXPECT_DOUBLE_EQ(first.latency, spec.cpu_mem_walk_latency);
  EXPECT_EQ(c.iommu_requests, 1u);
  EXPECT_EQ(c.iommu_walks, 1u);

  // After a GPU-TLB flush the L3* layer still holds the range: the access
  // pays the L3 TLB* latency but generates NO IOMMU request — matching the
  // paper's counter data (Figure 14b vs Figure 7b).
  tlb.FlushGpuTlb();
  auto second = tlb.Access(0, PageLocation::kCpuMem, &c);
  EXPECT_FALSE(second.l2_hit);
  EXPECT_TRUE(second.iotlb_hit);
  EXPECT_DOUBLE_EQ(second.latency, spec.cpu_mem_iotlb_latency);
  EXPECT_EQ(c.iommu_requests, 1u);
  EXPECT_EQ(c.iommu_walks, 1u);

  // L2 hit: CPU-memory hit latency.
  auto third = tlb.Access(0, PageLocation::kCpuMem, &c);
  EXPECT_TRUE(third.l2_hit);
  EXPECT_DOUBLE_EQ(third.latency, spec.cpu_mem_hit_latency);
}

// --- CostModel ---

TEST(CostModelTest, LinkBoundKernel) {
  HwSpec hw = HwSpec::Ac922NvLink();
  CostModel cm(hw);
  PerfCounters c;
  c.link_read_physical = static_cast<uint64_t>(75e9);  // 1 second of traffic
  c.link_read_payload = c.link_read_physical;
  KernelTime t = cm.Evaluate(c, hw.gpu.num_sms);
  EXPECT_NEAR(t.link, 1.0, 1e-9);
  EXPECT_STREQ(t.Bottleneck(), "link");
  EXPECT_NEAR(t.Elapsed(), 1.0, 1e-9);
}

TEST(CostModelTest, BidirectionalTrafficIsDerated) {
  HwSpec hw = HwSpec::Ac922NvLink();
  CostModel cm(hw);
  PerfCounters c;
  c.link_read_physical = static_cast<uint64_t>(75e9);
  c.link_write_physical = static_cast<uint64_t>(75e9);
  KernelTime t = cm.Evaluate(c, hw.gpu.num_sms);
  EXPECT_NEAR(t.link, 1.0 / hw.link.bidirectional_efficiency, 1e-6);
}

TEST(CostModelTest, WalkerPoolBoundsTlbMissRate) {
  HwSpec hw = HwSpec::Ac922NvLink();
  CostModel cm(hw);
  PerfCounters c;
  c.iommu_requests = 12'000'000;
  c.iommu_walks = 12'000'000;
  KernelTime t = cm.Evaluate(c, hw.gpu.num_sms);
  // 12M walks x 3186.4ns / 12 walkers = 3.186 s.
  EXPECT_NEAR(t.tlb, 3.1864, 1e-3);
  EXPECT_STREQ(t.Bottleneck(), "tlb");
}

TEST(CostModelTest, ComputeScalesWithSms) {
  HwSpec hw = HwSpec::Ac922NvLink();
  CostModel cm(hw);
  PerfCounters c;
  c.issue_slots = static_cast<uint64_t>(hw.gpu.clock_hz);  // 1 SM-second
  KernelTime t80 = cm.Evaluate(c, 80);
  KernelTime t10 = cm.Evaluate(c, 10);
  EXPECT_NEAR(t10.compute / t80.compute, 8.0, 1e-9);
}

TEST(CostModelTest, GpuRandomWritesDerated) {
  HwSpec hw = HwSpec::Ac922NvLink();
  CostModel cm(hw);
  PerfCounters seq, rnd;
  seq.gpu_mem_write = static_cast<uint64_t>(hw.gpu_mem.bandwidth);
  rnd.gpu_mem_write = static_cast<uint64_t>(hw.gpu_mem.bandwidth);
  rnd.gpu_mem_random_write = rnd.gpu_mem_write;
  KernelTime ts = cm.Evaluate(seq, 80);
  KernelTime tr = cm.Evaluate(rnd, 80);
  EXPECT_NEAR(tr.gpu_mem / ts.gpu_mem, 1.0 / hw.gpu_mem.random_write_derate,
              1e-9);
}

TEST(CostModelTest, LatencyBoundPointerChase) {
  HwSpec hw = HwSpec::Ac922NvLink();
  CostModel cm(hw);
  PerfCounters c;
  // One dependent chain: 1M accesses at 500ns each on 1 SM, 1 warp.
  KernelTime t = cm.Evaluate(c, 1, /*avg_access_latency=*/500e-9,
                             /*latency_bound_accesses=*/1'000'000,
                             /*occupancy_warps_per_sm=*/1);
  EXPECT_NEAR(t.latency, 0.5, 1e-9);
}

TEST(CostModelTest, LinkUtilization) {
  HwSpec hw = HwSpec::Ac922NvLink();
  CostModel cm(hw);
  PerfCounters c;
  c.link_read_physical = static_cast<uint64_t>(37.5e9);
  EXPECT_NEAR(cm.LinkUtilization(c, 1.0), 0.5, 1e-9);
}

TEST(PerfCountersTest, MergeAddsEverything) {
  PerfCounters a, b;
  a.link_read_payload = 100;
  a.tuples = 5;
  b.link_read_payload = 50;
  b.tuples = 3;
  b.iommu_requests = 7;
  a.Merge(b);
  EXPECT_EQ(a.link_read_payload, 150u);
  EXPECT_EQ(a.tuples, 8u);
  EXPECT_EQ(a.iommu_requests, 7u);
}

TEST(PerfCountersTest, DerivedRates) {
  PerfCounters c;
  c.link_write_payload = 1000;
  c.link_write_txns = 10;
  c.tuples = 100;
  c.iommu_requests = 25;
  EXPECT_DOUBLE_EQ(c.AvgWritePayload(), 100.0);
  EXPECT_DOUBLE_EQ(c.IommuRequestsPerTuple(), 0.25);
}

}  // namespace
}  // namespace triton::sim
