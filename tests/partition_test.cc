#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "data/generator.h"
#include "exec/device.h"
#include "partition/cpu_swwc.h"
#include "partition/hierarchical.h"
#include "partition/input.h"
#include "partition/layout.h"
#include "partition/linear.h"
#include "partition/prefix_sum.h"
#include "partition/shared.h"
#include "partition/standard.h"
#include "sim/hw_spec.h"
#include "util/units.h"

namespace triton::partition {
namespace {

using util::kMiB;

class PartitionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hw_ = sim::HwSpec::Ac922NvLink().Scaled(64);
    dev_ = std::make_unique<exec::Device>(hw_);
  }

  /// Generates a workload with `n` R tuples and returns its column input.
  data::Workload MakeWorkload(uint64_t n) {
    data::WorkloadConfig cfg;
    cfg.r_tuples = n;
    cfg.s_tuples = n;
    auto wl = data::GenerateWorkload(dev_->allocator(), cfg);
    CHECK_OK(wl.status());
    return std::move(wl).value();
  }

  /// Verifies every tuple of `input` appears in its correct partition of
  /// the output, and that slice sizes are exact.
  template <typename Input>
  void VerifyPartitioned(const Input& input, const PartitionLayout& layout,
                         const mem::Buffer& out) {
    const Tuple* rows = out.as<Tuple>();
    // 1. Every output slot holds a tuple of the right partition.
    uint64_t total = 0;
    for (uint32_t p = 0; p < layout.fanout(); ++p) {
      layout.ForEachSlice(p, [&](uint64_t begin, uint64_t count) {
        for (uint64_t i = begin; i < begin + count; ++i) {
          ASSERT_EQ(layout.radix().PartitionOf(rows[i].key), p)
              << "tuple at " << i << " in wrong partition";
        }
        total += count;
      });
    }
    ASSERT_EQ(total, input.size());

    // 2. The output is a permutation of the input (multiset equality over
    //    key+value).
    std::map<std::pair<int64_t, int64_t>, int64_t> counts;
    for (uint64_t i = 0; i < input.size(); ++i) {
      Tuple t = input.Get(i);
      ++counts[{t.key, t.value}];
    }
    for (uint32_t p = 0; p < layout.fanout(); ++p) {
      layout.ForEachSlice(p, [&](uint64_t begin, uint64_t count) {
        for (uint64_t i = begin; i < begin + count; ++i) {
          --counts[{rows[i].key, rows[i].value}];
        }
      });
    }
    for (const auto& [kv, c] : counts) {
      ASSERT_EQ(c, 0) << "key " << kv.first;
    }
  }

  /// Runs one algorithm end to end (prefix sum + scatter) and verifies it.
  PartitionRun RunAndVerify(GpuPartitioner& algo, uint64_t n, uint32_t bits,
                            uint32_t blocks = 8) {
    auto wl = MakeWorkload(n);
    ColumnInput input = ColumnInput::Of(wl.r);
    RadixConfig radix{0, bits};
    PartitionLayout layout = GpuPrefixSum(*dev_, input, radix, blocks);
    auto out = dev_->allocator().AllocateCpu(layout.padded_tuples() *
                                             sizeof(Tuple));
    CHECK_OK(out.status());
    PartitionRun run =
        algo.PartitionColumns(*dev_, input, layout, *out, {});
    VerifyPartitioned(input, layout, *out);
    return run;
  }

  sim::HwSpec hw_;
  std::unique_ptr<exec::Device> dev_;
};

// --- Layout ---

TEST_F(PartitionTest, LayoutOffsetsArePaddedAndOrdered) {
  std::vector<std::vector<uint64_t>> hist = {{3, 10}, {5, 1}};
  PartitionLayout layout(RadixConfig{0, 1}, hist, /*pad_tuples=*/8);
  EXPECT_EQ(layout.fanout(), 2u);
  EXPECT_EQ(layout.num_blocks(), 2u);
  EXPECT_EQ(layout.SliceBegin(0, 0), 0u);
  EXPECT_EQ(layout.SliceSize(0, 0), 3u);
  EXPECT_EQ(layout.SliceBegin(0, 1), 8u);   // padded to 8
  EXPECT_EQ(layout.SliceBegin(1, 0), 16u);  // 8+5=13, padded to 16
  EXPECT_EQ(layout.PartitionSize(0), 8u);
  EXPECT_EQ(layout.PartitionSize(1), 11u);
  EXPECT_EQ(layout.data_tuples(), 19u);
  EXPECT_EQ(layout.padded_tuples() % 8, 0u);
}

TEST_F(PartitionTest, HistogramsMatchManualCount) {
  auto wl = MakeWorkload(10000);
  ColumnInput input = ColumnInput::Of(wl.r);
  RadixConfig radix{0, 4};
  auto hist = ComputeHistograms(input, radix, 4);
  ASSERT_EQ(hist.size(), 4u);
  uint64_t total = 0;
  for (const auto& h : hist) {
    for (uint64_t c : h) total += c;
  }
  EXPECT_EQ(total, 10000u);
  // Uniform keys: each of 16 partitions gets ~1/16.
  std::vector<uint64_t> per_partition(16, 0);
  for (const auto& h : hist) {
    for (int p = 0; p < 16; ++p) per_partition[p] += h[p];
  }
  for (int p = 0; p < 16; ++p) {
    EXPECT_NEAR(per_partition[p], 625.0, 625.0 * 0.3);
  }
}

// --- Prefix sums ---

TEST_F(PartitionTest, GpuAndCpuPrefixSumsAgree) {
  auto wl = MakeWorkload(5000);
  ColumnInput input = ColumnInput::Of(wl.r);
  RadixConfig radix{0, 5};
  PartitionLayout a = GpuPrefixSum(*dev_, input, radix, 4);
  PartitionLayout b = CpuPrefixSum(*dev_, input, radix, 4);
  ASSERT_EQ(a.fanout(), b.fanout());
  for (uint32_t p = 0; p < a.fanout(); ++p) {
    EXPECT_EQ(a.PartitionSize(p), b.PartitionSize(p));
    for (uint32_t blk = 0; blk < 4; ++blk) {
      EXPECT_EQ(a.SliceBegin(p, blk), b.SliceBegin(p, blk));
    }
  }
}

TEST_F(PartitionTest, GpuPrefixSumReadsOnlyKeyColumn) {
  auto wl = MakeWorkload(4096);
  ColumnInput input = ColumnInput::Of(wl.r);
  dev_->ClearTrace();
  GpuPrefixSum(*dev_, input, RadixConfig{0, 4}, 4);
  ASSERT_EQ(dev_->trace().size(), 1u);
  // Only the 8-byte key column crosses the link... plus the payload column,
  // which must NOT be read.
  EXPECT_EQ(dev_->trace()[0].counters.link_read_payload,
            4096u * sizeof(data::Key));
}

TEST_F(PartitionTest, CpuPrefixSumIsFasterThanGpu) {
  auto wl = MakeWorkload(1 << 18);
  ColumnInput input = ColumnInput::Of(wl.r);
  dev_->ClearTrace();
  GpuPrefixSum(*dev_, input, RadixConfig{0, 6}, 8);
  CpuPrefixSum(*dev_, input, RadixConfig{0, 6}, 8);
  ASSERT_EQ(dev_->trace().size(), 2u);
  // Figure 20: the CPU scans ~2x faster than the GPU's link-bound read.
  EXPECT_LT(dev_->trace()[1].Elapsed(), dev_->trace()[0].Elapsed());
}

// --- Correctness of all partitioners (parameterized) ---

enum class Algo { kStandard, kLinear, kShared, kHierarchical, kCpu };
using AlgoParam = std::tuple<Algo, uint32_t>;

class AllPartitionersTest
    : public PartitionTest,
      public ::testing::WithParamInterface<AlgoParam> {
 protected:
  std::unique_ptr<GpuPartitioner> MakeGpu(Algo a) {
    switch (a) {
      case Algo::kStandard:
        return std::make_unique<StandardPartitioner>();
      case Algo::kLinear:
        return std::make_unique<LinearPartitioner>();
      case Algo::kShared:
        return std::make_unique<SharedPartitioner>();
      case Algo::kHierarchical:
        return std::make_unique<HierarchicalPartitioner>();
      default:
        return nullptr;
    }
  }
};

TEST_P(AllPartitionersTest, ProducesCorrectPartitions) {
  auto [algo, bits] = GetParam();
  if (algo == Algo::kCpu) {
    auto wl = MakeWorkload(20000);
    ColumnInput input = ColumnInput::Of(wl.r);
    RadixConfig radix{0, bits};
    PartitionLayout layout = CpuPrefixSum(*dev_, input, radix, 4);
    auto out =
        dev_->allocator().AllocateCpu(layout.padded_tuples() * sizeof(Tuple));
    CHECK_OK(out.status());
    CpuSwwcPartitioner cpu;
    cpu.PartitionColumns(*dev_, input, layout, *out, {});
    VerifyPartitioned(input, layout, *out);
    return;
  }
  auto gpu = MakeGpu(algo);
  RunAndVerify(*gpu, 20000, bits, /*blocks=*/4);
}

std::string AlgoParamName(const ::testing::TestParamInfo<AlgoParam>& info) {
  static const char* kNames[] = {"Standard", "Linear", "Shared",
                                 "Hierarchical", "Cpu"};
  return std::string(kNames[static_cast<int>(std::get<0>(info.param))]) +
         "_bits" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllPartitionersTest,
    ::testing::Combine(::testing::Values(Algo::kStandard, Algo::kLinear,
                                         Algo::kShared, Algo::kHierarchical,
                                         Algo::kCpu),
                       ::testing::Values(1u, 3u, 6u, 9u)),
    AlgoParamName);

// --- Second pass over row input ---

TEST_F(PartitionTest, TwoPassPartitioningRefinesPartitions) {
  auto wl = MakeWorkload(30000);
  ColumnInput input = ColumnInput::Of(wl.r);
  RadixConfig pass1{0, 3};
  SharedPartitioner shared;
  PartitionLayout layout1 = GpuPrefixSum(*dev_, input, pass1, 4);
  auto out1 =
      dev_->allocator().AllocateCpu(layout1.padded_tuples() * sizeof(Tuple));
  CHECK_OK(out1.status());
  shared.PartitionColumns(*dev_, input, layout1, *out1, {});

  // Second pass over partition 2's slices.
  RadixConfig pass2 = pass1.Next(4);
  uint32_t p = 2;
  layout1.ForEachSlice(p, [&](uint64_t begin, uint64_t count) {
    RowInput rows(&*out1, begin, count);
    PartitionLayout layout2 = GpuPrefixSum(*dev_, rows, pass2, 2);
    auto out2 = dev_->allocator().AllocateCpu(layout2.padded_tuples() *
                                              sizeof(Tuple));
    CHECK_OK(out2.status());
    shared.PartitionRows(*dev_, rows, layout2, *out2, {});
    VerifyPartitioned(rows, layout2, *out2);
    // All tuples in the sub-partitions still belong to first-pass
    // partition p.
    const Tuple* r2 = out2->as<Tuple>();
    for (uint32_t q = 0; q < layout2.fanout(); ++q) {
      layout2.ForEachSlice(q, [&](uint64_t b2, uint64_t c2) {
        for (uint64_t i = b2; i < b2 + c2; ++i) {
          EXPECT_EQ(pass1.PartitionOf(r2[i].key), p);
          EXPECT_EQ(pass2.PartitionOf(r2[i].key), q);
        }
      });
    }
  });
}

// --- Design-goal properties (Table 1) ---

TEST_F(PartitionTest, SwwcBufferSizing) {
  // 64 KiB scratchpad, 16-byte tuples — the paper's examples.
  EXPECT_EQ(SwwcBufferTuples(64 * 1024, 256), 16u);   // Section 6.2.6
  EXPECT_EQ(SwwcBufferTuples(64 * 1024, 512), 8u);
  EXPECT_EQ(SwwcBufferTuples(64 * 1024, 2048), 2u);   // below 128 B
  EXPECT_EQ(SwwcBufferTuples(64 * 1024, 4096), 1u);
}

TEST_F(PartitionTest, SharedWritesArePerfectlyCoalescedAtModerateFanout) {
  SharedPartitioner shared;
  PartitionRun run = RunAndVerify(shared, 60000, 5, 4);
  // Fanout 32: buffers hold 128 tuples; every flush is whole 128-byte
  // transactions: physical overhead is exactly headers (144/128).
  const auto& c = run.record.counters;
  EXPECT_GT(c.link_write_txns, 0u);
  double tuples_per_txn =
      static_cast<double>(c.tuples) / static_cast<double>(c.link_write_txns);
  EXPECT_NEAR(tuples_per_txn, 8.0, 0.25);  // 8 tuples = one 128 B txn
}

TEST_F(PartitionTest, StandardWastesLinkBandwidth) {
  StandardPartitioner standard;
  SharedPartitioner shared;
  PartitionRun std_run = RunAndVerify(standard, 40000, 9, 4);
  PartitionRun shr_run = RunAndVerify(shared, 40000, 9, 4);
  // Standard's physical write volume carries far more overhead.
  double std_overhead =
      static_cast<double>(std_run.record.counters.link_write_physical) /
      static_cast<double>(std_run.record.counters.link_write_payload);
  double shr_overhead =
      static_cast<double>(shr_run.record.counters.link_write_physical) /
      static_cast<double>(shr_run.record.counters.link_write_payload);
  EXPECT_GT(std_overhead, 2.0);   // mostly-empty packets
  EXPECT_LT(shr_overhead, 1.25);  // headers (plus padded tail flushes)
}

TEST_F(PartitionTest, HierarchicalFlushesLessOftenThanShared) {
  SharedPartitioner shared;
  HierarchicalPartitioner hier;
  PartitionRun shr = RunAndVerify(shared, 60000, 9, 4);
  PartitionRun hie = RunAndVerify(hier, 60000, 9, 4);
  EXPECT_LT(hie.flushes, shr.flushes / 2);
}

TEST_F(PartitionTest, HierarchicalReducesIommuRequestsAtHighFanout) {
  // Large data + high fanout: Shared thrashes the TLB, Hierarchical
  // shields it with the L2 buffers (Figure 18d).
  uint64_t n = (hw_.tlb.l2_coverage * 3) / sizeof(Tuple);  // 3x TLB reach
  auto wl = MakeWorkload(n);
  ColumnInput input = ColumnInput::Of(wl.r);
  RadixConfig radix{0, 9};  // fanout 512 > l1_entries
  uint32_t blocks = 8;
  PartitionLayout layout = GpuPrefixSum(*dev_, input, radix, blocks);
  auto out1 =
      dev_->allocator().AllocateCpu(layout.padded_tuples() * sizeof(Tuple));
  auto out2 =
      dev_->allocator().AllocateCpu(layout.padded_tuples() * sizeof(Tuple));
  CHECK_OK(out1.status());
  CHECK_OK(out2.status());
  SharedPartitioner shared;
  HierarchicalPartitioner hier;
  auto shr = shared.PartitionColumns(*dev_, input, layout, *out1, {});
  auto hie = hier.PartitionColumns(*dev_, input, layout, *out2, {});
  // At this (scaled) working-set size the translation pressure shows up as
  // GPU-side TLB misses; at paper scale the same gap appears in the IOMMU
  // request counters (Figure 18d).
  EXPECT_GT(shr.record.counters.gpu_tlb_misses,
            4 * hie.record.counters.gpu_tlb_misses);
}

TEST_F(PartitionTest, GpuDestinationAvoidsLinkWrites) {
  auto wl = MakeWorkload(30000);
  ColumnInput input = ColumnInput::Of(wl.r);
  RadixConfig radix{0, 4};
  PartitionLayout layout = GpuPrefixSum(*dev_, input, radix, 4);
  auto out =
      dev_->allocator().AllocateGpu(layout.padded_tuples() * sizeof(Tuple));
  CHECK_OK(out.status());
  SharedPartitioner shared;
  auto run = shared.PartitionColumns(*dev_, input, layout, *out, {});
  EXPECT_EQ(run.record.counters.link_write_payload, 0u);
  EXPECT_EQ(run.record.counters.gpu_mem_write,
            30000u * sizeof(Tuple));
  VerifyPartitioned(input, layout, *out);
}

// --- CPU model ---

TEST_F(PartitionTest, CpuPassCountFollowsLlcCapacity) {
  sim::CpuSpec p9 = sim::HwSpec::Ac922NvLink().cpu;
  sim::CpuSpec xeon = sim::HwSpec::XeonGold6126();
  // POWER9 (5 MiB/core) manages 14 bits in one pass; the Xeon
  // (1.25 MiB/core) cannot (the paper's two-pass switch, Section 6.2.1).
  EXPECT_GE(CpuMaxSinglePassBits(p9), 14u);
  EXPECT_LT(CpuMaxSinglePassBits(xeon), 14u);
  EXPECT_EQ(CpuPartitionPasses(p9, 14), 1u);
  EXPECT_EQ(CpuPartitionPasses(xeon, 14), 2u);
}

TEST_F(PartitionTest, CpuToGpuDestinationIsLinkCapped) {
  auto wl = MakeWorkload(1 << 18);
  ColumnInput input = ColumnInput::Of(wl.r);
  RadixConfig radix{0, 6};
  PartitionLayout layout = CpuPrefixSum(*dev_, input, radix, 4);
  auto cpu_out =
      dev_->allocator().AllocateCpu(layout.padded_tuples() * sizeof(Tuple));
  auto gpu_out =
      dev_->allocator().AllocateGpu(layout.padded_tuples() * sizeof(Tuple));
  CHECK_OK(cpu_out.status());
  CHECK_OK(gpu_out.status());
  CpuSwwcPartitioner cpu;
  auto to_cpu = cpu.PartitionColumns(*dev_, input, layout, *cpu_out, {});
  auto to_gpu = cpu.PartitionColumns(*dev_, input, layout, *gpu_out, {});
  VerifyPartitioned(input, layout, *gpu_out);
  // Figure 4: the CPU's rate is essentially the same for both destinations
  // (memory-bound below the link limit).
  EXPECT_NEAR(to_gpu.Elapsed() / to_cpu.Elapsed(), 1.0, 0.25);
}

}  // namespace
}  // namespace triton::partition
