// End-to-end integration tests asserting the paper's headline *orderings*
// — the facts a reader takes away from the evaluation — on scaled
// workloads.

#include <gtest/gtest.h>

#include <memory>

#include "core/triton_join.h"
#include "data/generator.h"
#include "exec/device.h"
#include "join/cpu_partitioned_join.h"
#include "join/cpu_radix_join.h"
#include "join/no_partitioning_join.h"
#include "partition/hierarchical.h"
#include "partition/prefix_sum.h"
#include "partition/shared.h"
#include "sim/hw_spec.h"
#include "util/units.h"

namespace triton {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override { hw_ = sim::HwSpec::Ac922NvLink().Scaled(64); }

  double Throughput(exec::Device& dev, const data::Workload& wl,
                    auto&& join) {
    auto run = join.Run(dev, wl.r, wl.s);
    CHECK_OK(run.status());
    CHECK_EQ(run->matches, wl.s.rows());
    return run->Throughput(wl.r.rows(), wl.s.rows());
  }

  data::Workload Make(exec::Device& dev, uint64_t n) {
    data::WorkloadConfig cfg;
    cfg.r_tuples = n;
    cfg.s_tuples = n;
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    CHECK_OK(wl.status());
    return std::move(wl).value();
  }

  sim::HwSpec hw_;
};

// Figure 1's three regions: in-core the NPJ wins; out-of-core the Triton
// join beats both the NPJ and the CPU.
TEST_F(IntegrationTest, Figure1Orderings) {
  join::NoPartitioningJoin npj({.scheme = join::HashScheme::kPerfect,
                                .result_mode = join::ResultMode::kAggregate});
  join::CpuRadixJoin cpu({.result_mode = join::ResultMode::kAggregate});
  core::TritonJoin triton({.result_mode = join::ResultMode::kAggregate});

  // In-core: state well inside GPU memory.
  {
    exec::Device dev(hw_);
    auto wl = Make(dev, hw_.gpu_mem.capacity / 64);
    double t_npj = Throughput(dev, wl, npj);
    double t_triton = Throughput(dev, wl, triton);
    double t_cpu = Throughput(dev, wl, cpu);
    EXPECT_GT(t_npj, t_triton);
    EXPECT_GT(t_triton, t_cpu);
    // Triton stays within 85%-ish of the in-core champion (paper: 85%).
    EXPECT_GT(t_triton / t_npj, 0.7);
  }
  // Out-of-core: state 4x GPU memory.
  {
    exec::Device dev(hw_);
    auto wl = Make(dev, hw_.gpu_mem.capacity / 8);
    double t_npj = Throughput(dev, wl, npj);
    double t_triton = Throughput(dev, wl, triton);
    double t_cpu = Throughput(dev, wl, cpu);
    EXPECT_GT(t_triton, t_cpu);
    EXPECT_GT(t_triton, t_npj);
  }
}

// Section 3: the GPU-partitioned strategy beats the CPU-partitioned one.
TEST_F(IntegrationTest, GpuPartitionedBeatsCpuPartitioned) {
  exec::Device dev(hw_);
  auto wl = Make(dev, hw_.gpu_mem.capacity / 16);
  join::CpuPartitionedJoin cpu_part(
      {.result_mode = join::ResultMode::kAggregate});
  core::TritonJoin triton({.result_mode = join::ResultMode::kAggregate});
  double a = Throughput(dev, wl, cpu_part);
  double b = Throughput(dev, wl, triton);
  EXPECT_GT(b, a);
  EXPECT_LT(b / a, 2.0);  // paper: 1.2-1.3x, not an order of magnitude
}

// Section 3 motivation: on PCI-e 3.0 the same Triton join loses to the CPU.
TEST_F(IntegrationTest, PcieMakesTheCpuWin) {
  sim::HwSpec pcie = sim::HwSpec::Ac922Pcie3().Scaled(64);
  exec::Device nv_dev(hw_);
  exec::Device pcie_dev(pcie);
  auto wl_nv = Make(nv_dev, hw_.gpu_mem.capacity / 8);
  auto wl_pcie = Make(pcie_dev, hw_.gpu_mem.capacity / 8);
  core::TritonJoin triton({.result_mode = join::ResultMode::kAggregate});
  join::CpuRadixJoin cpu({.result_mode = join::ResultMode::kAggregate});
  double triton_nv = Throughput(nv_dev, wl_nv, triton);
  double triton_pcie = Throughput(pcie_dev, wl_pcie, triton);
  double cpu_tp = Throughput(pcie_dev, wl_pcie, cpu);
  EXPECT_GT(triton_nv, 2.0 * triton_pcie);
  EXPECT_GT(cpu_tp, triton_pcie);
}

// All four GPU partitioners produce identical partition contents (same
// multiset per partition) for the same layout.
TEST_F(IntegrationTest, PartitionersAreInterchangeable) {
  exec::Device dev(hw_);
  auto wl = Make(dev, 100000);
  partition::ColumnInput input = partition::ColumnInput::Of(wl.r);
  partition::RadixConfig radix{0, 6};
  partition::PartitionLayout layout =
      CpuPrefixSum(dev, input, radix, 8);

  auto fingerprint = [&](partition::GpuPartitioner& p) {
    auto out = dev.allocator().AllocateCpu(layout.padded_tuples() *
                                           sizeof(partition::Tuple));
    CHECK_OK(out.status());
    p.PartitionColumns(dev, input, layout, *out, {});
    // Order-independent per-partition fingerprint.
    std::vector<uint64_t> fp(layout.fanout(), 0);
    const auto* rows = out->as<partition::Tuple>();
    for (uint32_t q = 0; q < layout.fanout(); ++q) {
      layout.ForEachSlice(q, [&](uint64_t begin, uint64_t count) {
        for (uint64_t i = begin; i < begin + count; ++i) {
          fp[q] += static_cast<uint64_t>(rows[i].key) * 31 +
                   static_cast<uint64_t>(rows[i].value);
        }
      });
    }
    dev.allocator().Free(*out);
    return fp;
  };

  partition::SharedPartitioner shared;
  partition::HierarchicalPartitioner hier;
  auto a = fingerprint(shared);
  auto b = fingerprint(hier);
  ASSERT_EQ(a, b);
}

// The Triton join's interconnect utilization rises with the data size
// (Figure 14a's direction) — caching less means streaming more.
TEST_F(IntegrationTest, TritonUtilizationRisesWithDataSize) {
  double prev = 0.0;
  for (uint64_t div : {32, 16, 8}) {
    exec::Device dev(hw_);
    auto wl = Make(dev, hw_.gpu_mem.capacity / div);
    core::TritonJoin triton({.result_mode = join::ResultMode::kAggregate});
    auto run = triton.Run(dev, wl.r, wl.s);
    ASSERT_TRUE(run.ok());
    double util =
        dev.cost_model().LinkUtilization(run->totals, run->elapsed);
    EXPECT_GE(util, prev * 0.95) << div;
    prev = util;
  }
  EXPECT_GT(prev, 0.5);
}

// Device trace names every Triton phase in execution order.
TEST_F(IntegrationTest, TraceStartsWithPrefixSumAndPass1) {
  exec::Device dev(hw_);
  auto wl = Make(dev, 50000);
  core::TritonJoin triton;
  auto run = triton.Run(dev, wl.r, wl.s);
  ASSERT_TRUE(run.ok());
  ASSERT_GE(run->phases.size(), 6u);
  EXPECT_NE(run->phases[0].name.find("prefix_sum1"), std::string::npos);
  EXPECT_NE(run->phases[2].name.find("partition1"), std::string::npos);
  EXPECT_EQ(run->phases.back().name, "join");
}

}  // namespace
}  // namespace triton
