// Figure-regression tests: tiny-scale versions of the paper's headline
// effects, asserted qualitatively so refactors of the simulator or the
// kernels cannot silently flatten them.
//
//   Figure 7   TLB miss-latency plateaus vs memory range (pointer chasing).
//   Figure 18d Shared's TLB/IOMMU-request cliff past fanout 64 while
//              Hierarchical stays orders of magnitude lower.
//   Figure 13  The no-partitioning join's collapse once its hash table
//              exceeds GPU memory.
//
// Each test scales the hardware so the relevant capacity ratio is preserved
// at test-sized inputs (see sim::HwSpec::Scaled).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "data/generator.h"
#include "exec/device.h"
#include "join/no_partitioning_join.h"
#include "partition/hierarchical.h"
#include "partition/prefix_sum.h"
#include "partition/shared.h"
#include "sim/hw_spec.h"

namespace triton {
namespace {

// --- Figure 7: TLB miss latency vs memory range ---

class Figure7Regression : public ::testing::Test {
 protected:
  // Scale 256: 128 KiB translation ranges, 32 MiB L2 TLB coverage
  // (256 entries), 128 MiB L3 TLB* coverage (1024 entries), 64 MiB GPU
  // memory — chase buffers stay test-sized.
  void SetUp() override { hw_ = sim::HwSpec::Ac922NvLink().Scaled(256); }

  /// Mean latency (ns) of `chases` dependent random 8-byte reads striding
  /// one translation range through a buffer of `range` bytes.
  double MeanChaseNs(bool gpu_mem, uint64_t range, uint64_t chases) {
    exec::Device dev(hw_, /*sanitize=*/false);
    auto buf = gpu_mem ? dev.allocator().AllocateGpu(range)
                       : dev.allocator().AllocateCpu(range);
    CHECK_OK(buf.status());
    const uint64_t stride = hw_.tlb.l2_entry_range;
    double mean = 0.0;
    dev.Launch({.name = "chase", .sms = 1, .occupancy_warps_per_sm = 1,
                .latency_bound = true},
               [&](exec::KernelContext& ctx) {
                 uint64_t pos = 0;
                 for (uint64_t i = 0; i < chases; ++i) {
                   ctx.ReadRand(*buf, pos, 8);
                   pos = (pos + stride) % range;
                 }
                 mean = ctx.random_latency_sum() /
                        static_cast<double>(ctx.random_accesses()) * 1e9;
               });
    return mean;
  }

  sim::HwSpec hw_;
};

TEST_F(Figure7Regression, GpuMemoryPlateausAtHitAndMissLatency) {
  // Working set at half the L2 TLB coverage: steady-state hits.
  double in_ns = MeanChaseNs(/*gpu_mem=*/true, hw_.tlb.l2_coverage / 2,
                             /*chases=*/32768);
  // Working set at 1.5x the coverage: cyclic LRU access thrashes the TLB.
  double out_ns = MeanChaseNs(/*gpu_mem=*/true, hw_.tlb.l2_coverage * 3 / 2,
                              /*chases=*/8192);
  const double hit = hw_.tlb.gpu_mem_hit_latency * 1e9;
  const double miss = hw_.tlb.gpu_mem_miss_latency * 1e9;
  EXPECT_NEAR(in_ns, hit, 0.1 * hit) << "in-coverage plateau";
  EXPECT_GT(out_ns, (hit + miss) / 2.0) << "no miss cliff past coverage";
  EXPECT_NEAR(out_ns, miss, 0.1 * miss) << "out-of-coverage plateau";
}

TEST_F(Figure7Regression, CpuMemoryShowsThreePlateaus) {
  // Within L2 TLB coverage / within L3 TLB* coverage / beyond both.
  double l2_ns = MeanChaseNs(/*gpu_mem=*/false, hw_.tlb.l2_coverage / 2,
                             /*chases=*/65536);
  double l3_ns = MeanChaseNs(/*gpu_mem=*/false, hw_.tlb.l2_coverage * 3 / 2,
                             /*chases=*/65536);
  double walk_ns = MeanChaseNs(/*gpu_mem=*/false, hw_.tlb.iotlb_coverage * 2,
                               /*chases=*/8192);
  const double hit = hw_.tlb.cpu_mem_hit_latency * 1e9;
  const double iotlb = hw_.tlb.cpu_mem_iotlb_latency * 1e9;
  const double walk = hw_.tlb.cpu_mem_walk_latency * 1e9;
  EXPECT_NEAR(l2_ns, hit, 0.1 * hit) << "L2 TLB plateau";
  EXPECT_NEAR(l3_ns, iotlb, 0.15 * iotlb) << "L3 TLB* plateau";
  EXPECT_NEAR(walk_ns, walk, 0.1 * walk) << "page-walk plateau";
  EXPECT_LT(l2_ns, l3_ns);
  EXPECT_LT(l3_ns, walk_ns);
}

// --- Figure 18d: IOMMU requests per tuple vs fanout ---

class Figure18dRegression : public ::testing::Test {
 protected:
  // Scale 4096: 8 KiB translation ranges, so a ~5 MiB output spans far
  // more ranges than either partitioner's block TLB holds.
  void SetUp() override { hw_ = sim::HwSpec::Ac922NvLink().Scaled(4096); }

  double IommuRequestsPerTuple(partition::GpuPartitioner& algo,
                               uint32_t bits, bool hierarchical_blocks) {
    exec::Device dev(hw_, /*sanitize=*/true);
    data::WorkloadConfig cfg;
    cfg.r_tuples = 300000;
    cfg.s_tuples = 1024;
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    CHECK_OK(wl.status());
    partition::ColumnInput input = partition::ColumnInput::Of(wl->r);
    partition::RadixConfig radix{0, bits};
    uint32_t blocks = hierarchical_blocks
                          ? partition::HierarchicalRecommendedBlocks(
                                {}, hw_, dev.allocator().gpu_free(),
                                radix.fanout())
                          : 8;
    partition::PartitionLayout layout =
        partition::CpuPrefixSum(dev, input, radix, blocks);
    auto out = dev.allocator().AllocateCpu(layout.padded_tuples() *
                                           sizeof(partition::Tuple));
    CHECK_OK(out.status());
    partition::PartitionRun run =
        algo.PartitionColumns(dev, input, layout, *out, {});
    auto violations = dev.sanitizer()->TakeViolations();
    EXPECT_TRUE(violations.empty());
    return run.record.counters.IommuRequestsPerTuple();
  }

  sim::HwSpec hw_;
};

TEST_F(Figure18dRegression, SharedCliffsPastFanout64HierarchicalStaysFlat) {
  partition::SharedPartitioner shared;
  partition::HierarchicalPartitioner hier;

  double shared_lo = IommuRequestsPerTuple(shared, /*bits=*/4, false);
  double shared_hi = IommuRequestsPerTuple(shared, /*bits=*/9, false);
  double hier_lo = IommuRequestsPerTuple(hier, /*bits=*/4, true);
  double hier_hi = IommuRequestsPerTuple(hier, /*bits=*/9, true);

  // Shared's block TLB (64 entries) thrashes once the fanout exceeds it:
  // the paper's cliff between fanout 64 and 128.
  EXPECT_GT(shared_hi, 10.0 * (shared_lo + 1e-9))
      << "Shared: lo=" << shared_lo << " hi=" << shared_hi;
  // Hierarchical's large flushes keep it orders of magnitude lower.
  EXPECT_LT(hier_hi, shared_hi / 8.0)
      << "Hierarchical hi=" << hier_hi << " vs Shared hi=" << shared_hi;
  EXPECT_LT(hier_lo, shared_hi / 8.0);
}

// --- Figure 13: no-partitioning join collapse out of core ---

class Figure13Regression : public ::testing::Test {
 protected:
  // Scale 2048: 8 MiB GPU memory, 128 MiB CPU memory. The out-of-core
  // point's hash table is 3x GPU memory, as past the paper's crossover.
  void SetUp() override { hw_ = sim::HwSpec::Ac922NvLink().Scaled(2048); }

  double NpjThroughput(uint64_t n) {
    exec::Device dev(hw_, /*sanitize=*/true);
    data::WorkloadConfig cfg;
    cfg.r_tuples = n;
    cfg.s_tuples = n;
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    CHECK_OK(wl.status());
    join::NoPartitioningJoin npj({.scheme = join::HashScheme::kPerfect,
                                  .result_mode = join::ResultMode::kAggregate});
    auto run = npj.Run(dev, wl->r, wl->s);
    CHECK_OK(run.status());
    EXPECT_EQ(run->matches, n);
    auto violations = dev.sanitizer()->TakeViolations();
    EXPECT_TRUE(violations.empty());
    return run->Throughput(n, n);
  }

  sim::HwSpec hw_;
};

TEST_F(Figure13Regression, ThroughputCollapsesOnceTableExceedsGpuMemory) {
  const uint64_t in_core = 256 * 1024;
  uint64_t out_of_core = 1536 * 1024;
  ASSERT_LT(join::NpjTableBytes(join::HashScheme::kPerfect, in_core),
            hw_.gpu_mem.capacity);
  ASSERT_GT(join::NpjTableBytes(join::HashScheme::kPerfect, out_of_core),
            2 * hw_.gpu_mem.capacity);

  double tput_in = NpjThroughput(in_core);
  double tput_out = NpjThroughput(out_of_core);
  EXPECT_GT(tput_in, 3.0 * tput_out)
      << "in-core " << tput_in << " T/s vs out-of-core " << tput_out;
}

}  // namespace
}  // namespace triton
