// Property-based tests: invariants that must hold across randomized
// parameter sweeps, checked with parameterized gtest suites.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/triton_aggregate.h"
#include "core/triton_join.h"
#include "data/generator.h"
#include "data/relation.h"
#include "exec/device.h"
#include "sched/coprocess_scheduler.h"
#include "serve/join_service.h"
#include "join/cpu_partitioned_join.h"
#include "join/cpu_radix_join.h"
#include "join/no_partitioning_join.h"
#include "mem/allocator.h"
#include "sim/cost_model.h"
#include "sim/packetizer.h"
#include "sim/tlb.h"
#include "util/random.h"
#include "util/units.h"

namespace triton {
namespace {

using util::kGiB;
using util::kMiB;

// --- Packetizer invariants under fuzzing ---

TEST(PacketizerProperty, PhysicalNeverBelowPayloadAndBulkMatchesAccess) {
  sim::Packetizer pkt(sim::HwSpec::Ac922NvLink().link);
  util::Rng rng(2024);
  for (int i = 0; i < 20000; ++i) {
    uint64_t addr = rng.NextBounded(1 << 20);
    uint64_t size = 1 + rng.NextBounded(4096);
    for (bool write : {false, true}) {
      sim::TxnStats a = pkt.Access(addr, size, write);
      ASSERT_EQ(a.payload, size);
      ASSERT_GE(a.physical, a.payload);
      // At least one transaction per touched cacheline.
      uint64_t lines = (addr + size - 1) / 128 - addr / 128 + 1;
      ASSERT_EQ(a.txns, lines);

      // Bulk accounting agrees with Access on payload and touches the
      // same cachelines (bulk merges interior lines into full packets).
      sim::TxnStats b = pkt.Bulk(addr, size, write);
      ASSERT_EQ(b.payload, size);
      ASSERT_EQ(b.txns, lines);
      ASSERT_LE(b.physical, a.physical + 1);
    }
  }
}

TEST(PacketizerProperty, AlignedAccessesAreMostEfficient) {
  sim::Packetizer pkt(sim::HwSpec::Ac922NvLink().link);
  for (uint64_t size : {128u, 256u, 512u}) {
    sim::TxnStats aligned = pkt.Access(0, size, true);
    for (uint64_t misalign : {8u, 16u, 48u, 100u}) {
      sim::TxnStats off = pkt.Access(misalign, size, true);
      EXPECT_GE(off.physical, aligned.physical) << size << "+" << misalign;
    }
  }
}

// --- Translation cache: monotone miss rates ---

TEST(TlbProperty, MissRateGrowsWithWorkingSet) {
  double prev_rate = 0.0;
  for (uint64_t ranges : {16, 64, 256, 1024, 4096}) {
    sim::TranslationCache tc(64 * kMiB, 1 * kMiB, 8);  // 64 entries
    util::Lcg64 lcg(7);
    const int kAccesses = 50000;
    for (int i = 0; i < kAccesses; ++i) {
      tc.Access(lcg.NextBounded(ranges) * kMiB);
    }
    double rate = static_cast<double>(tc.misses()) / tc.lookups();
    EXPECT_GE(rate, prev_rate - 0.01) << ranges;
    prev_rate = rate;
  }
  // The largest working set must thrash.
  EXPECT_GT(prev_rate, 0.9);
}

// --- Cost model: monotonicity in every resource ---

TEST(CostModelProperty, MoreTrafficNeverGetsFaster) {
  sim::CostModel cm(sim::HwSpec::Ac922NvLink());
  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    sim::PerfCounters a;
    a.link_read_physical = rng.NextBounded(1ull << 33);
    a.link_write_physical = rng.NextBounded(1ull << 33);
    a.gpu_mem_read = rng.NextBounded(1ull << 34);
    a.issue_slots = rng.NextBounded(1ull << 32);
    a.iommu_requests = rng.NextBounded(1 << 22);
    a.iommu_walks = a.iommu_requests / 2;

    sim::PerfCounters b = a;  // strictly more of everything
    b.link_read_physical += 1 << 20;
    b.gpu_mem_read += 1 << 20;
    b.issue_slots += 1 << 20;
    b.iommu_walks += 100;
    b.iommu_requests += 100;

    double ta = cm.Evaluate(a, 80).Elapsed();
    double tb = cm.Evaluate(b, 80).Elapsed();
    ASSERT_GE(tb, ta);
    // Elapsed equals the max of the components (roofline).
    sim::KernelTime t = cm.Evaluate(a, 80);
    ASSERT_DOUBLE_EQ(t.Elapsed(),
                     std::max({t.compute, t.gpu_mem, t.cpu_mem, t.link,
                               t.tlb, t.latency}));
  }
}

TEST(CostModelProperty, FewerSmsNeverFaster) {
  sim::CostModel cm(sim::HwSpec::Ac922NvLink());
  sim::PerfCounters c;
  c.issue_slots = 1ull << 32;
  c.link_read_physical = 1ull << 30;
  double prev = 0.0;
  for (uint32_t sms : {80u, 40u, 20u, 10u, 5u, 1u}) {
    double t = cm.Evaluate(c, sms).Elapsed();
    EXPECT_GE(t, prev);
    prev = t;
  }
}

// --- Allocator: accounting is conserved under random alloc/free ---

TEST(AllocatorProperty, AccountingConservedUnderChurn) {
  sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(64);
  mem::Allocator alloc(hw);
  util::Rng rng(99);
  std::vector<mem::Buffer> live;
  for (int step = 0; step < 300; ++step) {
    if (live.size() < 10 && rng.NextBounded(2) == 0) {
      uint64_t bytes = 1 + rng.NextBounded(4 * kMiB);
      uint64_t gpu = rng.NextBounded(bytes + 1);
      auto buf = alloc.AllocateInterleaved(bytes, gpu);
      if (buf.ok()) {
        EXPECT_LE(buf->GpuBytes(),
                  gpu + hw.tlb.page_bytes * 64);  // ratio granularity
        live.push_back(std::move(buf).value());
      }
    } else if (!live.empty()) {
      size_t idx = rng.NextBounded(live.size());
      alloc.Free(live[idx]);
      live.erase(live.begin() + idx);
    }
    ASSERT_LE(alloc.gpu_used(), alloc.gpu_capacity());
  }
  for (auto& b : live) alloc.Free(b);
  EXPECT_EQ(alloc.gpu_used(), 0u);
  EXPECT_EQ(alloc.cpu_used(), 0u);
}

// --- Radix passes consume disjoint hash bits ---

TEST(RadixProperty, MultiPassRefinementIsConsistent) {
  partition::RadixConfig pass1{0, 6};
  partition::RadixConfig pass2 = pass1.Next(9);
  partition::RadixConfig flat{0, 15};
  for (int64_t k = 1; k < 50000; k += 7) {
    uint32_t p1 = pass1.PartitionOf(k);
    uint32_t p2 = pass2.PartitionOf(k);
    // The flat 15-bit partition equals the concatenation of both passes.
    EXPECT_EQ(flat.PartitionOf(k), (p1 << 9) | p2) << k;
  }
}

// --- All join algorithms agree across randomized workloads ---

using JoinAgreeParam = std::tuple<uint64_t /*seed*/, int /*size_class*/>;

class JoinAgreementProperty
    : public ::testing::TestWithParam<JoinAgreeParam> {};

TEST_P(JoinAgreementProperty, AllAlgorithmsProduceTheSameJoin) {
  auto [seed, size_class] = GetParam();
  sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(64);
  exec::Device dev(hw);
  util::Rng rng(seed);
  uint64_t r = 2000 + rng.NextBounded(30000) * (size_class + 1);
  uint64_t s = r + rng.NextBounded(2 * r);

  data::WorkloadConfig cfg;
  cfg.r_tuples = r;
  cfg.s_tuples = s;
  cfg.seed = seed * 31 + 7;
  auto wl = data::GenerateWorkload(dev.allocator(), cfg);
  ASSERT_TRUE(wl.ok());

  join::NoPartitioningJoin npj(
      {.scheme = seed % 2 == 0 ? join::HashScheme::kPerfect
                               : join::HashScheme::kLinearProbing});
  auto ref = npj.Run(dev, wl->r, wl->s);
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(ref->matches, s);

  join::CpuRadixJoin cpu;
  auto a = cpu.Run(dev, wl->r, wl->s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->checksum, ref->checksum);

  join::CpuPartitionedJoin cpj;
  auto b = cpj.Run(dev, wl->r, wl->s);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->checksum, ref->checksum);

  core::TritonJoin triton({.bits1 = static_cast<uint32_t>(1 + seed % 5)});
  auto c = triton.Run(dev, wl->r, wl->s);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->checksum, ref->checksum);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinAgreementProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(0, 3)),
    [](const ::testing::TestParamInfo<JoinAgreeParam>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_size" +
             std::to_string(std::get<1>(info.param));
    });

// --- Robustness: no performance cliffs for the Triton join ---

TEST(TritonRobustnessProperty, ThroughputDegradesGracefully) {
  sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(64);
  double prev_tp = 0.0;
  bool first = true;
  // Sweep across the GPU capacity boundary (state 0.5x..3x of GPU memory).
  for (double factor : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    uint64_t n = static_cast<uint64_t>(
        factor * static_cast<double>(hw.gpu_mem.capacity) / 32.0);
    exec::Device dev(hw);
    data::WorkloadConfig cfg;
    cfg.r_tuples = n;
    cfg.s_tuples = n;
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    ASSERT_TRUE(wl.ok());
    core::TritonJoin join({.result_mode = join::ResultMode::kAggregate});
    auto run = join.Run(dev, wl->r, wl->s);
    ASSERT_TRUE(run.ok());
    double tp = run->Throughput(n, n);
    if (!first) {
      // Each doubling-ish step loses at most 30% — no cliff.
      EXPECT_GT(tp, prev_tp * 0.7) << "cliff at factor " << factor;
    }
    first = false;
    prev_tp = tp;
  }
}

// --- Service interleaving never changes any tenant's answer ---
//
// A seeded random schedule of join/aggregate requests across tenants runs
// through the JoinService (contended, interleaved, carved devices); every
// outcome must equal a serial oracle executed in isolation on the full
// machine: CpuRadixJoin for joins, TritonAggregate for aggregates.

class ServiceOracleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServiceOracleProperty, EveryTenantMatchesItsSerialOracle) {
  const uint64_t seed = GetParam();
  sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(64);
  util::Rng rng(seed * 977 + 11);

  std::vector<serve::Request> trace;
  for (uint32_t tenant = 0; tenant < 3; ++tenant) {
    for (int q = 0; q < 3; ++q) {
      serve::Request req;
      req.tenant = tenant;
      if (rng.NextBounded(2) == 0) {
        req.kind = serve::RequestKind::kJoin;
        req.r_tuples = 2000 + rng.NextBounded(15000);
        req.s_tuples = req.r_tuples + rng.NextBounded(req.r_tuples);
      } else {
        req.kind = serve::RequestKind::kAggregate;
        req.r_tuples = 500 + rng.NextBounded(3000);  // group-key domain
        req.s_tuples = 4000 + rng.NextBounded(25000);
      }
      req.seed = seed * 131 + tenant * 17 + static_cast<uint64_t>(q);
      trace.push_back(req);
    }
  }

  serve::ServiceConfig config;
  config.max_inflight = 3;
  config.scheduler_seed = seed;
  serve::JoinService service(hw, config);
  for (const serve::Request& req : trace) {
    ASSERT_TRUE(service.Submit(req).ok());
  }
  ASSERT_TRUE(service.Drain().ok());
  ASSERT_EQ(service.outcomes().size(), trace.size());

  for (const serve::RequestOutcome& out : service.outcomes()) {
    ASSERT_TRUE(out.status.ok()) << out.status.ToString();
    // Request ids are assigned in submission order, starting at 1.
    const serve::Request& req = trace[out.id - 1];
    exec::Device dev(hw);  // the full, uncontended machine
    if (req.kind == serve::RequestKind::kJoin) {
      data::WorkloadConfig cfg;
      cfg.r_tuples = req.r_tuples;
      cfg.s_tuples = req.s_tuples;
      cfg.seed = req.seed;
      auto wl = data::GenerateWorkload(dev.allocator(), cfg);
      ASSERT_TRUE(wl.ok());
      join::CpuRadixJoin oracle;
      auto run = oracle.Run(dev, wl->r, wl->s);
      ASSERT_TRUE(run.ok());
      EXPECT_EQ(out.matches, req.s_tuples) << "request " << out.id;
      EXPECT_EQ(out.checksum, run->checksum) << "request " << out.id;
    } else {
      auto rel = data::Relation::AllocateCpu(dev.allocator(), req.s_tuples);
      ASSERT_TRUE(rel.ok());
      data::FillForeignKeys(*rel, req.r_tuples, req.seed);
      data::FillPayloads(*rel, req.seed ^ 0x9e3779b97f4a7c15ULL);
      core::TritonAggregate oracle;
      auto run = oracle.Run(dev, *rel);
      ASSERT_TRUE(run.ok());
      EXPECT_EQ(out.matches, run->groups) << "request " << out.id;
      EXPECT_EQ(out.checksum, run->checksum) << "request " << out.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, ServiceOracleProperty,
                         ::testing::Range<uint64_t>(1, 5));

// --- Workload generator properties across seeds ---

class GeneratorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorProperty, JoinCardinalityAlwaysEqualsProbeSide) {
  sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(64);
  mem::Allocator alloc(hw);
  util::Rng rng(GetParam());
  data::WorkloadConfig cfg;
  cfg.r_tuples = 500 + rng.NextBounded(5000);
  cfg.s_tuples = 500 + rng.NextBounded(20000);
  cfg.seed = GetParam();
  auto wl = data::GenerateWorkload(alloc, cfg);
  ASSERT_TRUE(wl.ok());
  EXPECT_EQ(data::ReferenceJoinCardinality(wl->r, wl->s), cfg.s_tuples);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Range<uint64_t>(1, 9));

// --- Co-processing split invariance: any split ratio, same join ---

class CoProcessSplitProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoProcessSplitProperty, AnySplitRatioMatchesSingleBackendOracle) {
  sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(64);
  util::Rng rng(0xc0ffee ^ GetParam());
  data::WorkloadConfig cfg;
  cfg.r_tuples = 50000 + rng.NextBounded(200000);
  cfg.s_tuples = cfg.r_tuples + rng.NextBounded(200000);
  cfg.seed = GetParam();

  // Single-backend oracle: the full-GPU Triton join on its own device.
  uint64_t oracle_matches = 0, oracle_checksum = 0;
  {
    exec::Device dev(hw);
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    ASSERT_TRUE(wl.ok());
    core::TritonJoin gpu({.result_mode = join::ResultMode::kAggregate});
    auto run = gpu.Run(dev, wl->r, wl->s);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    oracle_matches = run->matches;
    oracle_checksum = run->checksum;
    EXPECT_EQ(oracle_checksum, join::ReferenceChecksum(wl->r, wl->s));
  }

  // The hybrid result is invariant in the split ratio: randomized ratios
  // plus both extremes all reproduce the oracle bit for bit.
  std::vector<double> ratios = {0.0, 1.0, rng.NextDouble(), rng.NextDouble()};
  for (double ratio : ratios) {
    exec::Device dev(hw);
    auto wl = data::GenerateWorkload(dev.allocator(), cfg);
    ASSERT_TRUE(wl.ok());
    sched::CoProcessConfig sc;
    sc.result_mode = join::ResultMode::kAggregate;
    sc.split_ratio = ratio;
    sched::CoProcessScheduler hybrid(sc);
    auto run = hybrid.Run(dev, wl->r, wl->s);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->matches, oracle_matches) << "ratio " << ratio;
    EXPECT_EQ(run->checksum, oracle_checksum) << "ratio " << ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoProcessSplitProperty,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace triton
