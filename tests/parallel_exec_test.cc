// Parallel block executor tests: simulated thread blocks run on host
// worker threads, and the determinism contract says every observable —
// partition contents, join checksums, every PerfCounters field, sanitizer
// violation provenance, simulated time — is bit-identical for any thread
// count. Each scenario runs at 1, 2 and 8 threads and is compared against
// the serial baseline field by field.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/triton_join.h"
#include "data/generator.h"
#include "exec/block_executor.h"
#include "exec/device.h"
#include "join/common.h"
#include "join/cpu_partitioned_join.h"
#include "join/scratch_join.h"
#include "partition/hierarchical.h"
#include "partition/input.h"
#include "partition/layout.h"
#include "partition/prefix_sum.h"
#include "partition/shared.h"
#include "sanitizer/sanitizer.h"
#include "sim/hw_spec.h"

namespace triton {
namespace {

using partition::ColumnInput;
using partition::PartitionLayout;
using partition::PartitionRun;
using partition::RadixConfig;
using partition::Tuple;
using sanitizer::Violation;
using sanitizer::ViolationCode;

/// Scoped thread-count override; restores the previous pool size.
class ThreadsGuard {
 public:
  explicit ThreadsGuard(uint32_t threads)
      : prev_(exec::BlockExecutor::Global().threads()) {
    exec::BlockExecutor::Global().SetThreads(threads);
  }
  ~ThreadsGuard() { exec::BlockExecutor::Global().SetThreads(prev_); }

 private:
  uint32_t prev_;
};

/// Field-by-field equality over the full counter record: any drift between
/// thread counts is a determinism bug, not noise.
void ExpectCountersEq(const sim::PerfCounters& a, const sim::PerfCounters& b) {
  EXPECT_EQ(a.gpu_mem_read, b.gpu_mem_read);
  EXPECT_EQ(a.gpu_mem_write, b.gpu_mem_write);
  EXPECT_EQ(a.gpu_mem_random_write, b.gpu_mem_random_write);
  EXPECT_EQ(a.link_read_payload, b.link_read_payload);
  EXPECT_EQ(a.link_read_physical, b.link_read_physical);
  EXPECT_EQ(a.link_write_payload, b.link_write_payload);
  EXPECT_EQ(a.link_write_physical, b.link_write_physical);
  EXPECT_EQ(a.link_read_txns, b.link_read_txns);
  EXPECT_EQ(a.link_write_txns, b.link_write_txns);
  EXPECT_EQ(a.cpu_mem_read, b.cpu_mem_read);
  EXPECT_EQ(a.cpu_mem_write, b.cpu_mem_write);
  EXPECT_EQ(a.gpu_tlb_lookups, b.gpu_tlb_lookups);
  EXPECT_EQ(a.gpu_tlb_misses, b.gpu_tlb_misses);
  EXPECT_EQ(a.l3_hits, b.l3_hits);
  EXPECT_EQ(a.iommu_requests, b.iommu_requests);
  EXPECT_EQ(a.iommu_walks, b.iommu_walks);
  EXPECT_EQ(a.issue_slots, b.issue_slots);
  EXPECT_EQ(a.tuples, b.tuples);
}

// --- BlockExecutor unit tests ---

TEST(BlockExecutorTest, RunsEveryBlockExactlyOnce) {
  ThreadsGuard guard(8);
  std::vector<std::atomic<int>> hits(100);
  exec::BlockExecutor::Global().Run(100, [&](uint32_t b) { ++hits[b]; });
  for (uint32_t b = 0; b < 100; ++b) {
    EXPECT_EQ(hits[b].load(), 1) << "block " << b;
  }
}

TEST(BlockExecutorTest, SetThreadsResizesThePool) {
  ThreadsGuard guard(8);
  EXPECT_EQ(exec::BlockExecutor::Global().threads(), 8u);
  exec::BlockExecutor::Global().SetThreads(2);
  EXPECT_EQ(exec::BlockExecutor::Global().threads(), 2u);
  std::atomic<int> total{0};
  exec::BlockExecutor::Global().Run(17, [&](uint32_t) { ++total; });
  EXPECT_EQ(total.load(), 17);
}

TEST(BlockExecutorTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadsGuard guard(8);
  EXPECT_THROW(
      exec::BlockExecutor::Global().Run(50,
                                        [&](uint32_t b) {
                                          if (b == 37) {
                                            throw std::runtime_error("b37");
                                          }
                                        }),
      std::runtime_error);
  // The pool drained cleanly and accepts the next batch.
  std::atomic<int> total{0};
  exec::BlockExecutor::Global().Run(20, [&](uint32_t) { ++total; });
  EXPECT_EQ(total.load(), 20);
}

// --- Shared-TLB replay-at-reduction contract ---

// The shared device TLB must never be touched while blocks are in flight
// (a mid-kernel mutation would make counters depend on block scheduling);
// every deferred access replays in block order at the reduction step.
TEST(TlbReplayContractTest, SharedTlbUntouchedWhileBlocksRun) {
  ThreadsGuard guard(8);
  sim::HwSpec hw = sim::HwSpec::Ac922NvLink().Scaled(64);
  exec::Device dev(hw);
  auto buf = dev.allocator().AllocateCpu(1 << 20);
  ASSERT_TRUE(buf.ok());
  uint64_t before = 0;
  std::vector<uint64_t> seen_in_block(8, 0);
  dev.Launch({.name = "replay_contract"}, [&](exec::KernelContext& ctx) {
    before = dev.tlb().TotalLookups();
    ctx.ForEachBlock(8, [&](exec::KernelContext& sub, uint32_t b) {
      // A random access through the public API would hit the shared TLB
      // immediately on a serial context; a sub-context must defer it.
      sub.ReadRand(*buf, static_cast<uint64_t>(b) * 4096, 16);
      seen_in_block[b] = dev.tlb().TotalLookups();
    });
    // Reduction has replayed the deferred accesses by the time
    // ForEachBlock returns.
    EXPECT_GT(dev.tlb().TotalLookups(), before);
  });
  for (uint32_t b = 0; b < 8; ++b) {
    EXPECT_EQ(seen_in_block[b], before) << "block " << b
                                        << " saw a mid-kernel TLB mutation";
  }
}

// --- Bit-identity scenarios ---

class ParallelIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override { hw_ = sim::HwSpec::Ac922NvLink().Scaled(64); }

  data::Workload MakeWorkload(mem::Allocator& alloc, uint64_t n) {
    data::WorkloadConfig cfg;
    cfg.r_tuples = n;
    cfg.s_tuples = n;
    auto wl = data::GenerateWorkload(alloc, cfg);
    CHECK_OK(wl.status());
    return std::move(wl).value();
  }

  /// Output of one partition scenario: data-slice contents in layout order
  /// plus all accounting.
  struct PartResult {
    std::vector<Tuple> tuples;
    sim::PerfCounters counters;
    uint64_t flushes = 0;
    double tuples_per_txn = 0.0;
    double elapsed = 0.0;
  };

  PartResult RunPartition(partition::GpuPartitioner& algo, uint32_t threads,
                          uint64_t n, uint32_t bits, uint32_t blocks) {
    ThreadsGuard guard(threads);
    exec::Device dev(hw_, /*sanitize=*/true);
    auto wl = MakeWorkload(dev.allocator(), n);
    ColumnInput input = ColumnInput::Of(wl.r);
    RadixConfig radix{0, bits};
    PartitionLayout layout =
        partition::GpuPrefixSum(dev, input, radix, blocks);
    auto out = dev.allocator().AllocateCpu(layout.padded_tuples() *
                                           sizeof(Tuple));
    CHECK_OK(out.status());
    PartitionRun run = algo.PartitionColumns(dev, input, layout, *out, {});

    PartResult res;
    const Tuple* rows = out->as<Tuple>();
    for (uint32_t p = 0; p < layout.fanout(); ++p) {
      layout.ForEachSlice(p, [&](uint64_t begin, uint64_t count) {
        res.tuples.insert(res.tuples.end(), rows + begin,
                          rows + begin + count);
      });
    }
    res.counters = run.record.counters;
    res.flushes = run.flushes;
    res.tuples_per_txn = run.TuplesPerWriteTxn();
    res.elapsed = run.Elapsed();
    std::vector<Violation> vs = dev.sanitizer()->TakeViolations();
    EXPECT_TRUE(vs.empty()) << vs.size() << " violation(s) at threads "
                            << threads << ", first: " << vs.front().message;
    return res;
  }

  void ExpectPartResultEq(const PartResult& a, const PartResult& b) {
    ASSERT_EQ(a.tuples.size(), b.tuples.size());
    for (size_t i = 0; i < a.tuples.size(); ++i) {
      ASSERT_EQ(a.tuples[i].key, b.tuples[i].key) << "tuple " << i;
      ASSERT_EQ(a.tuples[i].value, b.tuples[i].value) << "tuple " << i;
    }
    ExpectCountersEq(a.counters, b.counters);
    EXPECT_EQ(a.flushes, b.flushes);
    EXPECT_EQ(a.tuples_per_txn, b.tuples_per_txn);  // Figure 18b metric
    EXPECT_EQ(a.elapsed, b.elapsed);
  }

  struct JoinResult {
    uint64_t matches = 0;
    uint64_t checksum = 0;
    sim::PerfCounters totals;
    double elapsed = 0.0;
  };

  template <typename JoinFn>
  JoinResult RunJoin(uint32_t threads, uint64_t n, JoinFn&& make_join) {
    ThreadsGuard guard(threads);
    exec::Device dev(hw_, /*sanitize=*/true);
    auto wl = MakeWorkload(dev.allocator(), n);
    auto join = make_join();
    auto run = join.Run(dev, wl.r, wl.s);
    CHECK_OK(run.status());
    JoinResult res;
    res.matches = run->matches;
    res.checksum = run->checksum;
    res.totals = run->totals;
    res.elapsed = run->elapsed;
    EXPECT_EQ(res.matches, n);
    std::vector<Violation> vs = dev.sanitizer()->TakeViolations();
    EXPECT_TRUE(vs.empty()) << vs.size() << " violation(s) at threads "
                            << threads << ", first: " << vs.front().message;
    return res;
  }

  void ExpectJoinResultEq(const JoinResult& a, const JoinResult& b) {
    EXPECT_EQ(a.matches, b.matches);
    EXPECT_EQ(a.checksum, b.checksum);
    ExpectCountersEq(a.totals, b.totals);
    EXPECT_EQ(a.elapsed, b.elapsed);
  }

  sim::HwSpec hw_;
};

TEST_F(ParallelIdentityTest, SharedPartitionerIsThreadCountInvariant) {
  partition::SharedPartitioner shared;
  PartResult serial = RunPartition(shared, 1, 60000, 9, 8);
  for (uint32_t threads : {2u, 8u}) {
    PartResult par = RunPartition(shared, threads, 60000, 9, 8);
    ExpectPartResultEq(serial, par);
  }
}

TEST_F(ParallelIdentityTest, HierarchicalPartitionerIsThreadCountInvariant) {
  partition::HierarchicalPartitioner hier;
  PartResult serial = RunPartition(hier, 1, 60000, 9, 8);
  for (uint32_t threads : {2u, 8u}) {
    PartResult par = RunPartition(hier, threads, 60000, 9, 8);
    ExpectPartResultEq(serial, par);
  }
}

TEST_F(ParallelIdentityTest, GpuPrefixSumIsThreadCountInvariant) {
  auto run_once = [&](uint32_t threads) {
    ThreadsGuard guard(threads);
    exec::Device dev(hw_, /*sanitize=*/true);
    auto wl = MakeWorkload(dev.allocator(), 50000);
    ColumnInput input = ColumnInput::Of(wl.r);
    dev.ClearTrace();
    PartitionLayout layout =
        partition::GpuPrefixSum(dev, input, RadixConfig{0, 6}, 8);
    sim::PerfCounters counters = dev.trace().back().counters;
    return std::make_pair(layout, counters);
  };
  auto [layout1, counters1] = run_once(1);
  for (uint32_t threads : {2u, 8u}) {
    auto [layout_t, counters_t] = run_once(threads);
    ASSERT_EQ(layout_t.fanout(), layout1.fanout());
    for (uint32_t p = 0; p < layout1.fanout(); ++p) {
      for (uint32_t b = 0; b < layout1.num_blocks(); ++b) {
        EXPECT_EQ(layout_t.SliceBegin(p, b), layout1.SliceBegin(p, b));
        EXPECT_EQ(layout_t.SliceSize(p, b), layout1.SliceSize(p, b));
      }
    }
    ExpectCountersEq(counters1, counters_t);
  }
}

TEST_F(ParallelIdentityTest, TritonJoinIsThreadCountInvariant) {
  auto make = [] {
    return core::TritonJoin({.scheme = join::HashScheme::kBucketChaining});
  };
  JoinResult serial = RunJoin(1, 100000, make);
  for (uint32_t threads : {2u, 8u}) {
    JoinResult par = RunJoin(threads, 100000, make);
    ExpectJoinResultEq(serial, par);
  }
}

TEST_F(ParallelIdentityTest,
       TritonJoinWithGpuPrefixSumIsThreadCountInvariant) {
  auto make = [] {
    return core::TritonJoin({.scheme = join::HashScheme::kBucketChaining,
                             .gpu_prefix_sum = true});
  };
  JoinResult serial = RunJoin(1, 80000, make);
  for (uint32_t threads : {2u, 8u}) {
    JoinResult par = RunJoin(threads, 80000, make);
    ExpectJoinResultEq(serial, par);
  }
}

TEST_F(ParallelIdentityTest, CpuPartitionedJoinIsThreadCountInvariant) {
  auto make = [] {
    return join::CpuPartitionedJoin(join::CpuPartitionedJoinConfig{});
  };
  JoinResult serial = RunJoin(1, 80000, make);
  for (uint32_t threads : {2u, 8u}) {
    JoinResult par = RunJoin(threads, 80000, make);
    ExpectJoinResultEq(serial, par);
  }
}

// The staged emit path used by the parallel join launches must agree with
// the direct materializing path tuple for tuple.
TEST_F(ParallelIdentityTest, JoinSlicesEmitMatchesJoinSlices) {
  exec::Device dev(hw_, /*sanitize=*/false);
  auto wl = MakeWorkload(dev.allocator(), 5000);
  // Lay both relations out as single slices of their row buffers.
  auto rows = dev.allocator().AllocateCpu(2 * 5000 * sizeof(Tuple));
  ASSERT_TRUE(rows.ok());
  Tuple* data = rows->as<Tuple>();
  const data::Key* r_keys = wl.r.key_buffer().as<data::Key>();
  const data::Value* r_vals = wl.r.payload_buffer(0).as<data::Value>();
  const data::Key* s_keys = wl.s.key_buffer().as<data::Key>();
  const data::Value* s_vals = wl.s.payload_buffer(0).as<data::Value>();
  for (uint64_t i = 0; i < 5000; ++i) {
    data[i] = Tuple{r_keys[i], r_vals[i]};
    data[5000 + i] = Tuple{s_keys[i], s_vals[i]};
  }
  join::ScratchJoiner joiner(join::HashScheme::kBucketChaining,
                             hw_.gpu.scratchpad_bytes);
  uint64_t direct_matches = 0, direct_checksum = 0;
  uint64_t emit_matches = 0, emit_checksum = 0;
  dev.Launch({.name = "join"}, [&](exec::KernelContext& ctx) {
    uint64_t cursor = 0;
    joiner.JoinSlices(ctx, *rows, {{0, 5000}}, *rows, {{5000, 5000}},
                      /*radix_shift=*/0, /*result=*/nullptr, &cursor,
                      &direct_matches, &direct_checksum);
    joiner.JoinSlicesEmit(ctx, *rows, {{0, 5000}}, *rows, {{5000, 5000}},
                          /*radix_shift=*/0,
                          [&](int64_t build_val, int64_t probe_val) {
                            ++emit_matches;
                            emit_checksum +=
                                static_cast<uint64_t>(build_val) +
                                static_cast<uint64_t>(probe_val);
                          });
  });
  EXPECT_EQ(direct_matches, 5000u);
  EXPECT_EQ(emit_matches, direct_matches);
  EXPECT_EQ(emit_checksum, direct_checksum);
}

// --- Sanitizer provenance under parallel execution ---

class ParallelSanitizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hw_ = sim::HwSpec::Ac922NvLink().Scaled(64);
    dev_ = std::make_unique<exec::Device>(hw_, /*sanitize=*/true);
    ASSERT_NE(dev_->sanitizer(), nullptr);
  }

  Violation TakeSingle(ViolationCode code) {
    std::vector<Violation> vs = dev_->sanitizer()->TakeViolations();
    EXPECT_EQ(vs.size(), 1u) << "expected exactly one violation";
    if (vs.empty()) return Violation{};
    EXPECT_EQ(vs.front().code, code) << vs.front().message;
    return vs.front();
  }

  sim::HwSpec hw_;
  std::unique_ptr<exec::Device> dev_;
};

TEST_F(ParallelSanitizerTest, OobFlushKeepsProvenanceAtEightThreads) {
  ThreadsGuard guard(8);
  auto buf = dev_->allocator().AllocateCpu(1000);
  ASSERT_TRUE(buf.ok());
  dev_->Launch({.name = "part1"}, [&](exec::KernelContext& ctx) {
    ctx.ForEachBlock(16, [&](exec::KernelContext& sub, uint32_t b) {
      sub.SetSanitizerBlock(b);
      if (b != 12) return;
      sub.SetSanitizerFlushSite(/*warp=*/3, /*partition=*/907);
      sub.WriteNoTlb(*buf, buf->size() - 8, 48, /*random=*/true);
      sub.AddTuples(1);
      sub.Charge(1);
    });
  });
  Violation v = TakeSingle(ViolationCode::kAccountedOutOfBounds);
  EXPECT_EQ(v.block, 12u);
  EXPECT_EQ(v.warp, 3u);
  EXPECT_NE(v.message.find("kernel part1"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("block 12"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("warp 3"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("partition 907"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("flush wrote 40 B past extent"),
            std::string::npos)
      << v.message;
}

TEST_F(ParallelSanitizerTest, ViolationsMergeInBlockOrderAtEightThreads) {
  ThreadsGuard guard(8);
  dev_->Launch({.name = "stray"}, [&](exec::KernelContext& ctx) {
    ctx.ForEachBlock(16, [&](exec::KernelContext& sub, uint32_t b) {
      sub.SetSanitizerBlock(b);
      if (b != 3 && b != 12) return;
      // No allocation lives at this address.
      sub.sanitizer()->RecordAccounted(0x1000 + b, 64, /*is_write=*/true);
      sub.AddTuples(1);
      sub.Charge(1);
    });
  });
  std::vector<Violation> vs = dev_->sanitizer()->TakeViolations();
  ASSERT_EQ(vs.size(), 2u);
  // Block order, independent of which worker thread finished first.
  EXPECT_EQ(vs[0].block, 3u);
  EXPECT_EQ(vs[1].block, 12u);
  EXPECT_EQ(vs[0].code, ViolationCode::kAccountedOutOfBounds);
  EXPECT_EQ(vs[1].code, ViolationCode::kAccountedOutOfBounds);
}

TEST_F(ParallelSanitizerTest, UnaccountedStoreIsCaughtAtEightThreads) {
  ThreadsGuard guard(8);
  auto buf = dev_->allocator().AllocateCpu(4096);
  ASSERT_TRUE(buf.ok());
  dev_->Launch({.name = "leaky"}, [&](exec::KernelContext& ctx) {
    ctx.ForEachBlock(8, [&](exec::KernelContext& sub, uint32_t b) {
      sub.SetSanitizerBlock(b);
      if (b != 5) return;
      sub.Store<uint64_t>(*buf, 0, 42);  // no accounted traffic
      sub.AddTuples(1);
      sub.Charge(1);
    });
  });
  Violation v = TakeSingle(ViolationCode::kUnaccountedWrite);
  EXPECT_NE(v.message.find("have no accounted traffic"), std::string::npos)
      << v.message;
}

TEST_F(ParallelSanitizerTest, AccountedStoreStaysCleanAtEightThreads) {
  ThreadsGuard guard(8);
  auto buf = dev_->allocator().AllocateCpu(64 * 8);
  ASSERT_TRUE(buf.ok());
  dev_->Launch({.name = "clean"}, [&](exec::KernelContext& ctx) {
    ctx.ForEachBlock(8, [&](exec::KernelContext& sub, uint32_t b) {
      sub.SetSanitizerBlock(b);
      sub.Store<uint64_t>(*buf, b * 8, 42);
      sub.WriteSeq(*buf, static_cast<uint64_t>(b) * 64, 64);
      sub.AddTuples(1);
      sub.Charge(1);
    });
  });
  EXPECT_TRUE(dev_->sanitizer()->CheckOk().ok());
}

TEST_F(ParallelSanitizerTest, ScratchpadRaceIsCaughtInsideABlock) {
  ThreadsGuard guard(8);
  dev_->Launch({.name = "race"}, [&](exec::KernelContext& ctx) {
    ctx.ForEachBlock(8, [&](exec::KernelContext& sub, uint32_t b) {
      sub.SetSanitizerBlock(b);
      if (b != 7) return;
      sanitizer::ScratchpadShadow shadow(sub.sanitizer(), 1024,
                                         hw_.gpu.scratchpad_bytes);
      shadow.Store(128, 8, /*warp=*/1);
      shadow.Store(128, 8, /*warp=*/5);  // same word, no sync in between
      sub.AddTuples(1);
      sub.Charge(1);
    });
  });
  Violation v = TakeSingle(ViolationCode::kScratchpadRace);
  EXPECT_EQ(v.block, 7u);
  EXPECT_EQ(v.warp, 5u);
  EXPECT_NE(v.message.find("warps 1 and 5"), std::string::npos) << v.message;
}

TEST_F(ParallelSanitizerTest, LockProtocolIsCaughtInsideABlock) {
  ThreadsGuard guard(8);
  dev_->Launch({.name = "locks"}, [&](exec::KernelContext& ctx) {
    ctx.ForEachBlock(8, [&](exec::KernelContext& sub, uint32_t b) {
      sub.SetSanitizerBlock(b);
      if (b != 2) return;
      sanitizer::ScratchpadShadow shadow(sub.sanitizer(), 1024,
                                         hw_.gpu.scratchpad_bytes);
      shadow.AcquireLock(/*lock=*/7, /*warp=*/2);
      shadow.NoteFlush(/*lock=*/7, /*warp=*/4);  // warp 4 is not the holder
      shadow.ReleaseLock(/*lock=*/7, /*warp=*/2);
      sub.AddTuples(1);
      sub.Charge(1);
    });
  });
  Violation v = TakeSingle(ViolationCode::kLockProtocol);
  EXPECT_EQ(v.block, 2u);
  EXPECT_NE(v.message.find("flushed by a warp that does not hold"),
            std::string::npos)
      << v.message;
}

TEST_F(ParallelSanitizerTest, TupleCountLintSeesMergedBlockCounters) {
  ThreadsGuard guard(8);
  dev_->Launch({.name = "short"}, [&](exec::KernelContext& ctx) {
    ctx.ExpectTuples(100, sizeof(Tuple));
    ctx.ForEachBlock(10, [&](exec::KernelContext& sub, uint32_t b) {
      sub.SetSanitizerBlock(b);
      sub.AddTuples(5);  // 10 blocks x 5 = 50, half the expectation
      sub.Charge(1);
    });
  });
  std::vector<Violation> vs = dev_->sanitizer()->TakeViolations();
  ASSERT_FALSE(vs.empty());
  EXPECT_EQ(vs.front().code, ViolationCode::kCounterInvariant);
  EXPECT_NE(vs.front().message.find("processed 50 tuples, expected 100"),
            std::string::npos)
      << vs.front().message;
}

}  // namespace
}  // namespace triton
