#include <gtest/gtest.h>

#include <memory>

#include "core/triton_join.h"
#include "data/generator.h"
#include "exec/device.h"
#include "join/common.h"
#include "partition/linear.h"
#include "partition/shared.h"
#include "partition/standard.h"
#include "sim/hw_spec.h"
#include "util/units.h"

namespace triton::core {
namespace {

class TritonJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    hw_ = sim::HwSpec::Ac922NvLink().Scaled(64);
    dev_ = std::make_unique<exec::Device>(hw_);
  }

  data::Workload MakeWorkload(uint64_t r, uint64_t s, uint64_t seed = 42) {
    data::WorkloadConfig cfg;
    cfg.r_tuples = r;
    cfg.s_tuples = s;
    cfg.seed = seed;
    auto wl = data::GenerateWorkload(dev_->allocator(), cfg);
    CHECK_OK(wl.status());
    return std::move(wl).value();
  }

  sim::HwSpec hw_;
  std::unique_ptr<exec::Device> dev_;
};

TEST_F(TritonJoinTest, ExactResultOnSmallWorkload) {
  auto wl = MakeWorkload(30000, 90000);
  uint64_t ref = join::ReferenceChecksum(wl.r, wl.s);
  TritonJoin join;
  auto run = join.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->matches, 90000u);
  EXPECT_EQ(run->checksum, ref);
  EXPECT_GT(run->elapsed, 0.0);
}

TEST_F(TritonJoinTest, ExactResultOutOfCore) {
  // Data 2x the (scaled) GPU memory: the partitioned state must spill.
  uint64_t n = hw_.gpu_mem.capacity / sizeof(partition::Tuple);
  auto wl = MakeWorkload(n, n, /*seed=*/5);
  TritonJoin join({.result_mode = join::ResultMode::kAggregate});
  auto run = join.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->matches, n);
  EXPECT_GT(join.stats().spilled_bytes, 0u);
  EXPECT_LT(join.stats().cached_fraction, 1.0);
}

TEST_F(TritonJoinTest, InCoreWorkloadIsFullyCached) {
  auto wl = MakeWorkload(100000, 100000);
  TritonJoin join;
  auto run = join.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(run.ok());
  EXPECT_DOUBLE_EQ(join.stats().cached_fraction, 1.0);
  EXPECT_EQ(join.stats().spilled_bytes, 0u);
}

TEST_F(TritonJoinTest, DerivedBitsMatchPaperRanges) {
  sim::HwSpec full = sim::HwSpec::Ac922NvLink();
  uint32_t b1 = 0, b2 = 0;
  // 2048 M tuples: the paper's first pass uses ~10 bits, second pass 9.
  TritonJoin::DeriveBits(full, 2048ull << 20, 2048ull << 20, &b1, &b2);
  EXPECT_EQ(b2, 9u);
  EXPECT_GE(b1, 9u);
  EXPECT_LE(b1, 12u);
  // 128 M tuples: ~6-8 first-pass bits.
  TritonJoin::DeriveBits(full, 128ull << 20, 128ull << 20, &b1, &b2);
  EXPECT_GE(b1, 5u);
  EXPECT_LE(b1, 9u);
}

TEST_F(TritonJoinTest, ChecksumStableAcrossConfigurations) {
  auto wl = MakeWorkload(40000, 120000, /*seed=*/11);
  uint64_t ref = join::ReferenceChecksum(wl.r, wl.s);
  for (bool gpu_ps : {false, true}) {
    for (bool overlap : {false, true}) {
      TritonJoin join({.gpu_prefix_sum = gpu_ps, .overlap = overlap});
      auto run = join.Run(*dev_, wl.r, wl.s);
      ASSERT_TRUE(run.ok());
      EXPECT_EQ(run->matches, 120000u) << gpu_ps << overlap;
      EXPECT_EQ(run->checksum, ref) << gpu_ps << overlap;
    }
  }
}

TEST_F(TritonJoinTest, PerfectHashingWithinTwoPercentOfBucketChaining) {
  auto wl = MakeWorkload(200000, 200000);
  TritonJoin chain({.scheme = join::HashScheme::kBucketChaining});
  TritonJoin perfect({.scheme = join::HashScheme::kPerfect});
  auto c = chain.Run(*dev_, wl.r, wl.s);
  auto p = perfect.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(c->checksum, p->checksum);
  // The paper: hashing scheme has only a small impact on partitioned
  // joins (0-2%; allow a bit more slack at small scale).
  EXPECT_NEAR(c->elapsed / p->elapsed, 1.0, 0.10);
}

TEST_F(TritonJoinTest, OverlapReducesElapsedTime) {
  // Overlap pays off when the second pass streams spilled state over the
  // interconnect while the join computes; disable the cache to force that.
  uint64_t n = hw_.gpu_mem.capacity / sizeof(partition::Tuple);
  auto wl = MakeWorkload(n, n);
  TritonJoin with({.result_mode = join::ResultMode::kAggregate,
                   .cache_bytes = 0, .overlap = true});
  TritonJoin without({.result_mode = join::ResultMode::kAggregate,
                      .cache_bytes = 0, .overlap = false});
  auto a = with.Run(*dev_, wl.r, wl.s);
  auto b = without.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->checksum, b->checksum);
  EXPECT_LT(a->elapsed, b->elapsed);
}

TEST_F(TritonJoinTest, CacheImprovesOutOfCoreThroughput) {
  uint64_t n = hw_.gpu_mem.capacity / sizeof(partition::Tuple);
  auto wl = MakeWorkload(n, n);
  TritonJoin cached({.result_mode = join::ResultMode::kAggregate});
  TritonJoin uncached({.result_mode = join::ResultMode::kAggregate,
                       .cache_bytes = 0});
  auto a = cached.Run(*dev_, wl.r, wl.s);
  auto b = uncached.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->checksum, b->checksum);
  EXPECT_GT(cached.stats().cached_fraction, 0.0);
  EXPECT_DOUBLE_EQ(uncached.stats().cached_fraction, 0.0);
  EXPECT_LT(a->elapsed, b->elapsed);
}

TEST_F(TritonJoinTest, AlternativePass1Partitioners) {
  auto wl = MakeWorkload(60000, 60000, /*seed=*/3);
  uint64_t ref = join::ReferenceChecksum(wl.r, wl.s);
  partition::StandardPartitioner standard;
  partition::LinearPartitioner linear;
  partition::SharedPartitioner shared;
  for (partition::GpuPartitioner* p :
       {static_cast<partition::GpuPartitioner*>(&standard),
        static_cast<partition::GpuPartitioner*>(&linear),
        static_cast<partition::GpuPartitioner*>(&shared)}) {
    TritonJoin join({.cache_bytes = 0, .pass1 = p});
    auto run = join.Run(*dev_, wl.r, wl.s);
    ASSERT_TRUE(run.ok()) << p->name();
    EXPECT_EQ(run->checksum, ref) << p->name();
  }
}

TEST_F(TritonJoinTest, HandlesSkewedBuildToProbeRatio) {
  // 1:32 ratio as in Figure 21's extreme point.
  auto wl = MakeWorkload(8000, 256000, /*seed=*/13);
  uint64_t ref = join::ReferenceChecksum(wl.r, wl.s);
  TritonJoin join;
  auto run = join.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->matches, 256000u);
  EXPECT_EQ(run->checksum, ref);
}

TEST_F(TritonJoinTest, ExactUnderHeavySkew) {
  // Zipf theta ~1: the hot partition far exceeds the scratchpad table, so
  // the join must fall back to chunked builds — and stay exact.
  data::WorkloadConfig cfg;
  cfg.r_tuples = 50000;
  cfg.s_tuples = 200000;
  cfg.zipf_theta = 1.05;
  auto wl = data::GenerateWorkload(dev_->allocator(), cfg);
  ASSERT_TRUE(wl.ok());
  uint64_t ref = join::ReferenceChecksum(wl->r, wl->s);
  TritonJoin join;
  auto run = join.Run(*dev_, wl->r, wl->s);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->matches, 200000u);
  EXPECT_EQ(run->checksum, ref);
}

TEST_F(TritonJoinTest, PhaseBreakdownCoversAllKernels) {
  auto wl = MakeWorkload(50000, 50000);
  TritonJoin join;
  auto run = join.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->PhaseTime("prefix_sum1"), 0.0);
  EXPECT_GT(run->PhaseTime("partition1"), 0.0);
  EXPECT_GT(run->PhaseTime("prefix_sum2"), 0.0);
  EXPECT_GT(run->PhaseTime("partition2"), 0.0);
  EXPECT_GT(run->PhaseTime("sched"), 0.0);
  EXPECT_GT(run->PhaseTime("join"), 0.0);
}

TEST_F(TritonJoinTest, ExplicitBitsAreRespected) {
  auto wl = MakeWorkload(30000, 30000);
  TritonJoin join({.bits1 = 4, .bits2 = 6});
  auto run = join.Run(*dev_, wl.r, wl.s);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(join.stats().bits1, 4u);
  EXPECT_EQ(join.stats().bits2, 6u);
  EXPECT_EQ(run->matches, 30000u);
}

}  // namespace
}  // namespace triton::core
